"""Quickstart: analyse and run vector addition on the ATGPU model.

This example walks through the full pipeline of the paper on one algorithm:

1. look at the ATGPU pseudocode of vector addition,
2. derive its model metrics and evaluate the cost functions (the prediction),
3. describe the experiment declaratively with an :class:`ExperimentSpec`
   and execute it through a :class:`Session` (prediction + simulated
   observation, cached by spec hash),
4. compare the predicted and observed transfer proportions.

Run with::

    python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import ExperimentSpec, Session, VectorAddition
from repro.core import GTX_650, format_report
from repro.pseudocode import render_program


def main(n: int = 1_000_000) -> None:
    algorithm = VectorAddition()

    # 1. The pseudocode listing (the paper's "Pseudocode Vector Addition").
    program = algorithm.build_pseudocode(n, GTX_650.machine)
    print("=" * 72)
    print(render_program(program))

    # 2. Model-side analysis: metrics + every cost-model backend.
    report = algorithm.analyse(n, GTX_650)
    print("=" * 72)
    print(format_report(report))

    # 3. The same experiment, declaratively: one spec, one session.  The
    #    session predicts per backend, runs the simulated GTX 650, and
    #    caches the result under the spec's hash.
    session = Session()
    spec = ExperimentSpec(
        "vector_addition", sizes=(n,), backends=("atgpu", "swgpu", "perfect"))
    result = session.run(spec)
    record = algorithm.observe(n, check=True)  # same run, NumPy-checked
    assert record.correct, "simulator result mismatch"
    print("=" * 72)
    print(f"Simulated run of {spec.algorithm} with n = {n}:")
    print(f"  total time    : {result.observed_totals[0] * 1e3:8.3f} ms")
    print(f"  kernel time   : {result.observed_kernels[0] * 1e3:8.3f} ms")
    print(f"  transfer time : {result.observed_transfers[0] * 1e3:8.3f} ms")
    print(f"  result check  : OK (matches NumPy reference)")
    session.run(spec)  # identical spec: served from the cache
    print(f"  cache         : {session.cache_hits} hit(s) after a repeat run")

    # 4. The paper's headline comparison for this algorithm.
    print("=" * 72)
    summary = result.summary()
    print(f"Observed transfer proportion  ΔE = "
          f"{summary['average_observed_transfer_share']:.3f}")
    print(f"Predicted transfer proportion ΔT = "
          f"{summary['average_predicted_transfer_share']:.3f}")
    print("Data transfer dominates vector addition, and the ATGPU cost function")
    print("predicts that; a kernel-only model (SWGPU) misses most of the run time.")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    main(size)
