"""Quickstart: analyse and run vector addition on the ATGPU model.

This example walks through the full pipeline of the paper on one algorithm:

1. look at the ATGPU pseudocode of vector addition,
2. derive its model metrics and evaluate the cost functions (the prediction),
3. run the same algorithm on the simulated GTX-650 (the observation),
4. compare the predicted and observed transfer proportions.

Run with::

    python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import DeviceConfig, GPUDevice, VectorAddition
from repro.core import GTX_650, format_report
from repro.pseudocode import render_program


def main(n: int = 1_000_000) -> None:
    algorithm = VectorAddition()

    # 1. The pseudocode listing (the paper's "Pseudocode Vector Addition").
    program = algorithm.build_pseudocode(n, GTX_650.machine)
    print("=" * 72)
    print(render_program(program))

    # 2. Model-side analysis: metrics + both cost functions.
    report = algorithm.analyse(n, GTX_650)
    print("=" * 72)
    print(format_report(report))

    # 3. Observation: run the kernel on the simulated GTX 650.
    device = GPUDevice(DeviceConfig.gtx650())
    inputs = algorithm.generate_input(n, seed=0)
    result = algorithm.run(device, inputs)
    expected = algorithm.reference(inputs)["C"]
    assert np.array_equal(result.outputs["C"], expected), "simulator result mismatch"
    print("=" * 72)
    print(f"Simulated run of {algorithm.name} with n = {n}:")
    print(f"  total time    : {result.total_time_s * 1e3:8.3f} ms")
    print(f"  kernel time   : {result.kernel_time_s * 1e3:8.3f} ms")
    print(f"  transfer time : {result.transfer_time_s * 1e3:8.3f} ms")
    print(f"  result check  : OK (matches NumPy reference)")

    # 4. The paper's headline comparison for this algorithm.
    print("=" * 72)
    print(f"Observed transfer proportion  ΔE = {result.observed_transfer_proportion:.3f}")
    print(f"Predicted transfer proportion ΔT = {report.predicted_transfer_proportion:.3f}")
    print("Data transfer dominates vector addition, and the ATGPU cost function")
    print("predicts that; a kernel-only model (SWGPU) misses most of the run time.")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    main(size)
