"""Regenerate the paper's full evaluation (Figures 3-6, Table I, Section IV-D).

Runs the three experiments of Section IV -- vector addition, reduction and
matrix multiplication -- comparing the ATGPU and SWGPU predictions against
the simulated GTX-650 observations, and prints every figure's series, Table I
and the summary statistics.

Run with::

    python examples/paper_evaluation.py            # reduced sweeps (fast)
    python examples/paper_evaluation.py --paper    # the paper's exact sweeps
    python examples/paper_evaluation.py --process  # batch over a process pool
"""

from __future__ import annotations

import sys

from repro.experiments import (
    Session,
    all_figures,
    paper_specs,
    render_figures,
    render_summary,
    summary_statistics,
    table1,
)


def main(scale: str = "small", engine: str = "serial") -> None:
    print(f"Running the Section IV evaluation at '{scale}' scale "
          f"on the '{engine}' engine ...")
    # The context manager shuts the engine's worker pool down cleanly
    # (letting interpreter exit reap it can race the queue feeder thread).
    with Session(engine=engine) as session:
        comparisons = session.run_many(paper_specs(scale=scale))

    print()
    print("Table I — comparison of GPU abstract models")
    print(table1(rendered=True))

    print()
    print(render_figures(all_figures(comparisons), precision=5))

    print()
    print("Section IV-D summary statistics (measured vs paper)")
    print(render_summary(summary_statistics(comparisons)))


if __name__ == "__main__":
    main(
        "paper" if "--paper" in sys.argv[1:] else "small",
        "process" if "--process" in sys.argv[1:] else "serial",
    )
