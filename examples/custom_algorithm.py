"""Design a new algorithm (SAXPY) directly in the ATGPU pseudocode DSL.

The paper presents ATGPU as a *design* tool: write the pseudocode, analyse
it, and only then decide whether the kernel is worth implementing given how
much of its running time data transfer will consume.  This example does
exactly that for SAXPY (``y = a·x + y``):

1. build the pseudocode program with executable semantics,
2. validate it against the machine's rules and capacity limits,
3. statically analyse it into metrics and evaluate the cost functions,
4. execute the very same program on the simulator through the interpreter
   and compare the observed transfer share with the prediction,
5. describe a whole *sweep* of sizes at once with an array-native
   ``MetricsGrid`` (the ``metrics_batch`` extension point) and price every
   size as one vectorized batch — bit-for-bit equal to the per-size path.

Run with::

    python examples/custom_algorithm.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import GTX_650, analyse_metrics, metrics_grid, round_arrays
from repro.core.batch import MetricsBatch
from repro.core.prediction import predict_sweep_batch
from repro.pseudocode import (
    GlobalToShared,
    KernelLaunch,
    Program,
    ProgramInterpreter,
    Round,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
    analyse_program,
    global_var,
    host_var,
    render_program,
    shared_var,
    validate_program,
)
from repro.simulator import DeviceConfig, GPUDevice


def build_saxpy(n: int, b: int, a_scalar: float) -> Program:
    """SAXPY pseudocode: one thread per element, three scoped variables."""
    blocks = -(-n // b)

    def segment(block: int, lanes: np.ndarray, params):
        indices = block * b + lanes
        return indices[indices < int(params["n"])]

    kernel = KernelLaunch(
        grid_blocks=blocks,
        shared_declarations=(shared_var("_x", b), shared_var("_y", b)),
        label="saxpy kernel",
        body=(
            GlobalToShared("_x", "x", global_index=segment),
            GlobalToShared("_y", "y", global_index=segment),
            SharedCompute(
                "_y", "a * _x[j] + _y[j]",
                compute=lambda shared, lanes, params: (
                    params["a"] * shared["_x"][lanes] + shared["_y"][lanes]),
            ),
            SharedToGlobal("y", "_y", global_index=segment),
        ),
    )
    return Program(
        name="saxpy",
        variables=(
            host_var("X", n), host_var("Y", n), host_var("Out", n),
            global_var("x", n), global_var("y", n),
            shared_var("_x", b), shared_var("_y", b),
        ),
        rounds=(Round(
            transfers_in=(TransferIn("x", "X", words=n), TransferIn("y", "Y", words=n)),
            launches=(kernel,),
            transfers_out=(TransferOut("Out", "y", words=n),),
            label="saxpy",
        ),),
        params={"n": float(n), "b": float(b), "a": a_scalar},
    )


def saxpy_metrics_grid(sizes, machine):
    """SAXPY metrics for a whole sweep of sizes, as one array program.

    This is the array-native factory a :class:`repro.GPUAlgorithm` subclass
    would expose as ``metrics_batch(ns, machine)`` (the base class falls
    back to packing per-size ``metrics(n, machine)`` calls; overriding it
    with columns like these skips the per-size objects entirely).  SAXPY is
    one round of four warp operations (stage x, stage y, multiply-add,
    write back): two inward arrays, one outward, 3 I/O blocks and two
    ``b``-word shared arrays per thread block — exactly what the static
    analyser derives from the pseudocode above.
    """
    ns = np.asarray(list(sizes), dtype=np.int64)
    blocks = machine.thread_blocks_grid(ns)
    return metrics_grid(ns, [round_arrays(
        len(ns),
        time=4.0,
        io_blocks=3.0 * blocks,
        inward_words=2.0 * ns, inward_transactions=2,
        outward_words=ns.astype(float), outward_transactions=1,
        global_words=2.0 * ns,
        shared_words_per_mp=2.0 * machine.b,
        thread_blocks=blocks,
        label="saxpy",
    )], name="saxpy")


def sweep_demo(preset, sizes) -> None:
    """Price a whole SAXPY sweep from one MetricsGrid and check parity."""
    grid = saxpy_metrics_grid(sizes, preset.machine)
    batch = MetricsBatch.from_grid(grid)
    prediction = predict_sweep_batch(
        "saxpy", batch, preset.machine, preset.parameters, preset.occupancy
    )
    print("\nVectorized sweep via metrics_batch-style grid "
          "(one array program, no per-size metrics objects):")
    for index, (n, cost, share) in enumerate(zip(
        sizes, prediction.series_for("atgpu"),
        prediction.predicted_transfer_proportions,
    )):
        # Parity with the per-size analysis is exact, not approximate.
        report = analyse_metrics(
            grid.metrics_at(index), preset.machine,
            preset.parameters, preset.occupancy,
            algorithm="saxpy", input_size=n,
        )
        assert report.gpu_cost == cost
        print(f"  n = {n:>9,}: ATGPU cost {cost:.6f} s, ΔT = {share:.3f}")


# The interpreter executes every block of a DSL kernel functionally, and DSL
# programs have no vectorised fallback: n must stay within
# functional_block_limit (4096 blocks) x warp width (32) = 131,072 elements.
def main(n: int = 100_000, a_scalar: float = 2.5) -> None:
    preset = GTX_650
    program = build_saxpy(n, preset.machine.b, a_scalar)

    print(render_program(program))
    validate_program(program, preset.machine)
    print("\nProgram validates against the ATGPU notation and machine limits.")

    metrics = analyse_program(program, preset.machine)
    report = analyse_metrics(metrics, preset.machine, preset.parameters,
                             preset.occupancy, algorithm="saxpy", input_size=n)
    print(f"\nRounds R = {report.num_rounds}, I/O blocks = {metrics.total_io_blocks:.0f}, "
          f"transfer words = {metrics.total_transfer_words:.0f}")
    print(f"ATGPU GPU-cost = {report.gpu_cost:.6f} s, SWGPU cost = {report.swgpu_cost:.6f} s")
    print(f"Predicted transfer proportion ΔT = {report.predicted_transfer_proportion:.3f}")

    device = GPUDevice(DeviceConfig.gtx650())
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=n), rng.normal(size=n)
    result = ProgramInterpreter(device).execute(program, {"X": x, "Y": y})
    assert np.allclose(result.outputs["Out"], a_scalar * x + y)
    print(f"\nSimulated run: total {result.total_time_s * 1e3:.3f} ms, "
          f"ΔE = {result.observed_transfer_proportion:.3f} (result verified)")

    sweep_demo(preset, [n // 4, n // 2, n, 2 * n])

    print("\nLike vector addition, SAXPY is transfer-bound: the model says the")
    print("kernel is not worth optimising before the transfers are.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
