"""Design a new algorithm (SAXPY) directly in the ATGPU pseudocode DSL.

The paper presents ATGPU as a *design* tool: write the pseudocode, analyse
it, and only then decide whether the kernel is worth implementing given how
much of its running time data transfer will consume.  This example does
exactly that for SAXPY (``y = a·x + y``):

1. build the pseudocode program with executable semantics,
2. validate it against the machine's rules and capacity limits,
3. statically analyse it into metrics and evaluate the cost functions,
4. execute the very same program on the simulator through the interpreter
   and compare the observed transfer share with the prediction.

Run with::

    python examples/custom_algorithm.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import GTX_650, analyse_metrics
from repro.pseudocode import (
    GlobalToShared,
    KernelLaunch,
    Program,
    ProgramInterpreter,
    Round,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
    analyse_program,
    global_var,
    host_var,
    render_program,
    shared_var,
    validate_program,
)
from repro.simulator import DeviceConfig, GPUDevice


def build_saxpy(n: int, b: int, a_scalar: float) -> Program:
    """SAXPY pseudocode: one thread per element, three scoped variables."""
    blocks = -(-n // b)

    def segment(block: int, lanes: np.ndarray, params):
        indices = block * b + lanes
        return indices[indices < int(params["n"])]

    kernel = KernelLaunch(
        grid_blocks=blocks,
        shared_declarations=(shared_var("_x", b), shared_var("_y", b)),
        label="saxpy kernel",
        body=(
            GlobalToShared("_x", "x", global_index=segment),
            GlobalToShared("_y", "y", global_index=segment),
            SharedCompute(
                "_y", "a * _x[j] + _y[j]",
                compute=lambda shared, lanes, params: (
                    params["a"] * shared["_x"][lanes] + shared["_y"][lanes]),
            ),
            SharedToGlobal("y", "_y", global_index=segment),
        ),
    )
    return Program(
        name="saxpy",
        variables=(
            host_var("X", n), host_var("Y", n), host_var("Out", n),
            global_var("x", n), global_var("y", n),
            shared_var("_x", b), shared_var("_y", b),
        ),
        rounds=(Round(
            transfers_in=(TransferIn("x", "X", words=n), TransferIn("y", "Y", words=n)),
            launches=(kernel,),
            transfers_out=(TransferOut("Out", "y", words=n),),
            label="saxpy",
        ),),
        params={"n": float(n), "b": float(b), "a": a_scalar},
    )


def main(n: int = 200_000, a_scalar: float = 2.5) -> None:
    preset = GTX_650
    program = build_saxpy(n, preset.machine.b, a_scalar)

    print(render_program(program))
    validate_program(program, preset.machine)
    print("\nProgram validates against the ATGPU notation and machine limits.")

    metrics = analyse_program(program, preset.machine)
    report = analyse_metrics(metrics, preset.machine, preset.parameters,
                             preset.occupancy, algorithm="saxpy", input_size=n)
    print(f"\nRounds R = {report.num_rounds}, I/O blocks = {metrics.total_io_blocks:.0f}, "
          f"transfer words = {metrics.total_transfer_words:.0f}")
    print(f"ATGPU GPU-cost = {report.gpu_cost:.6f} s, SWGPU cost = {report.swgpu_cost:.6f} s")
    print(f"Predicted transfer proportion ΔT = {report.predicted_transfer_proportion:.3f}")

    device = GPUDevice(DeviceConfig.gtx650())
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=n), rng.normal(size=n)
    result = ProgramInterpreter(device).execute(program, {"X": x, "Y": y})
    assert np.allclose(result.outputs["Out"], a_scalar * x + y)
    print(f"\nSimulated run: total {result.total_time_s * 1e3:.3f} ms, "
          f"ΔE = {result.observed_transfer_proportion:.3f} (result verified)")
    print("\nLike vector addition, SAXPY is transfer-bound: the model says the")
    print("kernel is not worth optimising before the transfers are.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
