"""Topology demo: describe a heterogeneous GPU fleet, price it, plan it.

This example walks through the topology-aware multi-GPU layer:

1. describe a mixed-generation fleet (a gtx650, a gtx980 and an
   occupancy-capped gtx650 on one contended host link) as a
   :class:`~repro.core.topology.Topology` — frozen, hashable and
   JSON-round-trippable,
2. plan shards with the load-aware partitioner and compare its straggler
   finish time against an even split,
3. evaluate Expression (2) over the fleet with the
   :class:`~repro.core.sharding.TopologyCostModel` (load-aware vs even
   planner, and vs the homogeneous ``atgpu-multi`` baseline),
4. run the same fleet end to end through an :class:`ExperimentSpec` with
   the ``"atgpu-topo"`` placeholder backend,
5. drive the simulator's :class:`~repro.simulator.device_pool.DevicePool`
   from the very same description.

Run with::

    python examples/topology_demo.py [n]
"""

from __future__ import annotations

import sys

from repro import ExperimentSpec, Session
from repro.algorithms import MatrixMultiplication, VectorAddition
from repro.core import (
    DeviceSpec,
    GTX_650,
    LinkSpec,
    Topology,
    TopologyCostModel,
    plan_shards,
    straggler_finish,
)

#: A two-socket, mixed-generation fleet.  Devices without a preset run as
#: the experiment's default (gtx650 here); the gtx980 is roughly three
#: times as fast, and the capped device models a card whose occupancy is
#: limited (e.g. by a co-tenant workload).
FLEET = Topology(
    devices=(
        DeviceSpec(name="gtx650"),
        DeviceSpec(preset="gtx980", name="gtx980"),
        DeviceSpec(hardware_block_limit=8, name="gtx650-capped"),
    ),
    links=(LinkSpec(kind="host", socket=0, contention=0.3),),
)


def main(n: int = 1024) -> None:
    # 1. The description round-trips through JSON and hashes stably —
    #    the hash is what spec hashes and serving coalescing keys embed.
    print("=" * 72)
    print(f"Fleet of {FLEET.num_devices} devices "
          f"(hash {FLEET.topology_hash()}):")
    assert Topology.from_json(FLEET.to_json()) == FLEET
    weights = FLEET.throughputs(GTX_650.parameters, GTX_650.occupancy)
    for device, weight in zip(FLEET.devices, weights):
        print(f"  {device.name:<14} throughput weight {weight:10.1f}")

    # 2. Load-aware planning vs an even split: the straggler finish time
    #    (max shard/weight) is what plan_shards minimises.
    blocks = 4096
    planned = plan_shards(blocks, weights)
    even = plan_shards(blocks, (1.0,) * FLEET.num_devices)
    print("=" * 72)
    print(f"Splitting {blocks} thread blocks:")
    print(f"  load-aware shards {planned}  "
          f"straggler {straggler_finish(planned, weights):.4g}")
    print(f"  even shards       {even}  "
          f"straggler {straggler_finish(even, weights):.4g}")

    # 3. Expression (2) over the fleet (compute-bound matmul shows the
    #    planner's win; the homogeneous 3-device fleet is the baseline).
    algorithm = MatrixMultiplication()
    metrics = algorithm.metrics(n, GTX_650.machine)
    evaluate = lambda fleet, planner: TopologyCostModel(
        GTX_650.machine, GTX_650.parameters, GTX_650.occupancy, fleet,
        planner=planner,
    ).gpu_cost(metrics)
    load_aware = evaluate(FLEET, "load-aware")
    even_cost = evaluate(FLEET, "even")
    homogeneous = evaluate(Topology.homogeneous(3, 0.3), "load-aware")
    print("=" * 72)
    print(f"Predicted cost of {algorithm.name} at n = {n}:")
    print(f"  heterogeneous fleet, load-aware : {load_aware * 1e3:8.3f} ms")
    print(f"  heterogeneous fleet, even split : {even_cost * 1e3:8.3f} ms")
    print(f"  3x gtx650 baseline              : {homogeneous * 1e3:8.3f} ms")
    print(f"  straggler saving vs even split  : "
          f"{(1.0 - load_aware / even_cost) * 100:6.1f} %")

    # 4. The same fleet through the experiment layer: the "atgpu-topo"
    #    placeholder resolves to this topology's auto-registered backend,
    #    and the series comes back under the requested name.
    session = Session()
    spec = ExperimentSpec(
        "vector_addition",
        sizes=(200_000, 400_000, 800_000),
        backends=("atgpu", "atgpu-topo"),
        topology=FLEET,
    )
    result = session.run(spec)
    print("=" * 72)
    print("Session sweep of vector_addition over the fleet:")
    serial = result.backend_series("atgpu")
    fleet_series = result.backend_series("atgpu-topo")
    for size, a, b in zip(result.sizes, serial, fleet_series):
        print(f"  n = {size:>7}: serial {a * 1e3:7.3f} ms -> "
              f"fleet {b * 1e3:7.3f} ms")

    # 5. The simulator consumes the same description.  Its devices are
    #    identical hardware, so the topology's lever here is the link
    #    model: four devices on one saturated link vs two sockets with
    #    their own link complexes (NUMA) — the per-socket fleet stretches
    #    each transfer by 2 contenders instead of 4.
    one_link = Topology(
        devices=(DeviceSpec(),) * 4,
        links=(LinkSpec(kind="host", socket=0, contention=1.0),),
    )
    numa = Topology(
        devices=tuple(DeviceSpec(socket=s) for s in (0, 0, 1, 1)),
        links=(
            LinkSpec(kind="host", socket=0, contention=1.0),
            LinkSpec(kind="host", socket=1, contention=1.0),
        ),
    )
    print("=" * 72)
    print("Simulated sharded vector_addition (n = 400000, 4 devices):")
    for label, fleet in (("one shared link", one_link), ("two sockets", numa)):
        run = VectorAddition().observe_sharded(400_000, topology=fleet)
        print(f"  {label:<16}: makespan {run.makespan_s * 1e3:.3f} ms, "
              f"speedup {run.sharding_speedup:.2f}x "
              f"(straggler device {run.pool.straggler})")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    main(size)
