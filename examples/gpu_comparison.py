"""Future-work study: how the predictions change on other GPUs.

The paper's conclusion proposes verifying the model on other GPUs.  This
example evaluates the three paper algorithms under every bundled GPU preset
(GTX 650, GTX 980, Tesla K40, GTX 1080) and on the corresponding simulator
configurations where available, showing how the balance between kernel cost
and transfer cost shifts with faster devices and faster host links.

Run with::

    python examples/gpu_comparison.py
"""

from __future__ import annotations

from repro.algorithms import MatrixMultiplication, Reduction, VectorAddition
from repro.core.presets import PRESETS
from repro.simulator import DeviceConfig

#: Simulator configurations matching a subset of the cost-model presets.
SIMULATOR_CONFIGS = {
    "gtx650": DeviceConfig.gtx650,
    "gtx980": DeviceConfig.gtx980,
    "k40": DeviceConfig.tesla_k40,
}

CASES = [
    (VectorAddition(), 4_000_000),
    (Reduction(), 1 << 22),
    (MatrixMultiplication(), 512),
]


def main() -> None:
    print("Predicted transfer proportion ΔT per GPU preset")
    print(f"{'algorithm':<24s}" + "".join(f"{name:>12s}" for name in sorted(PRESETS)))
    for algorithm, n in CASES:
        row = [f"{algorithm.name:<24s}"]
        for name in sorted(PRESETS):
            report = algorithm.analyse(n, PRESETS[name])
            row.append(f"{report.predicted_transfer_proportion:12.3f}")
        print("".join(row))

    print()
    print("Observed (simulated) transfer proportion ΔE per device")
    print(f"{'algorithm':<24s}" + "".join(f"{name:>12s}" for name in sorted(SIMULATOR_CONFIGS)))
    for algorithm, n in CASES:
        row = [f"{algorithm.name:<24s}"]
        for name in sorted(SIMULATOR_CONFIGS):
            record = algorithm.observe(n, config=SIMULATOR_CONFIGS[name]())
            row.append(f"{record.observed_transfer_proportion:12.3f}")
        print("".join(row))

    print()
    print("Faster devices with faster PCIe links reduce both the kernel and the")
    print("transfer times, but the *share* of time spent transferring stays large")
    print("for vector addition on every GPU — the paper's conclusion generalises.")


if __name__ == "__main__":
    main()
