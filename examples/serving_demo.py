"""Serving demo: one coalescing prediction server, three scheduling policies.

Drives the :class:`~repro.serving.server.PredictionServer` through the same
burst of overlapping sweep-prediction requests under each built-in
scheduling policy:

1. ``fifo``       — strict arrival order,
2. ``fair-share`` — a flooding tenant cannot starve a light one,
3. ``deadline``   — earliest-deadline-first, expired requests rejected,

and prints each server's :class:`~repro.serving.stats.ServerStats` —
throughput, latency percentiles and the coalescing ratio (how many callers
each union-of-sizes compile answered).

Run with::

    python examples/serving_demo.py
"""

from __future__ import annotations

from concurrent.futures import wait

from repro import ExperimentSpec, PredictionServer
from repro.serving import DeadlineExpiredError

#: Overlapping sweep windows — the coalescing sweet spot: every request
#: shares (algorithm, preset), so one union compile answers them all.
BURST = [
    ExperimentSpec("vector_addition", sizes=(100_000, 200_000, 400_000)),
    ExperimentSpec("vector_addition", sizes=(200_000, 400_000, 800_000)),
    ExperimentSpec("vector_addition", sizes=(400_000, 800_000, 1_600_000)),
    ExperimentSpec("reduction", sizes=(100_000, 400_000)),
    ExperimentSpec("reduction", sizes=(400_000, 1_600_000)),
]


def show(stats) -> None:
    print(
        f"  submitted {stats.submitted}, completed {stats.completed}, "
        f"expired {stats.expired}, dispatches {stats.dispatched_groups} "
        f"(coalescing ratio {stats.coalescing_ratio:.1f})"
    )
    print(
        f"  latency p50 {stats.latency_p50_s * 1e3:.2f} ms, "
        f"p99 {stats.latency_p99_s * 1e3:.2f} ms"
    )


def demo_fifo() -> None:
    print("== fifo: strict arrival order ==")
    server = PredictionServer(policy="fifo", workers=2)
    # Submitting before start() lets the burst pile up, so the first
    # dispatch coalesces everything pending per (algorithm, preset).
    futures = server.submit_many(BURST, mode="predict")
    with server:
        predictions = [future.result() for future in futures]
    for spec, prediction in zip(BURST, predictions):
        total = prediction.series["atgpu"].sum()
        print(f"  {spec.algorithm:>16} {spec.sizes}: atgpu total {total:.4f}s")
    show(server.stats())


def demo_fair_share() -> None:
    print("== fair-share: tenant B overtakes tenant A's flood ==")
    server = PredictionServer(policy="fair-share", workers=1)
    # Tenant A floods two algorithm groups before tenant B shows up; with
    # one worker, fair-share serves B's group as soon as A has been
    # charged for its first dispatch (FIFO would leave B for last).
    flood = server.submit_many(BURST[:4], tenant="A", mode="predict")
    light = server.submit(
        ExperimentSpec("matrix_multiplication", sizes=(64, 128)),
        tenant="B",
        mode="predict",
    )
    with server:
        wait([*flood, light])
    order = [key[0] for key in server.stats().recent_dispatches]
    print(f"  dispatch order: {' -> '.join(order)}")
    print(f"  served(A)={server.policy.served('A'):.0f} sweep points, "
          f"served(B)={server.policy.served('B'):.0f}")
    show(server.stats())


def demo_deadline() -> None:
    print("== deadline: EDF ordering, expired requests rejected ==")
    server = PredictionServer(policy="deadline", workers=1)
    relaxed = server.submit(BURST[0], deadline_s=60.0, mode="predict")
    urgent = server.submit(BURST[3], deadline_s=5.0, mode="predict")
    hopeless = server.submit(BURST[4], deadline_s=0.0, mode="predict")
    with server:
        wait([relaxed, urgent, hopeless])
    order = [key[0] for key in server.stats().recent_dispatches]
    print(f"  dispatch order (most urgent first): {' -> '.join(order)}")
    try:
        hopeless.result()
    except DeadlineExpiredError as exc:
        print(f"  expired request rejected: {exc}")
    show(server.stats())


def main() -> None:
    demo_fifo()
    print()
    demo_fair_share()
    print()
    demo_deadline()


if __name__ == "__main__":
    main()
