"""Serving-throughput benchmark and ``BENCH_sweep.json`` "serving" section.

Replays a traffic burst against the prediction server — by default 32
predict-mode vector-addition requests over overlapping 128-point windows of
the dense 256-point sweep — on two paths:

* ``serialized`` — the no-server baseline: each request is answered alone,
  one at a time, with nothing shared between requests (one union compile
  and one backend evaluation *per request*),
* ``coalesced``  — the same burst through a
  :class:`~repro.serving.server.PredictionServer`, whose workers coalesce
  every pending request sharing ``(algorithm, preset)`` into one
  union-of-sizes batch and scatter per-request columns back.

Every run asserts bit-for-bit parity between the two paths before it is
recorded, and the report — requests/sec on both paths, end-to-end p50/p99
latency, and the coalescing ratio (requests served per dispatched group) —
is merged into ``BENCH_sweep.json`` next to the batch-engine numbers so the
serving trajectory is tracked PR over PR (the CI ``perf-smoke`` lane gates
on ``--min-speedup``).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py --out BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments import ExperimentSpec, predict_group
from repro.serving import PredictionServer
from repro.workloads.sweeps import dense_sweep

#: Requests in the default burst.
DEFAULT_REQUESTS = 32

#: Dense-sweep points the request windows are cut from.
DENSE_POINTS = 256

#: Sweep points per request window.
WINDOW_POINTS = 128


def burst_specs(
    requests: int = DEFAULT_REQUESTS,
    points: int = DENSE_POINTS,
    window: int = WINDOW_POINTS,
) -> List[ExperimentSpec]:
    """Overlapping sweep-window requests over one dense size grid.

    Request ``i`` asks for a ``window``-point slice starting at an offset
    that walks the grid, so consecutive requests overlap heavily — the
    serving sweet spot — while no two are identical.
    """
    if not 0 < window <= points:
        raise ValueError("window must be in (0, points]")
    sizes = list(dense_sweep(points).sizes)
    span = points - window
    return [
        ExperimentSpec(
            "vector_addition",
            sizes=sizes[offset:offset + window],
        )
        for index in range(requests)
        for offset in ((index * span) // max(requests - 1, 1),)
    ]


def _parity(served, isolated) -> bool:
    for got, want in zip(served, isolated):
        if got.sizes != want.sizes:
            return False
        for name, values in want.series.items():
            if not np.array_equal(np.asarray(got.series[name]), values):
                return False
    return True


def _run_serialized(specs: Sequence[ExperimentSpec]) -> Dict[str, object]:
    """One request at a time, nothing shared — the no-server baseline."""
    start = time.perf_counter()
    outputs = [predict_group([spec])[0] for spec in specs]
    elapsed = time.perf_counter() - start
    return {"elapsed_s": elapsed, "outputs": outputs}


def _run_coalesced(
    specs: Sequence[ExperimentSpec], workers: int
) -> Dict[str, object]:
    """The same burst through a fresh server (fresh session, cold caches)."""
    server = PredictionServer(workers=workers)
    futures = server.submit_many(specs, mode="predict")
    start = time.perf_counter()
    with server:
        outputs = [future.result(timeout=600) for future in futures]
    elapsed = time.perf_counter() - start
    stats = server.stats()
    return {"elapsed_s": elapsed, "outputs": outputs, "stats": stats}


def run_benchmark(
    requests: int = DEFAULT_REQUESTS,
    points: int = DENSE_POINTS,
    window: int = WINDOW_POINTS,
    workers: int = 2,
    repeats: int = 3,
) -> Dict[str, object]:
    """Best-of-``repeats`` serving report (see the module docstring)."""
    specs = burst_specs(requests=requests, points=points, window=window)
    best_serial = math.inf
    best_coalesced = math.inf
    best_stats = None
    parity = True
    for _ in range(repeats):
        serial = _run_serialized(specs)
        coalesced = _run_coalesced(specs, workers=workers)
        parity = parity and _parity(coalesced["outputs"], serial["outputs"])
        best_serial = min(best_serial, serial["elapsed_s"])
        if coalesced["elapsed_s"] < best_coalesced:
            best_coalesced = coalesced["elapsed_s"]
            best_stats = coalesced["stats"]
    return {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": repeats,
        "requests": requests,
        "dense_points": points,
        "window_points": window,
        "workers": workers,
        "parity": parity,
        "serialized_s": best_serial,
        "coalesced_s": best_coalesced,
        "serialized_rps": requests / best_serial,
        "coalesced_rps": requests / best_coalesced,
        "speedup": best_serial / best_coalesced,
        "latency_p50_s": best_stats.latency_p50_s,
        "latency_p99_s": best_stats.latency_p99_s,
        "latency_mean_s": best_stats.latency_mean_s,
        "coalescing_ratio": best_stats.coalescing_ratio,
        "dispatched_groups": best_stats.dispatched_groups,
    }


def merge_report(path: str, serving: Dict[str, object]) -> None:
    """Add/replace the ``serving`` section of the JSON report at ``path``.

    The batch-engine benchmark owns the rest of the document; a missing or
    unreadable file gets a fresh skeleton so the two emitters can run in
    either order.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"benchmark": "vectorized-batch-sweep"}
    report["serving"] = serving
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_sweep.json",
        help="JSON report to merge the serving section into "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="requests in the burst (default: %(default)s)",
    )
    parser.add_argument(
        "--points", type=int, default=DENSE_POINTS,
        help="dense-sweep points the windows are cut from "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--window", type=int, default=WINDOW_POINTS,
        help="sweep points per request (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="server worker threads (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions, best-of (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless coalesced throughput reaches this multiple of "
             "the serialized baseline",
    )
    args = parser.parse_args(argv)
    serving = run_benchmark(
        requests=args.requests, points=args.points, window=args.window,
        workers=args.workers, repeats=args.repeats,
    )
    merge_report(args.out, serving)
    print(
        f"serving burst: {serving['requests']} requests x "
        f"{serving['window_points']} of {serving['dense_points']} pts  "
        f"serialized {serving['serialized_rps']:6.1f} req/s  "
        f"coalesced {serving['coalesced_rps']:6.1f} req/s  "
        f"speedup {serving['speedup']:.1f}x"
    )
    print(
        f"latency p50 {serving['latency_p50_s'] * 1e3:.2f} ms  "
        f"p99 {serving['latency_p99_s'] * 1e3:.2f} ms  "
        f"coalescing ratio {serving['coalescing_ratio']:.1f} "
        f"({serving['dispatched_groups']} dispatches) -> {args.out}"
    )
    if not serving["parity"]:
        print(
            "ERROR: coalesced and serialized answers disagree",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_speedup is not None
        and serving["speedup"] < args.min_speedup
    ):
        print(
            f"ERROR: serving speedup {serving['speedup']:.1f}x below "
            f"required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
