"""Benchmark smoke for the vectorized batch sweep engine.

Runs the ``BENCH_sweep.json`` emitter (``benchmarks/bench_sweep.py``) at a
reduced repeat count, prints the per-entry timings, and asserts the
properties the perf lane guards: scalar/batch parity everywhere and a real
speedup on the dense sweep.
"""

from __future__ import annotations

import json

from benchmarks.bench_sweep import bench_entry, dense_sizes, run_benchmarks


def test_bench_sweep_report(benchmark, tmp_path):
    """The emitter's full report: parity everywhere, dense sweep wins big."""

    def build():
        return run_benchmarks(repeats=1)

    report = benchmark.pedantic(build, rounds=1, iterations=1)
    out = tmp_path / "BENCH_sweep.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True))
    print()
    for entry in report["entries"]:
        print(
            f"{entry['name']:<36} {entry['points']:>4} pts  "
            f"scalar {entry['scalar_s'] * 1e3:8.2f} ms  "
            f"batch {entry['batch_s'] * 1e3:7.2f} ms  "
            f"speedup {entry['speedup']:6.1f}x"
        )
    assert report["summary"]["parity"], "scalar and batch paths disagree"
    # Only the dense entry is big enough (tens of ms) for a stable timing
    # assertion; the millisecond-scale entries flake under CI noise.  The
    # threshold sits well under the ≥10× the committed BENCH_sweep.json
    # records on a quiet machine.
    assert report["summary"]["dense_speedup"] > 3.0


def test_dense_entry_parity_is_exact(scale):
    """The headline 256-point entry: allclose with rtol=0, atol=0."""
    from repro.algorithms import VectorAddition

    points = 64 if scale == "small" else 256
    entry = bench_entry(
        f"dense{points}/vector_addition", VectorAddition(),
        dense_sizes(points),
        ("atgpu", "swgpu", "perfect", "agpu", "atgpu-async", "atgpu-multi"),
        repeats=1,
    )
    assert entry["parity"]
    assert entry["max_abs_diff"] == 0.0
