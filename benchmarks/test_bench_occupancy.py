"""Occupancy / parametrisation ablations (E15).

Two design choices of the cost model are ablated:

* **Expression 2 vs Expression 1** -- how much the occupancy-scaled GPU-cost
  differs from the perfect-GPU cost as the number of physical MPs ``k'`` and
  the block limit ``H`` vary.
* **λ as raw latency vs bandwidth-amortised cost** -- the presets use a
  bandwidth-amortised λ (see ``repro.core.presets``); this ablation shows
  that with a raw 400-800 cycle latency the kernel term dwarfs the transfer
  term and the ATGPU/SWGPU distinction (the paper's whole point) disappears.
"""

from __future__ import annotations

from dataclasses import replace

from repro.algorithms import VectorAddition
from repro.core.analysis import analyse_metrics
from repro.core.occupancy import OccupancyModel
from repro.core.presets import GTX_650


def test_occupancy_ablation(benchmark):
    """GPU-cost vs perfect cost across physical MP counts and block limits."""
    algorithm = VectorAddition()
    n = 10_000_000
    metrics = algorithm.metrics(n, GTX_650.machine)

    def sweep():
        rows = []
        for physical_mps in (1, 2, 4, 8, 16):
            for block_limit in (1, 4, 16):
                occupancy = OccupancyModel(physical_mps=physical_mps,
                                           hardware_block_limit=block_limit)
                report = analyse_metrics(metrics, GTX_650.machine,
                                         GTX_650.parameters, occupancy,
                                         algorithm=algorithm.name, input_size=n)
                rows.append((physical_mps, block_limit,
                             report.perfect_cost, report.gpu_cost))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("k'   H    perfect cost     GPU-cost     ratio")
    for mps, limit, perfect, gpu in rows:
        print(f"{mps:<4d} {limit:<4d} {perfect:.6e}  {gpu:.6e}  {gpu / perfect:6.3f}")
    # More physical MPs / higher block limits bring the GPU-cost down towards
    # the perfect cost; it never goes below it.
    assert all(gpu >= perfect * (1 - 1e-12) for _, _, perfect, gpu in rows)
    costs_by_mps = {mps: gpu for mps, limit, _, gpu in rows if limit == 16}
    assert costs_by_mps[16] <= costs_by_mps[1]


def test_lambda_parametrisation_ablation(benchmark):
    """Raw-latency λ drowns the transfer terms; amortised λ preserves them."""
    algorithm = VectorAddition()
    n = 10_000_000
    metrics = algorithm.metrics(n, GTX_650.machine)

    def evaluate():
        rows = []
        for lam in (GTX_650.parameters.lam, 100.0, 400.0, 800.0):
            params = replace(GTX_650.parameters, lam=lam)
            report = analyse_metrics(metrics, GTX_650.machine, params,
                                     GTX_650.occupancy,
                                     algorithm=algorithm.name, input_size=n)
            rows.append((lam, report.predicted_transfer_proportion))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print()
    print("lambda (cycles/block)   predicted transfer proportion ΔT")
    for lam, delta in rows:
        print(f"{lam:>10.1f}              {delta:.3f}")
    amortised_delta = rows[0][1]
    raw_latency_delta = rows[-1][1]
    assert amortised_delta > 0.7        # transfer dominates, as the paper plots
    assert raw_latency_delta < 0.1      # raw latency hides the transfer entirely
