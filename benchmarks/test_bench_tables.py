"""Benchmarks regenerating Table I and the Section IV-D summary statistics."""

from __future__ import annotations

from repro.experiments import render_summary, summary_statistics, table1
from repro.models.features import gpu_suitability_ranking, render_extended_table


def test_table1_model_comparison(benchmark):
    """Table I: capability comparison of AGPU, SWGPU and ATGPU."""
    text = benchmark.pedantic(lambda: table1(rendered=True), rounds=1, iterations=1)
    print()
    print(text)
    print()
    print("Extended comparison including the classical models:")
    print(render_extended_table())
    matrix = table1()
    assert matrix["Host/Device Data Transfer"] == {
        "AGPU": False, "SWGPU": False, "ATGPU": True}
    assert gpu_suitability_ranking()[0][0] == "ATGPU"


def test_summary_statistics(benchmark, paper_comparisons):
    """Section IV-D: transfer shares, Δ accuracy and SWGPU capture fractions."""
    summaries = benchmark.pedantic(
        lambda: summary_statistics(paper_comparisons), rounds=1, iterations=1)
    print()
    print(render_summary(summaries))
    vecadd = summaries["vector_addition"]
    matmul = summaries["matrix_multiplication"]
    # Qualitative claims of the paper that must survive the reproduction:
    # vector addition is dominated by data transfer, matrix multiplication is
    # not, and the kernel-only (SWGPU) view captures far less of the total
    # time for vector addition than for matrix multiplication.
    assert vecadd.measured_transfer_share > 0.6
    assert matmul.measured_swgpu_capture > vecadd.measured_swgpu_capture
    assert vecadd.measured_delta_accuracy < 0.15
