"""Benchmarks regenerating Figure 4 (reduction)."""

from __future__ import annotations

from repro.experiments import figure4, render_figure


def _run(benchmark, comparison, key):
    def build():
        return figure4(comparison)[key]

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    return series


def test_figure4a_predicted_costs(benchmark, paper_comparisons):
    """Figure 4a: ATGPU vs SWGPU predicted cost, n = 2^16 .. 2^26."""
    series = _run(benchmark, paper_comparisons["reduction"], "4a")
    assert (series.series["ATGPU"] > series.series["SWGPU"]).all()


def test_figure4b_observed_times(benchmark, paper_comparisons):
    """Figure 4b: observed total vs kernel time for the multi-round reduction."""
    series = _run(benchmark, paper_comparisons["reduction"], "4b")
    total, kernel = series.series["Total"], series.series["Kernel"]
    assert (total > kernel).all()
    transfer_share = ((total - kernel) / total).mean()
    # The paper reports ~35 % of the total time spent on transfer.
    assert 0.15 < transfer_share < 0.65


def test_figure4c_normalised(benchmark, paper_comparisons):
    """Figure 4c: normalised growth comparison."""
    series = _run(benchmark, paper_comparisons["reduction"], "4c")
    assert set(series.series) == {"ATGPU", "SWGPU", "Total", "Kernel"}
