"""Other-GPU presets (E16): the paper's "verify the model using other GPUs".

Re-evaluates the vector-addition and matrix-multiplication predictions under
each GPU preset and checks the qualitative conclusions transfer: faster
hosts links shrink the transfer share, more SMs shrink the occupancy-scaled
kernel term.
"""

from __future__ import annotations

from repro.algorithms import MatrixMultiplication, VectorAddition
from repro.core.presets import PRESETS


def test_preset_sweep(benchmark):
    """Predicted transfer proportions per GPU preset."""
    vecadd, matmul = VectorAddition(), MatrixMultiplication()

    def evaluate():
        rows = []
        for name, preset in sorted(PRESETS.items()):
            vec_report = vecadd.analyse(10_000_000, preset)
            mat_report = matmul.analyse(1024, preset)
            rows.append((name,
                         vec_report.predicted_transfer_proportion,
                         mat_report.predicted_transfer_proportion,
                         vec_report.gpu_cost, mat_report.gpu_cost))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print()
    print("preset     ΔT vecadd   ΔT matmul   vecadd cost (s)   matmul cost (s)")
    for name, vec_delta, mat_delta, vec_cost, mat_cost in rows:
        print(f"{name:<10s} {vec_delta:9.3f}  {mat_delta:10.3f}   "
              f"{vec_cost:14.6f}   {mat_cost:14.6f}")
    by_name = {row[0]: row for row in rows}
    # On every GPU the transfer share of vector addition exceeds matmul's.
    for name, vec_delta, mat_delta, *_ in rows:
        assert vec_delta > mat_delta
    # The paper's GTX 650 (2 SMs, slow link) has the highest vecadd cost.
    assert by_name["gtx650"][3] == max(row[3] for row in rows)
