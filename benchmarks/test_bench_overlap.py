"""Benchmarks for the compute/copy-overlap (async streams) experiments.

Prints the serial-vs-async predicted cost curves, the overlap-speedup
summary table, a chunk-count sweep, and a simulated streamed run — the
overlap analogues of the paper's figures, beyond its evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import VectorAddition
from repro.experiments import (
    ExperimentSpec,
    Session,
    figure_chunk_sweep,
    figure_overlap,
    overlap_summary,
    render_figure,
    render_overlap_summary,
)
from repro.simulator import DeviceConfig

#: Backends evaluated by the overlap benchmarks (serial pair + async).
OVERLAP_BACKENDS = ("atgpu", "swgpu", "perfect", "atgpu-async")


@pytest.fixture(scope="module")
def overlap_results(scale):
    """Serial + async predictions for the two streamed algorithms."""
    session = Session()
    specs = [
        ExperimentSpec(name, scale=scale, backends=OVERLAP_BACKENDS)
        for name in ("vector_addition", "reduction")
    ]
    return session.run_many(specs)


def test_overlap_prediction_vector_addition(benchmark, overlap_results):
    """Async prediction strictly beats serial on the copy-bound sweep."""
    result = overlap_results.get("vector_addition")

    def build():
        return figure_overlap(result)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    assert np.all(series.series["Speedup Δ"] > 1.0)


def test_overlap_summary_table(benchmark, overlap_results):
    """The Δ summary table: overlap never loses, wins big when copy-bound."""

    def build():
        return overlap_summary(overlap_results)

    summaries = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_overlap_summary(summaries))
    assert summaries["vector_addition"].mean_speedup > 1.05
    assert summaries["reduction"].mean_speedup >= 1.0


def test_chunk_count_sweep(benchmark, overlap_results):
    """Speedup across chunk counts: 1 is serial, then diminishing returns."""
    sizes = overlap_results.get("vector_addition").sizes

    def build():
        return figure_chunk_sweep("vector_addition", sizes[-1])

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    speedups = series.series["Speedup Δ"]
    assert speedups[0] == pytest.approx(1.0)
    assert speedups.max() > 1.0


def test_simulated_streamed_run(benchmark, scale):
    """The stream-timeline simulator agrees that overlap wins."""
    algorithm = VectorAddition()
    n = 200_000 if scale == "small" else 2_000_000

    def run():
        return algorithm.observe_streamed(
            n, config=DeviceConfig.gtx650(), chunks=4
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"n={n}: serial {result.serial_time_s * 1e3:.3f} ms, "
        f"overlapped {result.makespan_s * 1e3:.3f} ms, "
        f"speedup {result.overlap_speedup:.3f}x"
    )
    assert result.makespan_s < result.serial_time_s
