"""Scalar-vs-vectorized sweep benchmark and ``BENCH_sweep.json`` emitter.

Times ``predict_sweep`` end to end on the paper's Section IV sweeps, a
dense 256-point sweep, and the ``STREAM_CHUNK_SWEEP`` /
``SHARD_COUNT_SWEEP`` backend families, on both evaluation paths:

* ``scalar`` — the original per-size path (one ``analyse_metrics`` plus one
  scalar backend call per size per backend),
* ``batch``  — the vectorized path (one compiled
  :class:`~repro.core.batch.MetricsBatch` built through the algorithm's
  array-native ``metrics_batch`` factory, one array program per backend
  family).

Each entry additionally reports a **factory-time column**: how long the
``MetricsBatch`` takes to compile through the scalar per-size metrics
factory versus the vectorized whole-sweep factory (the metrics factories
used to dominate the batch path at ~80 % of its time).

Every entry asserts bit-for-bit parity between the two paths
(``np.allclose(..., rtol=0, atol=0)``) before it is recorded, and the
result is written as machine-readable JSON so the performance trajectory is
tracked PR over PR (the CI ``perf-smoke`` lane uploads it as an artifact
and asserts the dense-sweep speedup against the PR 4 baseline).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sweep.py --out BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import MatrixMultiplication, Reduction, VectorAddition
from repro.core.batch import MetricsBatch
from repro.core.presets import DEFAULT_PRESET
from repro.core.backends import (
    get_backend,
    make_async_backend,
    make_sharded_backend,
    register_backend,
    unregister_backend,
)
from repro.core.sharding import TopologyCostModel, topology_cost_batch
from repro.core.topology import DeviceSpec, LinkSpec, Topology
from repro.workloads.sweeps import (
    SHARD_COUNT_SWEEP,
    STREAM_CHUNK_SWEEP,
    dense_sweep,
    sweep_for,
)

#: Every built-in backend family, in registration order.
FAMILY_BACKENDS = (
    "atgpu", "swgpu", "perfect", "agpu", "atgpu-async", "atgpu-multi",
)

#: Points in the dense sweep of the headline speedup entry.
DENSE_POINTS = 256


def _ensure_registered(backend, added: Optional[List[str]] = None) -> str:
    """Register a backend variant unless its name is already taken.

    Names this call registers are appended to ``added`` so the caller can
    restore the registry afterwards (other test modules register the same
    variant names and must not collide with benchmark leftovers).
    """
    try:
        get_backend(backend.name)
    except KeyError:
        register_backend(backend)
        if added is not None:
            added.append(backend.name)
    return backend.name


def chunk_sweep_backends(added: Optional[List[str]] = None) -> List[str]:
    """One async backend per ``STREAM_CHUNK_SWEEP`` chunk count."""
    return [
        _ensure_registered(make_async_backend(int(chunks)), added)
        for chunks in STREAM_CHUNK_SWEEP.sizes
    ]


def shard_sweep_backends(added: Optional[List[str]] = None) -> List[str]:
    """One sharded backend per ``SHARD_COUNT_SWEEP`` device count."""
    return [
        _ensure_registered(make_sharded_backend(int(devices)), added)
        for devices in SHARD_COUNT_SWEEP.sizes
    ]


def dense_sizes(points: int = DENSE_POINTS) -> List[int]:
    """A dense vector-addition-style sweep of ``points`` distinct sizes."""
    return list(dense_sweep(points).sizes)


def _time_path(algorithm, sizes, backends, path: str, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one ``predict_sweep`` path."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        algorithm.predict_sweep(sizes, backends=backends, path=path)
        best = min(best, time.perf_counter() - start)
    return best


def _time_factory(build, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one batch-compilation path."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        build()
        best = min(best, time.perf_counter() - start)
    return best


def bench_entry(
    name: str,
    algorithm,
    sizes: Sequence[int],
    backends: Sequence[str],
    repeats: int = 3,
) -> Dict:
    """Time both paths on one sweep and verify their parity."""
    sizes = list(sizes)
    backends = tuple(backends)
    scalar = algorithm.predict_sweep(sizes, backends=backends, path="scalar")
    batch = algorithm.predict_sweep(sizes, backends=backends, path="batch")
    max_diff = 0.0
    parity = True
    for backend in backends:
        a = scalar.series_for(backend)
        b = batch.series_for(backend)
        max_diff = max(max_diff, float(np.max(np.abs(a - b))))
        parity = parity and bool(np.allclose(a, b, rtol=0, atol=0))
    parity = parity and bool(np.allclose(
        scalar.predicted_transfer_proportions,
        batch.predicted_transfer_proportions,
        rtol=0, atol=0,
    ))
    scalar_s = _time_path(algorithm, sizes, backends, "scalar", repeats)
    batch_s = _time_path(algorithm, sizes, backends, "batch", repeats)
    machine = DEFAULT_PRESET.machine
    factory_scalar_s = _time_factory(
        lambda: MetricsBatch.compile(
            algorithm.name, sizes,
            lambda n: algorithm.metrics(n, machine),
        ),
        repeats,
    )
    factory_batch_s = _time_factory(
        lambda: algorithm.compile_batch(sizes), repeats
    )
    return {
        "name": name,
        "algorithm": algorithm.name,
        "points": len(sizes),
        "backends": list(backends),
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
        "factory_scalar_s": factory_scalar_s,
        "factory_batch_s": factory_batch_s,
        "factory_speedup": (
            factory_scalar_s / factory_batch_s
            if factory_batch_s > 0 else float("inf")
        ),
        "max_abs_diff": max_diff,
        "parity": parity,
    }


#: Points in the dense sweep of the batched-simulator section (the ISSUE
#: gate is defined on a 128-point sweep).
SIM_DENSE_POINTS = 128


def sim_batch_section(repeats: int = 3, points: int = SIM_DENSE_POINTS) -> Dict:
    """Scalar vs batched **simulator** wall time on a dense sweep.

    Times ``observe_sweep`` end to end on both paths — the scalar per-size
    device loop against the :mod:`repro.simulator.batch` probe-and-replay
    path — and asserts bit-for-bit parity of every reported series before
    recording.  The scalar loop is timed once (it dominates the section's
    wall time at tens of seconds); the batched path is best-of-``repeats``.
    """
    algorithm = VectorAddition()
    sizes = dense_sizes(points)
    start = time.perf_counter()
    scalar = algorithm.observe_sweep(sizes, path="scalar")
    scalar_s = time.perf_counter() - start
    batch = algorithm.observe_sweep(sizes, path="batch")
    parity = (
        batch.total_times == scalar.total_times
        and batch.kernel_times == scalar.kernel_times
        and batch.transfer_times == scalar.transfer_times
    )
    batch_s = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        algorithm.observe_sweep(sizes, path="batch")
        batch_s = min(batch_s, time.perf_counter() - start)
    return {
        "name": f"sim_dense{points}/vector_addition",
        "algorithm": algorithm.name,
        "points": len(sizes),
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
        "parity": parity,
    }


#: The two-preset fleet of the heterogeneous-straggler section: one
#: default (gtx650) device and one gtx980 on a shared, moderately
#: contended host link.
HETERO_FLEET = Topology(
    devices=(DeviceSpec(), DeviceSpec(preset="gtx980")),
    links=(LinkSpec(kind="host", socket=0, contention=0.3),),
)


def heterogeneous_fleet_section(repeats: int = 3) -> Dict:
    """Straggler cost of the load-aware planner vs the even-split baseline.

    Evaluates the compute-bound matmul sweep on :data:`HETERO_FLEET` under
    both planners, asserting (a) bit-for-bit scalar/batch parity of the
    topology evaluator and (b) that the load-aware split prices strictly
    below the even split in total — the whole point of weighting shards by
    per-device throughput.
    """
    algorithm = MatrixMultiplication()
    sizes = list(sweep_for(algorithm.name).sizes)
    preset = DEFAULT_PRESET
    batch = algorithm.compile_batch(sizes)
    planners: Dict[str, Dict] = {}
    parity = True
    for planner in ("load-aware", "even"):
        model = TopologyCostModel(
            preset.machine, preset.parameters, preset.occupancy,
            HETERO_FLEET, planner=planner,
        )
        scalar = np.array([
            model.gpu_cost(algorithm.metrics(n, preset.machine))
            for n in sizes
        ])
        vector = topology_cost_batch(
            batch, preset.machine, preset.parameters, preset.occupancy,
            HETERO_FLEET, planner=planner,
        )
        parity = parity and bool(np.allclose(scalar, vector, rtol=0, atol=0))
        batch_s = _time_factory(
            lambda: topology_cost_batch(
                batch, preset.machine, preset.parameters, preset.occupancy,
                HETERO_FLEET, planner=planner,
            ),
            repeats,
        )
        planners[planner] = {
            "costs": [float(c) for c in vector],
            "total": float(vector.sum()),
            "batch_s": batch_s,
        }
    load_aware = planners["load-aware"]["total"]
    even = planners["even"]["total"]
    return {
        "name": "hetero_fleet/matrix_multiplication",
        "algorithm": algorithm.name,
        "sizes": sizes,
        "devices": [d.preset or preset.name for d in HETERO_FLEET.devices],
        "contention": HETERO_FLEET.host_link(0).contention,
        "topology_hash": HETERO_FLEET.topology_hash(),
        "planners": planners,
        "straggler_reduction": 1.0 - load_aware / even,
        "load_aware_beats_even": load_aware < even,
        "parity": parity,
    }


def run_benchmarks(repeats: int = 3, points: int = DENSE_POINTS) -> Dict:
    """Run every benchmark entry and assemble the report dictionary.

    Backend variants registered for the chunk/shard sweeps are unregistered
    again on the way out, so running the harness (e.g. inside a pytest
    session) leaves the global registry exactly as it found it.
    """
    added: List[str] = []
    try:
        chunk_names = chunk_sweep_backends(added)
        shard_names = shard_sweep_backends(added)
        grid = tuple(dict.fromkeys(
            (*FAMILY_BACKENDS, *chunk_names, *shard_names)
        ))
        entries = [
            bench_entry(
                f"section4/{algorithm.name}", algorithm,
                sweep_for(algorithm.name).sizes, FAMILY_BACKENDS, repeats,
            )
            for algorithm in (
                VectorAddition(), Reduction(), MatrixMultiplication(),
            )
        ]
        entries.append(bench_entry(
            f"dense{points}/vector_addition", VectorAddition(),
            dense_sizes(points), grid, repeats,
        ))
        entries.append(bench_entry(
            "stream_chunk_sweep/reduction", Reduction(),
            sweep_for("reduction").sizes, ("atgpu", *chunk_names), repeats,
        ))
        entries.append(bench_entry(
            "shard_count_sweep/vector_addition", VectorAddition(),
            sweep_for("vector_addition").sizes, ("atgpu", *shard_names),
            repeats,
        ))
    finally:
        for name in added:
            unregister_backend(name)
    speedups = [entry["speedup"] for entry in entries]
    factory_speedups = [entry["factory_speedup"] for entry in entries]
    dense = next(e for e in entries if e["name"].startswith("dense"))
    hetero = heterogeneous_fleet_section(repeats)
    sim_batch = sim_batch_section(repeats)
    return {
        "benchmark": "vectorized-batch-sweep",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": repeats,
        "entries": entries,
        "heterogeneous_fleet": hetero,
        "sim_batch": sim_batch,
        "summary": {
            "parity": (
                all(entry["parity"] for entry in entries)
                and hetero["parity"]
                and sim_batch["parity"]
            ),
            "hetero_straggler_reduction": hetero["straggler_reduction"],
            "hetero_load_aware_beats_even": hetero["load_aware_beats_even"],
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
            "geomean_factory_speedup": float(
                np.exp(np.mean(np.log(factory_speedups)))
            ),
            "dense_points": dense["points"],
            "dense_speedup": dense["speedup"],
            "dense_factory_speedup": dense["factory_speedup"],
            "sim_dense_points": sim_batch["points"],
            "sim_speedup": sim_batch["speedup"],
        },
    }


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_sweep.json",
        help="path of the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per entry, best-of (default: %(default)s)",
    )
    parser.add_argument(
        "--points", type=int, default=DENSE_POINTS,
        help="dense-sweep point count (default: %(default)s)",
    )
    parser.add_argument(
        "--min-dense-speedup", type=float, default=None,
        help="fail unless the dense-sweep speedup reaches this factor",
    )
    parser.add_argument(
        "--min-sim-speedup", type=float, default=None,
        help="fail unless the batched-simulator speedup reaches this factor",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(repeats=args.repeats, points=args.points)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    width = max(len(entry["name"]) for entry in report["entries"])
    for entry in report["entries"]:
        flag = "ok" if entry["parity"] else "PARITY MISMATCH"
        print(
            f"{entry['name']:<{width}}  {entry['points']:>4} pts  "
            f"scalar {entry['scalar_s'] * 1e3:8.2f} ms  "
            f"batch {entry['batch_s'] * 1e3:7.2f} ms  "
            f"speedup {entry['speedup']:6.1f}x  "
            f"factory {entry['factory_scalar_s'] * 1e3:7.2f}/"
            f"{entry['factory_batch_s'] * 1e3:5.2f} ms "
            f"({entry['factory_speedup']:5.1f}x)  {flag}"
        )
    hetero = report["heterogeneous_fleet"]
    print(
        f"{hetero['name']:<{width}}  {len(hetero['sizes']):>4} pts  "
        f"load-aware {hetero['planners']['load-aware']['total'] * 1e3:.2f} ms "
        f"vs even {hetero['planners']['even']['total'] * 1e3:.2f} ms  "
        f"straggler -{hetero['straggler_reduction'] * 100:.1f}%  "
        f"{'ok' if hetero['parity'] else 'PARITY MISMATCH'}"
    )
    sim = report["sim_batch"]
    print(
        f"{sim['name']:<{width}}  {sim['points']:>4} pts  "
        f"scalar {sim['scalar_s']:8.2f} s   "
        f"batch {sim['batch_s'] * 1e3:7.2f} ms  "
        f"speedup {sim['speedup']:6.1f}x  "
        f"{'ok' if sim['parity'] else 'PARITY MISMATCH'}"
    )
    summary = report["summary"]
    print(
        f"geomean speedup {summary['geomean_speedup']:.1f}x "
        f"(factory {summary['geomean_factory_speedup']:.1f}x), "
        f"dense {summary['dense_points']}-point sweep "
        f"{summary['dense_speedup']:.1f}x, simulator "
        f"{summary['sim_dense_points']}-point sweep "
        f"{summary['sim_speedup']:.1f}x -> {args.out}"
    )
    if not summary["parity"]:
        print("ERROR: scalar and batch paths disagree", file=sys.stderr)
        return 1
    if not hetero["load_aware_beats_even"]:
        print(
            "ERROR: load-aware planning did not beat the even split on the "
            "heterogeneous fleet",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_dense_speedup is not None
        and summary["dense_speedup"] < args.min_dense_speedup
    ):
        print(
            f"ERROR: dense speedup {summary['dense_speedup']:.1f}x below "
            f"required {args.min_dense_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_sim_speedup is not None
        and summary["sim_speedup"] < args.min_sim_speedup
    ):
        print(
            f"ERROR: simulator speedup {summary['sim_speedup']:.1f}x below "
            f"required {args.min_sim_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
