"""Benchmarks regenerating Figure 6 (transfer proportions ΔE vs ΔT)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure6, render_figure


def _run(benchmark, comparisons, key):
    def build():
        return figure6(comparisons)[key]

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    return series


def test_figure6a_vector_addition(benchmark, paper_comparisons):
    """Figure 6a: Δ for vector addition -- both curves high and close."""
    series = _run(benchmark, paper_comparisons, "6a")
    observed = series.series["ΔE (Observed)"]
    predicted = series.series["ΔT (Predicted)"]
    assert observed.mean() > 0.6
    assert np.abs(observed - predicted).mean() < 0.15


def test_figure6b_reduction(benchmark, paper_comparisons):
    """Figure 6b: Δ for reduction -- intermediate transfer share."""
    series = _run(benchmark, paper_comparisons, "6b")
    observed = series.series["ΔE (Observed)"]
    assert 0.15 < observed.mean() < 0.65


def test_figure6c_matrix_multiplication(benchmark, paper_comparisons, scale):
    """Figure 6c: Δ for matrix multiplication -- falls towards zero with n."""
    series = _run(benchmark, paper_comparisons, "6c")
    observed = series.series["ΔE (Observed)"]
    assert observed[-1] < observed[0]
    # The small sweep stops at 256x256, where transfer still matters more.
    assert observed[-1] < (0.2 if scale == "paper" else 0.45)
