"""Shared fixtures for the benchmark harness.

The expensive part of every figure benchmark is the prediction-vs-observation
sweep of Section IV.  It is computed once per session (at the paper's sweep
sizes) and shared; each benchmark then regenerates and prints its figure or
table from that data, so running ``pytest benchmarks/ --benchmark-only``
reproduces every table and figure of the evaluation in one pass.

Set the environment variable ``REPRO_BENCH_SCALE=small`` to run the same
benchmarks on the reduced sweeps (useful on slow machines).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentRunner


def bench_scale() -> str:
    """Sweep scale used by the benchmarks (``paper`` unless overridden)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "paper").lower()
    return scale if scale in ("paper", "small") else "paper"


@pytest.fixture(scope="session")
def scale() -> str:
    """The sweep scale as a fixture, for benchmarks building their own specs."""
    return bench_scale()


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The experiment runner shared by every benchmark."""
    return ExperimentRunner(scale=bench_scale())


@pytest.fixture(scope="session")
def paper_comparisons(runner):
    """Prediction-vs-observation sweeps for the three paper algorithms."""
    return runner.run_paper_evaluation()
