"""Benchmarks regenerating Figure 5 (matrix multiplication)."""

from __future__ import annotations

from repro.experiments import figure5, render_figure


def _run(benchmark, comparison, key):
    def build():
        return figure5(comparison)[key]

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    return series


def test_figure5a_predicted_costs(benchmark, paper_comparisons, scale):
    """Figure 5a: ATGPU vs SWGPU predicted cost for n = 32 .. 1024."""
    series = _run(benchmark, paper_comparisons["matrix_multiplication"], "5a")
    atgpu = series.series["ATGPU"]
    # Cost grows super-linearly in the matrix side (O(n^3) work); the small
    # sweep only spans 32..256, where the fixed costs still weigh in.
    assert atgpu[-1] / atgpu[0] > (100 if scale == "paper" else 5)


def test_figure5b_observed_times(benchmark, paper_comparisons, scale):
    """Figure 5b: observed total vs kernel time -- nearly identical curves."""
    series = _run(benchmark, paper_comparisons["matrix_multiplication"], "5b")
    total, kernel = series.series["Total"], series.series["Kernel"]
    assert (total >= kernel).all()
    # At the largest sizes the kernel accounts for almost all of the total,
    # the paper's "model not needed here" case (less so on the small sweep,
    # whose largest matrix is only 256x256).
    assert kernel[-1] / total[-1] > (0.75 if scale == "paper" else 0.5)
