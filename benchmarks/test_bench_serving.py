"""Benchmarks for the serving layer: coalesced vs serialized bursts.

Replays a small overlapping-window burst through the prediction server and
prints requests/sec, latency percentiles and the coalescing ratio — the
pytest-visible face of ``bench_serving.py`` (which emits the JSON report
the CI perf lane gates on).
"""

from __future__ import annotations

import pytest

from bench_serving import burst_specs, run_benchmark


def test_coalesced_burst_beats_serialized(benchmark):
    """Coalescing an overlapping burst beats answering it one at a time."""

    def run():
        return run_benchmark(
            requests=16, points=64, window=32, workers=2, repeats=1
        )

    serving = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"serialized {serving['serialized_rps']:.1f} req/s, "
        f"coalesced {serving['coalesced_rps']:.1f} req/s "
        f"({serving['speedup']:.1f}x), coalescing ratio "
        f"{serving['coalescing_ratio']:.1f}"
    )
    assert serving["parity"]
    assert serving["speedup"] > 1.0
    assert serving["coalescing_ratio"] > 1.0


def test_burst_windows_overlap_but_differ():
    """The workload generator emits distinct, heavily overlapping windows."""
    specs = burst_specs(requests=8, points=64, window=32)
    assert len(specs) == 8
    assert len({tuple(spec.sizes) for spec in specs}) == 8
    first = set(specs[0].sizes)
    second = set(specs[1].sizes)
    assert first & second
    assert first != second
