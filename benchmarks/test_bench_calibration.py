"""Calibration benchmarks (E14): fitting the cost parameters from observations.

The paper says the cost parameters "can be set to a value corresponding to a
particular GPU"; this benchmark shows the principled way to obtain them --
fit the Boyer transfer model from a sweep of simulated transfers and fit the
full cost-parameter vector from observed algorithm timings -- and reports the
quality of the fits.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import VectorAddition
from repro.core.calibration import (
    calibrate_cost_parameters,
    calibrate_transfer_model,
    feature_vector,
)
from repro.core.presets import GTX_650
from repro.core.transfer import TransferDirection
from repro.simulator import DeviceConfig, TransferEngine
from repro.workloads import transfer_size_sweep


def test_transfer_model_calibration(benchmark):
    """Fit α and β from simulated host→device copies (Boyer-style calibration)."""
    config = DeviceConfig.gtx650()
    engine = TransferEngine(config)
    sizes = transfer_size_sweep(1 << 12, 1 << 24, points=10)
    times = [engine.duration(int(n), TransferDirection.HOST_TO_DEVICE) for n in sizes]

    result = benchmark.pedantic(
        lambda: calibrate_transfer_model(sizes, np.ones_like(sizes), times),
        rounds=1, iterations=1)
    true_alpha, true_beta = engine.implied_boyer_parameters()
    print()
    print(f"fitted  alpha = {result.alpha:.3e} s   beta = {result.beta:.3e} s/word")
    print(f"link    alpha = {true_alpha:.3e} s   beta = {true_beta:.3e} s/word")
    print(f"R^2 = {result.r_squared:.6f}")
    assert result.r_squared > 0.999
    assert abs(result.beta - true_beta) / true_beta < 0.05


def test_cost_parameter_calibration(benchmark):
    """Fit γ, λ, σ, α, β from observed vector-addition timings."""
    preset = GTX_650
    algorithm = VectorAddition()
    sizes = [200_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000]
    observation = algorithm.observe_sweep(sizes, config=DeviceConfig.gtx650())
    metrics_list = [algorithm.metrics(n, preset.machine) for n in sizes]

    result = benchmark.pedantic(
        lambda: calibrate_cost_parameters(
            metrics_list, observation.total_times, preset.machine,
            preset.occupancy, nominal=preset.parameters),
        rounds=1, iterations=1)
    print()
    print("fitted parameters:", result.parameters)
    print("nominal preset   :", preset.parameters)
    print(f"R^2 = {result.r_squared:.6f}")
    assert result.r_squared > 0.99
    predicted = [result.predict(feature_vector(m, preset.machine, preset.occupancy))
                 for m in metrics_list]
    errors = np.abs(np.array(predicted) - np.array(observation.total_times))
    assert errors.max() / max(observation.total_times) < 0.2
