"""Benchmarks regenerating Figure 3 (vector addition).

Each benchmark rebuilds one subfigure's series from the shared sweep and
prints the rows the paper plots: the predicted ATGPU/SWGPU costs (3a), the
observed total/kernel times (3b), and the normalised curves (3c).
"""

from __future__ import annotations

from repro.experiments import figure3, render_figure


def _run(benchmark, comparison, key):
    def build():
        figures = figure3(comparison)
        return figures[key]

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    return series


def test_figure3a_predicted_costs(benchmark, paper_comparisons):
    """Figure 3a: ATGPU vs SWGPU predicted cost, n = 1e6 .. 1e7."""
    series = _run(benchmark, paper_comparisons["vector_addition"], "3a")
    atgpu, swgpu = series.series["ATGPU"], series.series["SWGPU"]
    assert (atgpu > swgpu).all()
    # Roughly linear growth over the sweep's span (10x paper, 5x small);
    # the fixed α/σ offsets keep the ratio somewhat below the span itself.
    span = series.sizes[-1] / series.sizes[0]
    assert atgpu[-1] / atgpu[0] > 0.5 * span


def test_figure3b_observed_times(benchmark, paper_comparisons):
    """Figure 3b: observed total vs kernel time (simulated GTX-650)."""
    series = _run(benchmark, paper_comparisons["vector_addition"], "3b")
    total, kernel = series.series["Total"], series.series["Kernel"]
    assert (total > kernel).all()
    # Data transfer dominates the total running time (the paper reports 84 %).
    assert ((total - kernel) / total).mean() > 0.6


def test_figure3c_normalised(benchmark, paper_comparisons):
    """Figure 3c: all four curves normalised to [0, 1]."""
    series = _run(benchmark, paper_comparisons["vector_addition"], "3c")
    for curve in series.series.values():
        assert curve.min() == 0.0 and curve.max() == 1.0
