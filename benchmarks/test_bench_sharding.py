"""Benchmarks for the multi-GPU sharding (scaling) experiments.

Prints the serial-vs-sharded predicted cost curves, the scaling-speedup
summary table, a shard-count sweep, and a simulated multi-device run — the
sharding analogues of the paper's figures, beyond its evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import VectorAddition
from repro.experiments import (
    ExperimentSpec,
    Session,
    figure_scaling,
    figure_shard_sweep,
    render_figure,
    render_scaling_summary,
    scaling_summary,
)
from repro.simulator import DeviceConfig

#: Backends evaluated by the sharding benchmarks (serial trio + sharded).
SHARDING_BACKENDS = ("atgpu", "swgpu", "perfect", "atgpu-multi")


@pytest.fixture(scope="module")
def sharding_results(scale):
    """Serial + sharded predictions for the two shardable algorithms."""
    session = Session()
    specs = [
        ExperimentSpec(name, scale=scale, backends=SHARDING_BACKENDS)
        for name in ("vector_addition", "reduction")
    ]
    return session.run_many(specs)


def test_scaling_prediction_vector_addition(benchmark, sharding_results):
    """Sharded prediction strictly beats serial on the shardable sweep."""
    result = sharding_results.get("vector_addition")

    def build():
        return figure_scaling(result)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    assert np.all(series.series["Speedup Δ"] > 1.0)


def test_scaling_summary_table(benchmark, sharding_results):
    """The scaling Δ summary table: two devices never lose."""

    def build():
        return scaling_summary(sharding_results)

    summaries = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_scaling_summary(summaries))
    assert summaries["vector_addition"].mean_speedup > 1.5
    assert summaries["reduction"].mean_speedup >= 1.0


def test_shard_count_sweep(benchmark, sharding_results):
    """Speedup across device counts: 1 is serial, then near-linear gains."""
    sizes = sharding_results.get("vector_addition").sizes

    def build():
        return figure_shard_sweep("vector_addition", sizes[-1])

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    speedups = series.series["Speedup Δ"]
    assert speedups[0] == pytest.approx(1.0)
    assert speedups[-1] > speedups[0]


def test_shard_count_sweep_contended(benchmark, sharding_results):
    """The same sweep on a fully shared interconnect scales much worse."""
    sizes = sharding_results.get("vector_addition").sizes

    def build():
        return figure_shard_sweep("vector_addition", sizes[-1], contention=1.0)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure(series))
    free = figure_shard_sweep("vector_addition", sizes[-1], contention=0.0)
    assert series.series["Sharded"][-1] > free.series["Sharded"][-1]


def test_simulated_sharded_run(benchmark, scale):
    """The device-pool simulator agrees that sharding wins."""
    algorithm = VectorAddition()
    n = 200_000 if scale == "small" else 2_000_000

    def run():
        return algorithm.observe_sharded(
            n, config=DeviceConfig.gtx650(), devices=4
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"n={n}: serial {result.serial_time_s * 1e3:.3f} ms, "
        f"sharded {result.makespan_s * 1e3:.3f} ms over "
        f"{result.device_count} devices, "
        f"speedup {result.sharding_speedup:.3f}x"
    )
    assert result.makespan_s < result.serial_time_s
