"""Static analysis of pseudocode programs into ATGPU metrics.

The analyzer walks a validated :class:`~repro.pseudocode.program.Program`
and produces the :class:`~repro.core.metrics.AlgorithmMetrics` of Section
III: per round it counts the kernel operations (``t_i``), the global-memory
block transactions (``q_i``), the transfer volumes and transaction counts
(``I_i, O_i, Î_i, Ô_i``), the space footprints and the launched thread
blocks (``k_i``).  The resulting metrics plug directly into the cost
functions of :mod:`repro.core.cost`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, MetricsBuilder, RoundMetrics
from repro.pseudocode.program import Program, Round
from repro.pseudocode.validation import validate_program


def analyse_round(program: Program, round_: Round,
                  params: Optional[Dict[str, float]] = None) -> RoundMetrics:
    """Derive the :class:`RoundMetrics` of one round."""
    params = dict(program.params if params is None else params)
    builder = MetricsBuilder(label=round_.label or None)
    builder.add_operations(round_.time(params))
    builder.add_io(round_.io_blocks(params))
    # Transactions follow the cost model's marker rule: a W/R statement
    # moving zero words at these parameters is free, not a transaction.
    builder.add_inward(
        round_.inward_words(params),
        transactions=round_.charged_inward_transactions(params),
    )
    builder.add_outward(
        round_.outward_words(params),
        transactions=round_.charged_outward_transactions(params),
    )
    builder.use_global(program.global_words())
    builder.use_shared(round_.shared_words_per_block())
    builder.set_thread_blocks(round_.thread_blocks(params))
    return builder.build()


def analyse_program(
    program: Program,
    machine: Optional[ATGPUMachine] = None,
    params: Optional[Dict[str, float]] = None,
    validate: bool = True,
) -> AlgorithmMetrics:
    """Derive the :class:`AlgorithmMetrics` of a whole program.

    Parameters
    ----------
    program:
        The pseudocode program to analyse.
    machine:
        When given, the program is validated against the machine's capacity
        limits and the returned metrics are checked to fit it.
    params:
        Override of the program's parameter dictionary (e.g. to analyse the
        same program at a different input size).
    validate:
        Set to ``False`` to skip the structural validation pass (useful when
        the caller already validated the program).
    """
    if validate:
        validate_program(program, machine)
    rounds = [analyse_round(program, r, params) for r in program.rounds]
    metrics = AlgorithmMetrics(rounds, name=program.name)
    if machine is not None:
        metrics.validate_against(machine)
    return metrics
