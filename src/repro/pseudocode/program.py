"""Programs and rounds of the ATGPU pseudocode.

A :class:`Round` follows the execution structure of Section II: data is
transferred from the host to device global memory, one or more kernels run
on the MPs, output data is transferred back to the host, and synchronisation
closes the round.  A :class:`Program` is an ordered list of rounds together
with its variable declarations and a parameter dictionary (e.g. the input
size ``n`` and the machine's ``b``), so the same program object can be both
statically analysed and executed on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pseudocode.ast_nodes import (
    KernelLaunch,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.variables import Scope, Variable


@dataclass
class Round:
    """One round: inward transfers, kernel launches, outward transfers, sync."""

    transfers_in: Tuple[TransferIn, ...] = ()
    launches: Tuple[KernelLaunch, ...] = ()
    transfers_out: Tuple[TransferOut, ...] = ()
    label: str = ""
    synchronise: bool = True

    def __post_init__(self) -> None:
        self.transfers_in = tuple(self.transfers_in)
        self.launches = tuple(self.launches)
        self.transfers_out = tuple(self.transfers_out)
        if not self.launches and not (self.transfers_in or self.transfers_out):
            raise ValueError("a round must contain at least one launch or transfer")

    # ------------------------------------------------------------------ #
    # Analytical helpers
    # ------------------------------------------------------------------ #
    def inward_words(self, params: Dict[str, float]) -> float:
        """``I_i`` for this round."""
        return sum(t.word_count(params) for t in self.transfers_in)

    def outward_words(self, params: Dict[str, float]) -> float:
        """``O_i`` for this round."""
        return sum(t.word_count(params) for t in self.transfers_out)

    @property
    def inward_transactions(self) -> int:
        """``Î_i`` -- one transaction per TransferIn statement."""
        return len(self.transfers_in)

    @property
    def outward_transactions(self) -> int:
        """``Ô_i``."""
        return len(self.transfers_out)

    def charged_inward_transactions(self, params: Dict[str, float]) -> int:
        """``Î_i`` as charged by the cost model: statements moving no words
        at these parameters are markers, not transactions (matching
        :class:`repro.core.transfer.TransferEvent` semantics)."""
        return sum(1 for t in self.transfers_in if t.word_count(params) > 0)

    def charged_outward_transactions(self, params: Dict[str, float]) -> int:
        """``Ô_i`` with zero-word marker statements excluded."""
        return sum(1 for t in self.transfers_out if t.word_count(params) > 0)

    def time(self, params: Dict[str, float]) -> float:
        """``t_i`` -- operations of the round's kernel launches."""
        return sum(launch.time(params) for launch in self.launches)

    def io_blocks(self, params: Dict[str, float]) -> float:
        """``q_i`` -- global-memory blocks accessed across all MPs."""
        return sum(launch.io_blocks(params) for launch in self.launches)

    def thread_blocks(self, params: Dict[str, float]) -> int:
        """``k_i`` -- the largest grid launched in the round."""
        if not self.launches:
            return 1
        return max(launch.grid(params) for launch in self.launches)

    def shared_words_per_block(self) -> int:
        """Largest per-block shared footprint of the round's launches."""
        if not self.launches:
            return 0
        return max(launch.shared_words_per_block() for launch in self.launches)


@dataclass
class Program:
    """A complete ATGPU pseudocode program.

    Parameters
    ----------
    name:
        Program name (used in reports).
    variables:
        Every variable the program references, of all three scopes.
    rounds:
        The rounds in execution order.
    params:
        Named scalar parameters (e.g. ``{"n": 1_000_000, "b": 32}``) that
        parameter-dependent node attributes resolve against.
    """

    name: str
    variables: Tuple[Variable, ...]
    rounds: Tuple[Round, ...]
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.variables = tuple(self.variables)
        self.rounds = tuple(self.rounds)
        if not self.rounds:
            raise ValueError("a program must have at least one round")
        names = [v.name for v in self.variables]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate variable declarations: {sorted(duplicates)}")

    # ------------------------------------------------------------------ #
    # Variable lookup
    # ------------------------------------------------------------------ #
    def variable(self, name: str) -> Variable:
        """Look up a declared variable by name."""
        for variable in self.variables:
            if variable.name == name:
                return variable
        raise KeyError(f"program {self.name!r} declares no variable named {name!r}")

    def declared(self, name: str) -> bool:
        """Whether ``name`` is declared."""
        return any(v.name == name for v in self.variables)

    def variables_in_scope(self, scope: Scope) -> Tuple[Variable, ...]:
        """All declared variables of one scope."""
        return tuple(v for v in self.variables if v.scope is scope)

    # ------------------------------------------------------------------ #
    # Space accounting
    # ------------------------------------------------------------------ #
    def global_words(self) -> int:
        """Total words of declared global variables (global-memory footprint)."""
        return sum(v.size for v in self.variables_in_scope(Scope.GLOBAL))

    def shared_words_per_mp(self) -> int:
        """Largest per-block shared-memory footprint over all rounds."""
        return max(r.shared_words_per_block() for r in self.rounds)

    @property
    def num_rounds(self) -> int:
        """``R``."""
        return len(self.rounds)
