"""Pretty-printing of pseudocode programs in the paper's notation.

Renders a :class:`~repro.pseudocode.program.Program` as text resembling the
pseudocode listings of the paper: ``W`` for host↔device transfer, ``<==``
for global-memory access, ``<-`` for shared-memory access, and the wrapper
loop over MPs and cores.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pseudocode.ast_nodes import (
    Barrier,
    Compute,
    GlobalToShared,
    If,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    Statement,
)
from repro.pseudocode.program import Program

#: ASCII stand-ins for the paper's operators.
TRANSFER_OP = "W"
GLOBAL_OP = "<=="
SHARED_OP = "<-"


def _render_statement(statement: Statement, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(statement, GlobalToShared):
        return [f"{pad}{statement.dest}[.] {GLOBAL_OP} {statement.src}[.]"]
    if isinstance(statement, SharedToGlobal):
        return [f"{pad}{statement.dest}[.] {GLOBAL_OP} {statement.src}[.]"]
    if isinstance(statement, SharedCompute):
        return [f"{pad}{statement.dest}[.] {SHARED_OP} {statement.expression}"]
    if isinstance(statement, Compute):
        return [f"{pad}{statement.description or 'compute'}"]
    if isinstance(statement, Barrier):
        return [f"{pad}barrier()"]
    if isinstance(statement, If):
        lines = [f"{pad}if {statement.condition_description} then"]
        for inner in statement.body:
            lines.extend(_render_statement(inner, indent + 1))
        lines.append(f"{pad}end if")
        return lines
    if isinstance(statement, Loop):
        lines = [f"{pad}for {statement.var} = 1 -> {statement.count!r} do"]
        for inner in statement.body:
            lines.extend(_render_statement(inner, indent + 1))
        lines.append(f"{pad}end for")
        return lines
    return [f"{pad}{type(statement).__name__}"]


def render_launch(launch: KernelLaunch, indent: int = 1) -> List[str]:
    """Render one kernel launch with the wrapper loop."""
    pad = "    " * indent
    lines = [
        f"{pad}for all mp_rho in MP[mp_0, ..., mp_(k-1)] in parallel do",
        f"{pad}    for all c_(rho,eps) in C_rho in parallel do",
    ]
    for statement in launch.body:
        lines.extend(_render_statement(statement, indent + 2))
    lines.append(f"{pad}    end for")
    lines.append(f"{pad}end for")
    return lines


def render_program(program: Program) -> str:
    """Render a whole program in the paper's pseudocode style."""
    lines: List[str] = [f"Pseudocode {program.name}"]
    step = 1
    for round_index, round_ in enumerate(program.rounds, start=1):
        if len(program.rounds) > 1:
            lines.append(f"-- round {round_index}"
                         + (f" ({round_.label})" if round_.label else ""))
        for transfer in round_.transfers_in:
            lines.append(f"{step:>2}: {transfer.dest} {TRANSFER_OP} {transfer.src}"
                         "    . Transfer data to Device")
            step += 1
        for launch in round_.launches:
            for line in render_launch(launch):
                lines.append(f"{step:>2}: {line}" if line.strip().startswith("for all mp")
                             else f"    {line}")
                if line.strip().startswith("for all mp"):
                    step += 1
        for transfer in round_.transfers_out:
            lines.append(f"{step:>2}: {transfer.dest} {TRANSFER_OP} {transfer.src}"
                         "    . Transfer output to Host")
            step += 1
    return "\n".join(lines)
