"""Statement nodes of the ATGPU pseudocode notation.

The notation (Section II of the paper) has three memory operators:

* ``W``  -- host↔device transfer (:class:`TransferIn`, :class:`TransferOut`),
* ``⇐`` -- global-memory access (:class:`GlobalToShared`, :class:`SharedToGlobal`),
* ``←`` -- shared-memory access / assignment (:class:`SharedCompute`),

plus ordinary register computation (:class:`Compute`), a restricted
single-branch conditional (:class:`If`), a counted loop (:class:`Loop`), a
barrier, and the wrapper loop over MPs and cores (:class:`KernelLaunch`).

Every node carries two kinds of information:

* **analytical** attributes (operation counts, global-memory blocks touched
  per MP) consumed by the static analyzer to derive
  :class:`~repro.core.metrics.AlgorithmMetrics`, and
* optional **executable** semantics (index/compute callables) consumed by the
  interpreter to run the program on the simulator.  Index callables receive
  ``(block_index, lanes, params)`` and return per-lane element indices;
  compute callables receive ``(shared, lanes, params)`` where ``shared`` maps
  shared-variable names to their per-block NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.pseudocode.variables import Scope, Variable, scope_of_name
from repro.utils.validation import ensure_non_negative, ensure_positive_int

#: Index callable: (block_index, lanes, params) -> per-lane element indices.
IndexFn = Callable[[int, np.ndarray, Dict[str, float]], np.ndarray]
#: Compute callable: (shared_arrays, lanes, params) -> per-lane values.
ComputeFn = Callable[[Dict[str, np.ndarray], np.ndarray, Dict[str, float]], np.ndarray]
#: A value that may depend on the program parameters.
Param = Union[int, float, Callable[[Dict[str, float]], float]]


def resolve(value: Param, params: Dict[str, float]) -> float:
    """Resolve a possibly parameter-dependent scalar."""
    if callable(value):
        return float(value(params))
    return float(value)


class Statement:
    """Base class for pseudocode statements (kernel-body level)."""

    #: Warp-instructions this statement contributes to the round time ``t_i``.
    operations: Param = 1

    def operation_count(self, params: Dict[str, float]) -> float:
        """Operations contributed to ``t_i`` (per MP, per execution)."""
        return resolve(self.operations, params)

    def io_blocks_per_mp(self, params: Dict[str, float]) -> float:
        """Global-memory blocks this statement touches per MP (contributes to ``q_i``)."""
        return 0.0


@dataclass
class TransferIn(Statement):
    """``dest W src`` -- move a host variable into a global variable.

    One :class:`TransferIn` is one transfer transaction (one ``cudaMemcpy``).
    """

    dest: str
    src: str
    words: Param
    operations: Param = 0

    def __post_init__(self) -> None:
        if scope_of_name(self.dest) is not Scope.GLOBAL:
            raise ValueError(f"TransferIn destination {self.dest!r} must be a global variable")
        if scope_of_name(self.src) is not Scope.HOST:
            raise ValueError(f"TransferIn source {self.src!r} must be a host variable")

    def word_count(self, params: Dict[str, float]) -> float:
        """Words moved host → device."""
        return resolve(self.words, params)


@dataclass
class TransferOut(Statement):
    """``Dest W src`` -- move a global variable (or a prefix of it) to the host."""

    dest: str
    src: str
    words: Param
    operations: Param = 0

    def __post_init__(self) -> None:
        if scope_of_name(self.dest) is not Scope.HOST:
            raise ValueError(f"TransferOut destination {self.dest!r} must be a host variable")
        if scope_of_name(self.src) is not Scope.GLOBAL:
            raise ValueError(f"TransferOut source {self.src!r} must be a global variable")

    def word_count(self, params: Dict[str, float]) -> float:
        """Words moved device → host."""
        return resolve(self.words, params)


@dataclass
class GlobalToShared(Statement):
    """``_dest[·] ⇐ src[·]`` -- global-memory read into shared memory."""

    dest: str
    src: str
    #: Global-memory blocks touched per MP by this access (1 when coalesced).
    blocks_per_mp: Param = 1
    operations: Param = 1
    #: Executable semantics: indices into the global source array.
    global_index: Optional[IndexFn] = None
    #: Executable semantics: indices into the shared destination array
    #: (defaults to the lane index).
    shared_index: Optional[IndexFn] = None

    def __post_init__(self) -> None:
        if scope_of_name(self.dest) is not Scope.SHARED:
            raise ValueError(f"GlobalToShared destination {self.dest!r} must be shared")
        if scope_of_name(self.src) is not Scope.GLOBAL:
            raise ValueError(f"GlobalToShared source {self.src!r} must be global")

    def io_blocks_per_mp(self, params: Dict[str, float]) -> float:
        return resolve(self.blocks_per_mp, params)


@dataclass
class SharedToGlobal(Statement):
    """``dest[·] ⇐ _src[·]`` -- shared-memory contents written to global memory."""

    dest: str
    src: str
    blocks_per_mp: Param = 1
    operations: Param = 1
    global_index: Optional[IndexFn] = None
    shared_index: Optional[IndexFn] = None
    #: Optional lane predicate: only lanes where it returns True store.
    lane_mask: Optional[IndexFn] = None

    def __post_init__(self) -> None:
        if scope_of_name(self.dest) is not Scope.GLOBAL:
            raise ValueError(f"SharedToGlobal destination {self.dest!r} must be global")
        if scope_of_name(self.src) is not Scope.SHARED:
            raise ValueError(f"SharedToGlobal source {self.src!r} must be shared")

    def io_blocks_per_mp(self, params: Dict[str, float]) -> float:
        return resolve(self.blocks_per_mp, params)


@dataclass
class SharedCompute(Statement):
    """``_dest[·] ← expression`` -- computation whose result lands in shared memory."""

    dest: str
    expression: str
    operations: Param = 1
    compute: Optional[ComputeFn] = None
    shared_index: Optional[IndexFn] = None

    def __post_init__(self) -> None:
        if scope_of_name(self.dest) is not Scope.SHARED:
            raise ValueError(f"SharedCompute destination {self.dest!r} must be shared")


@dataclass
class Compute(Statement):
    """Pure register computation (no memory traffic)."""

    description: str = ""
    operations: Param = 1


@dataclass
class Barrier(Statement):
    """Block-wide synchronisation of the warps of a thread block."""

    operations: Param = 1


@dataclass
class If(Statement):
    """The restricted single-branch conditional of the notation.

    The model executes all divergent paths, so the analyzer charges the full
    body regardless of the condition; the interpreter evaluates ``condition``
    (a lane mask) to decide which lanes' effects are applied, but still
    charges the body's operations.
    """

    condition_description: str
    body: Tuple[Statement, ...]
    operations: Param = 1
    condition: Optional[IndexFn] = None

    def __post_init__(self) -> None:
        self.body = tuple(self.body)
        if not self.body:
            raise ValueError("an If statement requires a non-empty body")

    def operation_count(self, params: Dict[str, float]) -> float:
        return resolve(self.operations, params) + sum(
            s.operation_count(params) for s in self.body
        )

    def io_blocks_per_mp(self, params: Dict[str, float]) -> float:
        return sum(s.io_blocks_per_mp(params) for s in self.body)


@dataclass
class Loop(Statement):
    """A counted loop executed identically by every MP.

    ``count`` may depend on the program parameters; the loop variable is
    exposed to nested executable semantics through ``params[var]``.
    """

    count: Param
    body: Tuple[Statement, ...]
    var: str = "iteration"
    operations: Param = 0

    def __post_init__(self) -> None:
        self.body = tuple(self.body)
        if not self.body:
            raise ValueError("a Loop requires a non-empty body")

    def iterations(self, params: Dict[str, float]) -> int:
        """Number of iterations for the given parameters."""
        count = resolve(self.count, params)
        iterations = int(round(count))
        if iterations < 0:
            raise ValueError(f"loop count must be >= 0, got {count}")
        return iterations

    def operation_count(self, params: Dict[str, float]) -> float:
        iterations = self.iterations(params)
        per_iteration = sum(s.operation_count(params) for s in self.body)
        return resolve(self.operations, params) + iterations * per_iteration

    def io_blocks_per_mp(self, params: Dict[str, float]) -> float:
        iterations = self.iterations(params)
        return iterations * sum(s.io_blocks_per_mp(params) for s in self.body)


@dataclass
class KernelLaunch:
    """The wrapper loop: run a statement body on all (or a subset of) MPs.

    Parameters
    ----------
    grid_blocks:
        Number of thread blocks (MPs of the perfect machine) the kernel runs
        on -- the ``k_i`` of Expression (2).
    body:
        Kernel-body statements, executed by every block.
    shared_declarations:
        Shared variables each block allocates; their total size is the
        per-block shared-memory footprint ``m``.
    label:
        Human-readable kernel name.
    """

    grid_blocks: Param
    body: Tuple[Statement, ...]
    shared_declarations: Tuple[Variable, ...] = ()
    label: str = "kernel"

    def __post_init__(self) -> None:
        self.body = tuple(self.body)
        self.shared_declarations = tuple(self.shared_declarations)
        if not self.body:
            raise ValueError("a kernel launch requires a non-empty body")
        for variable in self.shared_declarations:
            if variable.scope is not Scope.SHARED:
                raise ValueError(
                    f"kernel shared declaration {variable.name!r} must have shared scope"
                )

    def grid(self, params: Dict[str, float]) -> int:
        """Resolved grid size."""
        grid = int(round(resolve(self.grid_blocks, params)))
        ensure_positive_int(grid, "grid_blocks")
        return grid

    def shared_words_per_block(self) -> int:
        """Shared-memory words allocated by one block."""
        return sum(v.size for v in self.shared_declarations)

    def time(self, params: Dict[str, float]) -> float:
        """Operations contributed to the round time ``t_i``."""
        return sum(s.operation_count(params) for s in self.body)

    def io_blocks(self, params: Dict[str, float]) -> float:
        """Global-memory blocks accessed by the whole launch (``q`` contribution)."""
        per_mp = sum(s.io_blocks_per_mp(params) for s in self.body)
        return per_mp * self.grid(params)
