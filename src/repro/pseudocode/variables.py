"""Variables of the ATGPU pseudocode notation.

The paper distinguishes three variable scopes purely by naming convention
(Section II, "Notation for Pseudocode"):

* **Host** variables reside in host memory, are accessible only to the host,
  and their names begin with a capital letter (``A``, ``Input``).
* **Global** variables reside in device global memory, are accessible to the
  host and to all MPs, and their names begin with a lower-case letter
  (``a``, ``partials``).
* **Shared** variables reside in an MP's shared memory, are accessible only
  to that MP's cores, and their names begin with an underscore (``_a``).

The classes below enforce those conventions at construction time so that a
mis-scoped pseudocode program fails immediately with a clear error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import ensure_positive_int


class Scope(enum.Enum):
    """The three variable scopes of the ATGPU pseudocode."""

    HOST = "host"
    GLOBAL = "global"
    SHARED = "shared"


class NamingError(ValueError):
    """Raised when a variable name violates the scope naming convention."""


def scope_of_name(name: str) -> Scope:
    """Infer the scope of ``name`` from the paper's naming convention."""
    if not name:
        raise NamingError("variable names must be non-empty")
    first = name[0]
    if first == "_":
        return Scope.SHARED
    if first.isalpha() and first.isupper():
        return Scope.HOST
    if first.isalpha() and first.islower():
        return Scope.GLOBAL
    raise NamingError(
        f"variable name {name!r} must start with a capital letter (host), a "
        "lower-case letter (global) or an underscore (shared)"
    )


def validate_name(name: str, expected: Scope) -> str:
    """Return ``name`` if its naming convention matches ``expected``."""
    actual = scope_of_name(name)
    if actual is not expected:
        raise NamingError(
            f"variable {name!r} is named as a {actual.value} variable but is "
            f"declared with {expected.value} scope"
        )
    return name


@dataclass(frozen=True)
class Variable:
    """A named, sized pseudocode variable.

    ``size`` is the number of words the variable occupies in its memory
    space; scalars have size 1.
    """

    name: str
    size: int
    scope: Scope

    def __post_init__(self) -> None:
        ensure_positive_int(self.size, "size")
        validate_name(self.name, self.scope)

    @property
    def is_scalar(self) -> bool:
        """Whether the variable is a single word."""
        return self.size == 1


def host_var(name: str, size: int = 1) -> Variable:
    """Declare a host variable (name must start with a capital letter)."""
    return Variable(name=name, size=size, scope=Scope.HOST)


def global_var(name: str, size: int = 1) -> Variable:
    """Declare a global variable (name must start with a lower-case letter)."""
    return Variable(name=name, size=size, scope=Scope.GLOBAL)


def shared_var(name: str, size: int = 1) -> Variable:
    """Declare a shared variable (name must start with an underscore)."""
    return Variable(name=name, size=size, scope=Scope.SHARED)
