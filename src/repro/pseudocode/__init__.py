"""The ATGPU pseudocode notation as an embedded DSL.

The paper extends the AGPU pseudocode with explicit data transfer; this
package implements that notation as Python objects: variables with the
paper's three scopes and naming conventions, statements for the ``W`` /
``⇐`` / ``←`` operators, rounds and programs, static validation of the
notation's rules, a static analyzer that derives the Section III metrics,
an interpreter that executes programs on the simulator, and a renderer that
prints programs in the paper's listing style.
"""

from repro.pseudocode.analyzer import analyse_program, analyse_round
from repro.pseudocode.ast_nodes import (
    Barrier,
    Compute,
    GlobalToShared,
    If,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    Statement,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.interpreter import (
    ExecutionResult,
    MissingSemanticsError,
    ProgramInterpreter,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.render import render_launch, render_program
from repro.pseudocode.validation import ValidationError, is_valid, validate_program
from repro.pseudocode.variables import (
    NamingError,
    Scope,
    Variable,
    global_var,
    host_var,
    scope_of_name,
    shared_var,
)

__all__ = [
    "analyse_program",
    "analyse_round",
    "Barrier",
    "Compute",
    "GlobalToShared",
    "If",
    "KernelLaunch",
    "Loop",
    "SharedCompute",
    "SharedToGlobal",
    "Statement",
    "TransferIn",
    "TransferOut",
    "ExecutionResult",
    "MissingSemanticsError",
    "ProgramInterpreter",
    "Program",
    "Round",
    "render_launch",
    "render_program",
    "ValidationError",
    "is_valid",
    "validate_program",
    "NamingError",
    "Scope",
    "Variable",
    "global_var",
    "host_var",
    "scope_of_name",
    "shared_var",
]
