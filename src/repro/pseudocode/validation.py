"""Static validation of ATGPU pseudocode programs.

Checks the rules the notation imposes (Section II of the paper):

* naming conventions already enforced by variable construction are
  re-checked against the statements that use the variables;
* every variable referenced by a statement must be declared;
* the ``W`` operator may only connect host and global variables, ``⇐`` only
  global and shared, ``←`` only produces shared values;
* an ``if`` statement has a single conditional block (no ``else``) -- this is
  structural in :class:`~repro.pseudocode.ast_nodes.If`, but nesting depth is
  limited to keep divergence analysable;
* capacity rules against a machine: declared global variables must fit in
  ``G`` and each kernel's shared declarations in ``M``.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.machine import ATGPUMachine
from repro.pseudocode.ast_nodes import (
    Barrier,
    Compute,
    GlobalToShared,
    If,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    Statement,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import Scope


class ValidationError(ValueError):
    """Raised when a pseudocode program violates the notation's rules."""


#: Maximum nesting depth of If statements tolerated by the validator.
MAX_IF_DEPTH = 1


def _walk(statements: Iterable[Statement], depth: int = 0):
    for statement in statements:
        yield statement, depth
        if isinstance(statement, If):
            yield from _walk(statement.body, depth + 1)
        elif isinstance(statement, Loop):
            yield from _walk(statement.body, depth)


def _check_statement_scopes(program: Program, statement: Statement, errors: List[str]) -> None:
    def require(name: str, scope: Scope, role: str) -> None:
        if not program.declared(name):
            errors.append(f"{role} {name!r} is not declared by program {program.name!r}")
            return
        actual = program.variable(name).scope
        if actual is not scope:
            errors.append(
                f"{role} {name!r} must be a {scope.value} variable, "
                f"but it is declared as {actual.value}"
            )

    if isinstance(statement, GlobalToShared):
        require(statement.dest, Scope.SHARED, "global-read destination")
        require(statement.src, Scope.GLOBAL, "global-read source")
    elif isinstance(statement, SharedToGlobal):
        require(statement.dest, Scope.GLOBAL, "global-write destination")
        require(statement.src, Scope.SHARED, "global-write source")
    elif isinstance(statement, SharedCompute):
        require(statement.dest, Scope.SHARED, "shared-compute destination")


def validate_round(program: Program, round_: Round, errors: List[str]) -> None:
    """Collect rule violations of one round into ``errors``."""
    for transfer in round_.transfers_in:
        if not program.declared(transfer.dest) or not program.declared(transfer.src):
            errors.append(
                f"transfer {transfer.src!r} W {transfer.dest!r} references an "
                "undeclared variable"
            )
    for transfer in round_.transfers_out:
        if not program.declared(transfer.dest) or not program.declared(transfer.src):
            errors.append(
                f"transfer {transfer.src!r} W {transfer.dest!r} references an "
                "undeclared variable"
            )
    for launch in round_.launches:
        for declaration in launch.shared_declarations:
            if not program.declared(declaration.name):
                errors.append(
                    f"kernel {launch.label!r} declares shared variable "
                    f"{declaration.name!r} which is not in the program's declarations"
                )
        for statement, depth in _walk(launch.body):
            if isinstance(statement, If) and depth >= MAX_IF_DEPTH:
                errors.append(
                    f"kernel {launch.label!r} nests If statements deeper than "
                    f"{MAX_IF_DEPTH}; the notation allows a single conditional block"
                )
            _check_statement_scopes(program, statement, errors)


def validate_program(program: Program, machine: ATGPUMachine = None) -> None:
    """Raise :class:`ValidationError` listing every rule violation found."""
    errors: List[str] = []
    for round_ in program.rounds:
        validate_round(program, round_, errors)
    if machine is not None:
        if program.global_words() > machine.G:
            errors.append(
                f"declared global variables occupy {program.global_words()} words "
                f"which exceeds the machine's G={machine.G}; the algorithm cannot "
                "be run on this model instance"
            )
        if program.shared_words_per_mp() > machine.M:
            errors.append(
                f"per-block shared declarations occupy {program.shared_words_per_mp()} "
                f"words which exceeds the machine's M={machine.M}"
            )
    if errors:
        raise ValidationError(
            f"program {program.name!r} violates the pseudocode rules:\n  - "
            + "\n  - ".join(errors)
        )


def is_valid(program: Program, machine: ATGPUMachine = None) -> bool:
    """Return ``True`` when :func:`validate_program` does not raise."""
    try:
        validate_program(program, machine)
    except ValidationError:
        return False
    return True
