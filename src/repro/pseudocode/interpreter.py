"""Execution of pseudocode programs on the abstract-GPU simulator.

The interpreter turns each :class:`~repro.pseudocode.ast_nodes.KernelLaunch`
into a :class:`~repro.simulator.kernel.KernelProgram` whose per-block body
walks the statement list, performing real data movement through the block
context.  Rounds are executed exactly as the model prescribes: inward ``W``
transfers, kernel launches, outward ``W`` transfers, synchronisation.

Only statements that carry executable semantics (index / compute callables)
can be interpreted; a program written purely for analysis raises
:class:`MissingSemanticsError` when executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.pseudocode.ast_nodes import (
    Barrier,
    Compute,
    GlobalToShared,
    If,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    Statement,
)
from repro.pseudocode.program import Program
from repro.pseudocode.validation import validate_program
from repro.simulator.device import GPUDevice
from repro.simulator.kernel import BlockContext, KernelProgram


class MissingSemanticsError(RuntimeError):
    """Raised when executing a statement that has no executable semantics."""


@dataclass
class ExecutionResult:
    """Outputs and timing of one interpreted program run."""

    outputs: Dict[str, np.ndarray]
    total_time_s: float
    kernel_time_s: float
    transfer_time_s: float
    sync_time_s: float

    @property
    def observed_transfer_proportion(self) -> float:
        """``ΔE`` of the run (transfer share of the total time)."""
        if self.total_time_s == 0:
            return 0.0
        return self.transfer_time_s / self.total_time_s


class _DSLKernelAdapter(KernelProgram):
    """Adapts a pseudocode kernel launch to the simulator kernel interface."""

    def __init__(self, launch: KernelLaunch, program: Program,
                 params: Dict[str, float]) -> None:
        self.launch = launch
        self.program = program
        self.params = dict(params)
        self.name = launch.label

    def grid_size(self) -> int:
        return self.launch.grid(self.params)

    def array_names(self) -> Tuple[str, ...]:
        names = set()
        for statement, _ in _walk(self.launch.body):
            if isinstance(statement, GlobalToShared):
                names.add(statement.src)
            elif isinstance(statement, SharedToGlobal):
                names.add(statement.dest)
        return tuple(sorted(names))

    def shared_words_per_block(self) -> int:
        return self.launch.shared_words_per_block()

    # ------------------------------------------------------------------ #
    # Block body
    # ------------------------------------------------------------------ #
    def run_block(self, ctx: BlockContext) -> None:
        shared: Dict[str, np.ndarray] = {}
        for declaration in self.launch.shared_declarations:
            shared[declaration.name] = ctx.shared_alloc(
                declaration.name, declaration.size
            )
        params = dict(self.params)
        self._run_statements(self.launch.body, ctx, shared, params)

    def _run_statements(self, statements, ctx: BlockContext,
                        shared: Dict[str, np.ndarray],
                        params: Dict[str, float]) -> None:
        lanes = ctx.lanes
        for statement in statements:
            if isinstance(statement, GlobalToShared):
                self._require(statement.global_index, statement)
                g_idx = np.asarray(statement.global_index(ctx.block_index, lanes, params))
                values = ctx.global_read(statement.src, g_idx)
                s_idx = (np.asarray(statement.shared_index(ctx.block_index, lanes, params))
                         if statement.shared_index else lanes[: g_idx.size])
                ctx.shared_write(statement.dest, s_idx, values)
                shared[statement.dest][s_idx] = values
            elif isinstance(statement, SharedToGlobal):
                self._require(statement.global_index, statement)
                g_idx = np.asarray(statement.global_index(ctx.block_index, lanes, params))
                s_idx = (np.asarray(statement.shared_index(ctx.block_index, lanes, params))
                         if statement.shared_index else lanes[: g_idx.size])
                if statement.lane_mask is not None:
                    mask = np.asarray(
                        statement.lane_mask(ctx.block_index, lanes, params), dtype=bool
                    )
                    g_idx, s_idx = g_idx[mask[: g_idx.size]], s_idx[mask[: s_idx.size]]
                    if g_idx.size == 0:
                        ctx.compute(statement.operation_count(params), label="masked store")
                        continue
                values = ctx.shared_read(statement.src, s_idx)
                ctx.global_write(statement.dest, g_idx, values)
            elif isinstance(statement, SharedCompute):
                self._require(statement.compute, statement)
                values = np.asarray(statement.compute(shared, lanes, params))
                s_idx = (np.asarray(statement.shared_index(ctx.block_index, lanes, params))
                         if statement.shared_index else lanes[: values.size])
                ctx.shared_write(statement.dest, s_idx, values)
                shared[statement.dest][s_idx] = values
            elif isinstance(statement, Compute):
                ctx.compute(statement.operation_count(params),
                            label=statement.description)
            elif isinstance(statement, Barrier):
                ctx.barrier()
            elif isinstance(statement, If):
                # All paths are executed by the lockstep warp: charge the body
                # operations, then apply effects only where the mask holds.
                ctx.compute(float(statement.operations if not callable(statement.operations)
                                  else statement.operations(params)),
                            label=statement.condition_description)
                self._run_statements(statement.body, ctx, shared, params)
            elif isinstance(statement, Loop):
                iterations = statement.iterations(params)
                for i in range(iterations):
                    inner = dict(params)
                    inner[statement.var] = i
                    self._run_statements(statement.body, ctx, shared, inner)
            else:  # pragma: no cover - defensive
                raise MissingSemanticsError(
                    f"interpreter does not know statement type {type(statement).__name__}"
                )

    @staticmethod
    def _require(fn, statement: Statement) -> None:
        if fn is None:
            raise MissingSemanticsError(
                f"statement {type(statement).__name__} has no executable semantics "
                "(index/compute callables); this program can only be analysed"
            )


def _walk(statements):
    for statement in statements:
        yield statement, 0
        if isinstance(statement, (If, Loop)):
            yield from _walk(statement.body)


class ProgramInterpreter:
    """Runs pseudocode programs on a :class:`~repro.simulator.device.GPUDevice`."""

    def __init__(self, device: Optional[GPUDevice] = None) -> None:
        self.device = device or GPUDevice()

    def execute(
        self,
        program: Program,
        host_inputs: Dict[str, np.ndarray],
        params: Optional[Dict[str, float]] = None,
        validate: bool = True,
    ) -> ExecutionResult:
        """Execute ``program`` and return its host outputs and timings.

        ``host_inputs`` maps host-variable names to NumPy arrays; every host
        variable used as a transfer source must be present.  Outputs are the
        host variables used as transfer destinations.
        """
        if validate:
            validate_program(program, self.device.config.abstract_machine())
        run_params = dict(program.params if params is None else params)
        run_params.setdefault("b", self.device.config.warp_width)
        outputs: Dict[str, np.ndarray] = {}
        # Global variables that are only ever written by kernels (e.g. the
        # output vector of vector addition) still need device allocations of
        # their declared size before the first launch references them.
        from repro.pseudocode.variables import Scope

        for variable in program.variables_in_scope(Scope.GLOBAL):
            if variable.name not in self.device.global_memory:
                self.device.allocate(variable.name, variable.size, dtype=np.float64)
        for round_ in program.rounds:
            for transfer in round_.transfers_in:
                if transfer.src not in host_inputs:
                    raise KeyError(
                        f"host input {transfer.src!r} required by program "
                        f"{program.name!r} was not provided"
                    )
                data = np.asarray(host_inputs[transfer.src])
                words = int(round(transfer.word_count(run_params)))
                self.device.memcpy_htod(transfer.dest, data.reshape(-1)[:words])
            for launch in round_.launches:
                adapter = _DSLKernelAdapter(launch, program, run_params)
                self.device.launch(adapter)
            for transfer in round_.transfers_out:
                words = int(round(transfer.word_count(run_params)))
                array = self.device.array(transfer.src)
                if words < array.length:
                    outputs[transfer.dest] = self.device.memcpy_dtoh_partial(
                        transfer.src, words
                    )
                else:
                    outputs[transfer.dest] = self.device.memcpy_dtoh(transfer.src)
            if round_.synchronise:
                self.device.synchronise(label=round_.label or "round sync")
        return ExecutionResult(
            outputs=outputs,
            total_time_s=self.device.total_time_s,
            kernel_time_s=self.device.kernel_time_s,
            transfer_time_s=self.device.transfer_time_s,
            sync_time_s=self.device.sync_time_s,
        )
