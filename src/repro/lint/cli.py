"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit status: ``0`` when no active finding remains (suppressed and
baselined findings do not count), ``1`` when violations exist, ``2`` for
usage errors.  ``--format json`` prints the full machine-readable report;
``--out`` additionally writes that JSON to a file regardless of the
display format (the CI lane uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import default_rules, lint_paths
from repro.lint.findings import Baseline, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for the repro package: "
            "lock discipline, batch-parity coverage, frozen-type, "
            "ceil-division and from_dict rules."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--tests", default="tests", metavar="DIR",
        help=(
            "test tree for cross-reference rules such as PAR001 "
            "(default: tests; skipped when the directory does not exist)"
        ),
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of accepted findings (they do not fail the run)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated subset of rule ids to run (default: all)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON report to FILE (any display format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    only = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        rules = default_rules(only=only)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
            if rule.rationale:
                print(f"        {rule.rationale}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        names = ", ".join(str(p) for p in missing)
        print(f"no such file or directory: {names}", file=sys.stderr)
        return 2
    tests_root: Optional[Path] = Path(args.tests)
    if not tests_root.exists():
        tests_root = None

    baseline = (
        Baseline.load(Path(args.baseline)) if args.baseline else None
    )
    report = lint_paths(
        paths, tests_root=tests_root, rules=rules, baseline=baseline
    )

    payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(payload + "\n", encoding="utf-8")
    if args.format == "json":
        print(payload)
    else:
        for line in render_text(report.findings):
            print(line)
        summary = report.summary()
        print(
            f"{summary['files']} files checked, "
            f"{summary['active']} active finding(s) "
            f"({summary['suppressed']} suppressed, "
            f"{summary['baselined']} baselined)"
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
