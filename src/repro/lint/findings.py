"""Typed findings, suppression comments and baselines for ``repro.lint``.

A :class:`Finding` is one rule violation anchored to a file and line.  Two
mechanisms keep a finding from failing the build:

* an **inline suppression comment** on the offending line::

      object.__setattr__(self, "_memo", value)  # repro-lint: disable=FRZ001 -- write-once memo

  Several rules separate with commas (``disable=LCK001,CEIL001``), and a
  standalone ``# repro-lint: disable-file=RULE`` line anywhere in a file
  disables the rule for that whole file.  Text after ``--`` (or in
  parentheses) records the justification and is carried on the finding.

* a **baseline file** (JSON) listing known findings by rule and path —
  the escape hatch for adopting a new rule over a codebase with existing
  debt without suppressing in source.  Entries match on ``rule`` + ``path``
  and, when given, ``line``.

``python -m repro.lint`` exits non-zero only for findings that are neither
suppressed nor baselined.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """How bad a finding is; only errors fail the CI lane."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    column: int = 0
    #: Set when an inline comment suppresses this finding.
    suppressed: bool = False
    #: The justification text of the suppression comment, if any.
    suppression_reason: str = ""
    #: Set when a baseline entry covers this finding.
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Whether the finding should fail the run."""
        return not self.suppressed and not self.baselined

    def location(self) -> str:
        """``path:line`` — the clickable anchor used by the text format."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        """The finding as a JSON-serialisable dictionary."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
            "baselined": self.baselined,
            "active": self.active,
        }


# --------------------------------------------------------------------- #
# Inline suppression comments
# --------------------------------------------------------------------- #
#: ``# repro-lint: disable=RULE[,RULE...] [-- reason]`` (same line) or
#: ``# repro-lint: disable-file=RULE[,RULE...] [-- reason]`` (whole file).
_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
    r"(?:\s*(?:--|—)\s*(?P<reason>.*))?"
)


@dataclass(frozen=True)
class Suppressions:
    """Parsed suppression comments of one source file.

    ``by_line`` maps line numbers to ``{rule: reason}``; ``file_wide`` maps
    rules disabled for the whole file to their reason.  The wildcard rule
    ``*`` matches every rule.
    """

    by_line: Mapping[int, Mapping[str, str]] = field(default_factory=dict)
    file_wide: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        """Parse every suppression comment out of ``source``."""
        by_line: Dict[int, Dict[str, str]] = {}
        file_wide: Dict[str, str] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION.search(text)
            if match is None:
                continue
            reason = (match.group("reason") or "").strip().rstrip(")")
            rules = [
                r.strip() for r in match.group("rules").split(",") if r.strip()
            ]
            target = (
                file_wide
                if match.group("scope") == "disable-file"
                else by_line.setdefault(lineno, {})
            )
            for rule in rules:
                target[rule] = reason
        return cls(by_line=by_line, file_wide=file_wide)

    def lookup(self, rule: str, line: int) -> Optional[str]:
        """The suppression reason covering ``rule`` at ``line``, or ``None``.

        A per-line comment covers its own line and the line directly
        below it, so a suppression may sit on the flagged statement or on
        a standalone comment line immediately above it.
        """
        for table in (
            self.file_wide,
            self.by_line.get(line, {}),
            self.by_line.get(line - 1, {}),
        ):
            for key in (rule, "*"):
                if key in table:
                    return table[key]
        return None

    def apply(self, finding: Finding) -> Finding:
        """The finding, marked suppressed when a comment covers it."""
        reason = self.lookup(finding.rule, finding.line)
        if reason is None:
            return finding
        return replace(
            finding, suppressed=True, suppression_reason=reason or "",
        )


# --------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Baseline:
    """Known findings accepted as pre-existing debt.

    The file format is JSON: ``{"findings": [{"rule": ..., "path": ...,
    "line": ...?, "reason": ...?}, ...]}``.  ``line`` is optional — an
    entry without one matches every line of the file, which keeps baselines
    stable across unrelated edits above the finding.
    """

    entries: Tuple[Mapping[str, Any], ...] = ()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data.get("findings", data if isinstance(data, list) else [])
        if not isinstance(entries, list):
            raise ValueError(
                f"baseline {path} must hold a list of findings; "
                f"got {type(entries).__name__}"
            )
        return cls(entries=tuple(entries))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        return cls(entries=tuple(
            {"rule": f.rule, "path": f.path, "line": f.line}
            for f in findings
        ))

    def to_json(self) -> str:
        """The baseline as indented JSON (the on-disk format)."""
        return json.dumps(
            {"findings": list(self.entries)}, indent=2, sort_keys=True
        )

    def matches(self, finding: Finding) -> bool:
        """Whether any entry covers ``finding``."""
        for entry in self.entries:
            if entry.get("rule") != finding.rule:
                continue
            if entry.get("path") != finding.path:
                continue
            line = entry.get("line")
            if line is None or int(line) == finding.line:
                return True
        return False

    def apply(self, finding: Finding) -> Finding:
        """The finding, marked baselined when an entry covers it."""
        if not finding.suppressed and self.matches(finding):
            return replace(finding, baselined=True)
        return finding


def render_text(findings: Sequence[Finding]) -> List[str]:
    """The text-format report lines, one per finding (active ones first)."""
    lines: List[str] = []
    for finding in sorted(
        findings, key=lambda f: (not f.active, f.path, f.line)
    ):
        status = ""
        if finding.suppressed:
            status = " [suppressed" + (
                f": {finding.suppression_reason}]"
                if finding.suppression_reason
                else "]"
            )
        elif finding.baselined:
            status = " [baselined]"
        lines.append(
            f"{finding.location()}: {finding.severity.value} "
            f"{finding.rule}: {finding.message}{status}"
        )
    return lines
