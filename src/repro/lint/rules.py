"""The initial rule pack: this repository's real invariants, checked at AST.

Each rule encodes an invariant the test suite cannot exhaustively enforce:

==========  ==========================================================
``LCK001``  lock discipline — an attribute a class ever assigns under
            ``with self._lock`` must never be touched outside a lock
            block of that class (module-level globals guarded by a
            module-level lock are held to the same standard)
``PAR001``  batch-parity coverage — every backend family registering a
            vectorized ``evaluate_batch`` in ``core/backends.py`` must
            be exercised by a test module that asserts scalar parity
``FRZ001``  frozen-type mutation — ``object.__setattr__`` on a frozen
            dataclass is only legitimate during ``__post_init__``
``CEIL001`` ceil discipline — metrics/cost code must spell
            ceil-of-quotient as :func:`repro.utils.numerics.ceil_div`
            so the scalar and batch paths stay bitwise identical
``DIC001``  ``from_dict`` coverage — every deserialiser must reject
            unknown keys via the typed ``UnknownFieldError`` machinery
``SIM001``  batched-simulator parity coverage — every ``simulate_*``
            entry point in ``simulator/batch.py``, and every algorithm
            opting out of data-dependent probe tracing, must be
            exercised by a test module asserting scalar parity
==========  ==========================================================

The rules are deliberately conservative: they reason over syntactic
evidence (`self.X = threading.Lock()`, ``with self._lock:`` blocks,
``@dataclass(frozen=True)`` decorators) rather than attempting type
inference, and anything they cannot prove safe is reported so a human
either fixes it or records a justification with a suppression comment.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    PackageContext,
    Rule,
    SourceFile,
    register_rule,
)
from repro.lint.findings import Finding

#: Constructors whose result makes an attribute a lock guard.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _is_lock_constructor(node: ast.AST) -> bool:
    """Whether ``node`` is a ``threading.Lock()``-style constructor call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<name>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_names(target: ast.AST, attr_of_self: bool) -> Iterator[str]:
    """Names written by one assignment target.

    With ``attr_of_self`` the targets of interest are ``self.X`` and
    ``self.X[...]``; without it, module globals ``X`` and ``X[...]``.
    """
    nodes = [target]
    while nodes:
        node = nodes.pop()
        if isinstance(node, (ast.Tuple, ast.List)):
            nodes.extend(node.elts)
            continue
        if isinstance(node, ast.Starred):
            nodes.append(node.value)
            continue
        if isinstance(node, ast.Subscript):
            node = node.value
        if attr_of_self:
            name = _self_attr(node)
            if name is not None:
                yield name
        elif isinstance(node, ast.Name):
            yield node.id


def _with_lock_bodies(
    fn: ast.AST, lock_names: Set[str], attr_of_self: bool
) -> Iterator[ast.With]:
    """Every ``with`` statement in ``fn`` whose context is a known lock."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            # ``with self._lock:`` / ``with LOCK:`` and the acquire-with-
            # timeout spelling ``with self._lock.acquire():`` both guard.
            if isinstance(expr, ast.Call):
                expr = expr.func
                if isinstance(expr, ast.Attribute) and expr.attr == "acquire":
                    expr = expr.value
            if attr_of_self:
                name = _self_attr(expr)
            else:
                name = expr.id if isinstance(expr, ast.Name) else None
            if name in lock_names:
                yield node
                break


def _function_locals(fn: ast.AST) -> Set[str]:
    """Names local to ``fn``: parameters plus every bound name.

    Over-approximates (comprehension targets have their own scope but are
    included) — erring toward locals avoids false module-global findings.
    Names declared ``global`` are removed; rebinding those mutates module
    state for real.
    """
    locals_: Set[str] = {
        arg.arg
        for arg in (
            fn.args.args + fn.args.kwonlyargs + fn.args.posonlyargs
        )
    }
    for vararg in (fn.args.vararg, fn.args.kwarg):
        if vararg is not None:
            locals_.add(vararg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
    return locals_ - declared_global


def _nodes_under(stmts: Sequence[ast.stmt]) -> Set[int]:
    """Identity set of every AST node inside the given statements."""
    seen: Set[int] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            seen.add(id(node))
    return seen


@register_rule
class LockDisciplineRule(Rule):
    """LCK001: shared state a lock ever guards is *always* guarded."""

    id = "LCK001"
    title = "lock-guarded attribute accessed outside the lock"
    rationale = (
        "Session caches, the serving queue/stats and the backend registry "
        "are shared across threads; one unlocked read of a counter that is "
        "elsewhere mutated under the lock is a data race no test reliably "
        "reproduces."
    )

    def check(self, ctx: PackageContext) -> Iterator[Finding]:
        for source in self.targets(ctx):
            yield from self._check_classes(source)
            yield from self._check_module(source)

    # ------------------------------------------------------------------ #
    # Class-level discipline: self.<attr> under ``with self._lock``
    # ------------------------------------------------------------------ #
    def _check_classes(self, source: SourceFile) -> Iterator[Finding]:
        for cls in ast.walk(source.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = [
                stmt for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            lock_names = self._class_lock_names(methods)
            if not lock_names:
                continue
            guarded, locked_nodes = self._guarded_attributes(
                methods, lock_names
            )
            guarded -= lock_names
            if not guarded:
                continue
            for method in methods:
                if method.name in ("__init__", "__post_init__"):
                    continue
                for node in ast.walk(method):
                    name = _self_attr(node)
                    if name is None or name not in guarded:
                        continue
                    if id(node) in locked_nodes:
                        continue
                    access = (
                        "written" if isinstance(node.ctx, ast.Store)
                        else "read"
                    )
                    yield self.finding(
                        source, node.lineno,
                        f"attribute {name!r} of class {cls.name!r} is "
                        f"assigned under a lock elsewhere but {access} "
                        f"without one in {method.name!r}; take the lock or "
                        "suppress with a reason",
                        column=node.col_offset,
                    )

    @staticmethod
    def _class_lock_names(methods: Sequence[ast.AST]) -> Set[str]:
        locks: Set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_constructor(
                    node.value
                ):
                    for target in node.targets:
                        name = _self_attr(target)
                        if name is not None:
                            locks.add(name)
        return locks

    @staticmethod
    def _guarded_attributes(
        methods: Sequence[ast.AST], lock_names: Set[str]
    ) -> Tuple[Set[str], Set[int]]:
        """Attributes assigned under a lock, plus every node under one."""
        guarded: Set[str] = set()
        locked_nodes: Set[int] = set()
        for method in methods:
            for with_node in _with_lock_bodies(
                method, lock_names, attr_of_self=True
            ):
                body_nodes = _nodes_under(with_node.body)
                locked_nodes |= body_nodes
                for node in ast.walk(with_node):
                    if isinstance(node, ast.Assign):
                        for target in node.targets:
                            guarded.update(_assigned_names(target, True))
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        guarded.update(_assigned_names(node.target, True))
        return guarded, locked_nodes

    # ------------------------------------------------------------------ #
    # Module-level discipline: globals under ``with _SOME_LOCK``
    # ------------------------------------------------------------------ #
    def _check_module(self, source: SourceFile) -> Iterator[Finding]:
        lock_names = {
            name
            for stmt in source.tree.body
            if isinstance(stmt, ast.Assign)
            and _is_lock_constructor(stmt.value)
            for target in stmt.targets
            if isinstance(target, ast.Name)
            for name in [target.id]
        }
        if not lock_names:
            return
        functions = [
            stmt for stmt in ast.walk(source.tree)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        fn_locals = {id(fn): _function_locals(fn) for fn in functions}
        guarded: Set[str] = set()
        locked_nodes: Set[int] = set()
        for fn in functions:
            assigned: Set[str] = set()
            for with_node in _with_lock_bodies(
                fn, lock_names, attr_of_self=False
            ):
                locked_nodes |= _nodes_under(with_node.body)
                for node in ast.walk(with_node):
                    if isinstance(node, ast.Assign):
                        for target in node.targets:
                            assigned.update(_assigned_names(target, False))
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        assigned.update(_assigned_names(node.target, False))
            # A name assigned inside the function is a local, not the
            # module global, unless declared ``global`` — only those and
            # subscript stores (``_REGISTRY[k] = v``) guard module state.
            guarded |= assigned - fn_locals[id(fn)]
        guarded -= lock_names
        if not guarded:
            return
        for fn in functions:
            local_names = fn_locals[id(fn)]
            for node in ast.walk(fn):
                if not isinstance(node, ast.Name):
                    continue
                if node.id not in guarded or node.id in local_names:
                    continue
                if id(node) in locked_nodes:
                    continue
                access = (
                    "written" if isinstance(node.ctx, ast.Store) else "read"
                )
                yield self.finding(
                    source, node.lineno,
                    f"module global {node.id!r} is assigned under a lock "
                    f"elsewhere but {access} without one in {fn.name!r}; "
                    "take the lock or suppress with a reason",
                    column=node.col_offset,
                )


# --------------------------------------------------------------------- #
# PAR001 — batch-parity coverage
# --------------------------------------------------------------------- #
#: Vocabulary a test file must use (with the family name) to count as a
#: scalar/batch parity assertion.
_PARITY_EVIDENCE = re.compile(r"parity|bitwise|bit.for.bit", re.IGNORECASE)


def _module_str_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (incl. annotated)."""
    out: Dict[str, str] = {}
    for stmt in tree.body:
        value = None
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        if (
            value is not None
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    out[target.id] = value.value
    return out


def _name_candidates(
    expr: ast.expr, consts: Dict[str, str]
) -> List[str]:
    """Possible backend-name strings an expression may evaluate to."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return [expr.value]
    if isinstance(expr, ast.Name):
        value = consts.get(expr.id)
        return [value] if value is not None else []
    if isinstance(expr, ast.BoolOp):
        out: List[str] = []
        for value in expr.values:
            out.extend(_name_candidates(value, consts))
        return out
    if isinstance(expr, ast.IfExp):
        return _name_candidates(expr.body, consts) + _name_candidates(
            expr.orelse, consts
        )
    if isinstance(expr, ast.JoinedStr):
        # Longest resolvable prefix of the f-string: stop at the first
        # part whose value is unknown (``f"atgpu-async{chunks}"`` →
        # ``"atgpu-async"``; ``f"{TOPOLOGY_BACKEND}-{hash}"`` →
        # ``"atgpu-topo-"``).
        prefix = ""
        for part in expr.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                prefix += part.value
                continue
            if (
                isinstance(part, ast.FormattedValue)
                and isinstance(part.value, ast.Name)
                and part.value.id in consts
            ):
                prefix += consts[part.value.id]
                continue
            break
        prefix = prefix.rstrip("-")
        return [prefix] if prefix else []
    return []


@register_rule
class BatchParityCoverageRule(Rule):
    """PAR001: every batch-capable backend family has a parity test."""

    id = "PAR001"
    title = "backend family registers evaluate_batch without a parity test"
    rationale = (
        "The batch evaluators promise bit-for-bit agreement with the "
        "scalar models; a family whose vectorized path no test compares "
        "against the scalar path can drift silently."
    )
    #: File the registrations live in.
    registry_suffix = "core/backends.py"

    def check(self, ctx: PackageContext) -> Iterator[Finding]:
        registries = [
            f for f in ctx.files if f.path.endswith(self.registry_suffix)
        ]
        if not registries or not ctx.test_files:
            # No registry in the linted tree (fixture runs) or no test
            # tree to cross-reference: nothing checkable.
            return
        for source in registries:
            consts = _module_str_constants(source.tree)
            for family, node in self._families(source.tree, consts):
                if not self._has_parity_test(family, ctx.test_files):
                    yield self.finding(
                        source, node.lineno,
                        f"backend family {family!r} registers a vectorized "
                        "evaluate_batch but no test module mentions it "
                        "together with a scalar-parity assertion "
                        "(looked for the family name plus "
                        "'parity'/'bitwise'/'bit-for-bit' in the test tree)",
                    )

    def _families(
        self, tree: ast.Module, consts: Dict[str, str]
    ) -> Iterator[Tuple[str, ast.Call]]:
        """(family-name, make_backend call) for batch-capable backends."""
        # Map each make_backend call to its enclosing function (if any) so
        # factory-built names can be recovered from local assignments.
        parents: Dict[int, ast.AST] = {}
        for fn in ast.walk(tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for node in ast.walk(fn):
                    parents.setdefault(id(node), fn)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "make_backend":
                continue
            batch_kw = next(
                (kw for kw in node.keywords if kw.arg == "evaluate_batch"),
                None,
            )
            if batch_kw is None or (
                isinstance(batch_kw.value, ast.Constant)
                and batch_kw.value.value is None
            ):
                continue
            if not node.args:
                continue
            candidates = _name_candidates(node.args[0], consts)
            if not candidates:
                candidates = self._candidates_from_function(
                    node.args[0], parents.get(id(node)), consts
                )
            if candidates:
                yield candidates[0], node
            else:
                # A batch-capable registration whose name the rule cannot
                # resolve is itself a finding: the coverage contract is
                # unverifiable.
                yield "<unresolved>", node

    @staticmethod
    def _candidates_from_function(
        first_arg: ast.expr,
        fn: Optional[ast.AST],
        consts: Dict[str, str],
    ) -> List[str]:
        """Recover the name from assignments in the enclosing factory."""
        if fn is None or not isinstance(first_arg, ast.Name):
            return []
        out: List[str] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == first_arg.id
                    ):
                        out.extend(_name_candidates(node.value, consts))
        return out

    @staticmethod
    def _has_parity_test(
        family: str, test_files: Sequence[SourceFile]
    ) -> bool:
        if family == "<unresolved>":
            return False
        for test in test_files:
            if family in test.source and _PARITY_EVIDENCE.search(test.source):
                return True
        return False


# --------------------------------------------------------------------- #
# SIM001 — batched-simulator parity coverage
# --------------------------------------------------------------------- #
@register_rule
class SimBatchParityCoverageRule(Rule):
    """SIM001: every batched simulator entry point has a scalar-parity test."""

    id = "SIM001"
    title = "batched simulator path without a scalar-parity test"
    rationale = (
        "The batched observation paths promise bit-for-bit agreement with "
        "the scalar per-size loops, and algorithms asserting "
        "sim_trace_data_dependent = False additionally promise their "
        "traces ignore input values; either claim can drift silently "
        "unless a test compares the two paths exactly."
    )
    #: File the batched entry points live in.
    batch_suffix = "simulator/batch.py"
    #: Directory of the per-algorithm opt-outs.
    algorithms_part = "algorithms"

    def check(self, ctx: PackageContext) -> Iterator[Finding]:
        if not ctx.test_files:
            # No test tree to cross-reference (fixture runs).
            return
        for source in ctx.files:
            if source.path.endswith(self.batch_suffix):
                yield from self._check_entry_points(source, ctx)
            if f"/{self.algorithms_part}/" in source.path.replace("\\", "/"):
                yield from self._check_opt_outs(source, ctx)

    def _check_entry_points(
        self, source: SourceFile, ctx: PackageContext
    ) -> Iterator[Finding]:
        for node in source.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.startswith("simulate_"):
                continue
            if not self._has_parity_test(node.name, ctx.test_files):
                yield self.finding(
                    source, node.lineno,
                    f"batched simulator entry point {node.name!r} has no "
                    "scalar-parity test (looked for its name plus "
                    "'parity'/'bitwise'/'bit-for-bit' in the test tree); "
                    "bit-for-bit agreement with the scalar path is the "
                    "function's contract",
                )

    def _check_opt_outs(
        self, source: SourceFile, ctx: PackageContext
    ) -> Iterator[Finding]:
        for cls in ast.walk(source.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            opt_out = self._opt_out_assignment(cls)
            if opt_out is None:
                continue
            algorithm = self._algorithm_name(cls)
            if not self._has_parity_test(algorithm, ctx.test_files):
                yield self.finding(
                    source, opt_out.lineno,
                    f"algorithm {algorithm!r} sets "
                    "sim_trace_data_dependent = False but no test module "
                    "mentions it together with a scalar-parity assertion; "
                    "the opt-out is only sound while a parity test proves "
                    "the traces ignore input values",
                )

    @staticmethod
    def _opt_out_assignment(cls: ast.ClassDef) -> Optional[ast.stmt]:
        """The ``sim_trace_data_dependent = False`` statement, if present."""
        for stmt in cls.body:
            targets: List[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not (
                isinstance(value, ast.Constant) and value.value is False
            ):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "sim_trace_data_dependent"
                ):
                    return stmt
        return None

    @staticmethod
    def _algorithm_name(cls: ast.ClassDef) -> str:
        """The class's ``name = "..."`` attribute, else the class name."""
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
                and any(
                    isinstance(t, ast.Name) and t.id == "name"
                    for t in stmt.targets
                )
            ):
                return stmt.value.value
        return cls.name

    @staticmethod
    def _has_parity_test(
        needle: str, test_files: Sequence[SourceFile]
    ) -> bool:
        for test in test_files:
            if needle in test.source and _PARITY_EVIDENCE.search(test.source):
                return True
        return False


# --------------------------------------------------------------------- #
# FRZ001 — frozen-type mutation
# --------------------------------------------------------------------- #
def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        for kw in decorator.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


@register_rule
class FrozenMutationRule(Rule):
    """FRZ001: no ``object.__setattr__`` on frozen types after construction."""

    id = "FRZ001"
    title = "frozen dataclass mutated outside __post_init__"
    rationale = (
        "ExperimentSpec and Topology are hashable cache keys; a post-init "
        "mutation changes identity out from under every cache and "
        "coalescing key that already captured the hash."
    )

    def check(self, ctx: PackageContext) -> Iterator[Finding]:
        for source in self.targets(ctx):
            for cls in ast.walk(source.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                if not _is_frozen_dataclass(cls):
                    continue
                for method in cls.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if method.name in ("__post_init__", "__init__"):
                        continue
                    for node in ast.walk(method):
                        if self._is_object_setattr(node):
                            yield self.finding(
                                source, node.lineno,
                                f"object.__setattr__ on frozen dataclass "
                                f"{cls.name!r} outside __post_init__ (in "
                                f"{method.name!r}); frozen instances are "
                                "cache keys — mutate only during "
                                "construction or suppress with a reason",
                                column=node.col_offset,
                            )

    @staticmethod
    def _is_object_setattr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
        )


# --------------------------------------------------------------------- #
# CEIL001 — ceil discipline
# --------------------------------------------------------------------- #
@register_rule
class CeilDisciplineRule(Rule):
    """CEIL001: ceil-of-quotient must be ``ceil_div``."""

    id = "CEIL001"
    title = "raw ceil-division idiom in metrics/cost code"
    rationale = (
        "Scalar/batch bit-for-bit parity holds only while every ceiling of "
        "a quotient is the same float-division idiom on both paths; "
        "repro.utils.numerics.ceil_div is the one blessed spelling."
    )
    scope_parts = ("core", "algorithms")
    exempt_suffixes = ("utils/numerics.py",)

    def check(self, ctx: PackageContext) -> Iterator[Finding]:
        for source in self.targets(ctx):
            for node in ast.walk(source.tree):
                if self._is_ceil_of_division(node):
                    yield self.finding(
                        source, node.lineno,
                        "ceil of a quotient spelled directly "
                        f"({self._spelling(node)}); route through "
                        "repro.utils.numerics.ceil_div so the scalar and "
                        "batch paths stay bitwise identical",
                        column=node.col_offset,
                    )
                elif self._is_negated_floordiv(node):
                    yield self.finding(
                        source, node.lineno,
                        "integer ceil idiom -(-a // b) detected; it "
                        "disagrees with the float-division ceil the batch "
                        "path uses — route through "
                        "repro.utils.numerics.ceil_div",
                        column=node.col_offset,
                    )

    @staticmethod
    def _is_ceil_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "ceil"
        return isinstance(func, ast.Attribute) and func.attr == "ceil"

    @classmethod
    def _is_ceil_of_division(cls, node: ast.AST) -> bool:
        return (
            cls._is_ceil_call(node)
            and len(node.args) == 1
            and isinstance(node.args[0], ast.BinOp)
            and isinstance(node.args[0].op, ast.Div)
        )

    @staticmethod
    def _is_negated_floordiv(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.BinOp)
            and isinstance(node.operand.op, ast.FloorDiv)
            and isinstance(node.operand.left, ast.UnaryOp)
            and isinstance(node.operand.left.op, ast.USub)
        )

    @staticmethod
    def _spelling(node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            return f"{func.value.id}.ceil over /"
        return "ceil over /"


# --------------------------------------------------------------------- #
# DIC001 — from_dict coverage
# --------------------------------------------------------------------- #
@register_rule
class FromDictCoverageRule(Rule):
    """DIC001: deserialisers reject unknown keys, loudly and typed."""

    id = "DIC001"
    title = "from_dict accepts unknown keys silently"
    rationale = (
        "Specs and topologies round-trip through JSON caches; a typo'd "
        "field that from_dict drops silently produces a default-valued "
        "object whose hash collides with nothing the author meant."
    )
    #: Call/raise targets accepted as unknown-key rejection evidence.
    accepted = ("UnknownFieldError", "reject_unknown_fields")

    def check(self, ctx: PackageContext) -> Iterator[Finding]:
        for source in self.targets(ctx):
            for node in ast.walk(source.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if node.name != "from_dict":
                    continue
                if not self._rejects_unknown(node):
                    yield self.finding(
                        source, node.lineno,
                        "from_dict does not reject unknown keys; call "
                        "repro.utils.validation.reject_unknown_fields (or "
                        "raise UnknownFieldError) so typo'd fields fail "
                        "loudly instead of deserialising to defaults",
                    )

    def _rejects_unknown(self, fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and node.id in self.accepted:
                return True
            if isinstance(node, ast.Attribute) and node.attr in self.accepted:
                return True
        return False
