"""The lint engine: package AST context, rule registry, and the runner.

The engine parses every Python file under the target roots once into a
:class:`PackageContext` and hands that whole-package view to each registered
:class:`Rule` — rules therefore can be purely local (walk one file's AST) or
cross-referential (compare ``core/backends.py`` registrations against the
test tree, as ``PAR001`` does).  Findings come back typed
(:class:`~repro.lint.findings.Finding`), get inline suppressions and the
optional baseline applied, and are wrapped in a :class:`LintReport`.

Adding a rule::

    from repro.lint.engine import Rule, register_rule

    @register_rule
    class MyRule(Rule):
        id = "MYR001"
        title = "short imperative description"
        rationale = "why the invariant matters in this codebase"

        def check(self, ctx):
            for f in self.targets(ctx):
                ...
                yield self.finding(f, node.lineno, "message")

Registered rules are active by default in the CLI and in
:func:`default_rules`.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Type

from repro.lint.findings import Baseline, Finding, Severity, Suppressions


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file of the linted tree."""

    path: str
    source: str
    tree: ast.Module
    #: Whether the file belongs to the test tree (cross-reference target)
    #: rather than the linted package.
    is_test: bool = False

    @property
    def parts(self) -> Sequence[str]:
        """Path components, for rule scoping."""
        return Path(self.path).parts

    @classmethod
    def parse(
        cls, path: str, source: str, is_test: bool = False
    ) -> "SourceFile":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            is_test=is_test,
        )


@dataclass
class PackageContext:
    """Everything a rule may look at: package files plus the test tree."""

    files: List[SourceFile] = field(default_factory=list)
    test_files: List[SourceFile] = field(default_factory=list)
    #: Files that failed to parse, as findings (rule ``PARSE``).
    parse_failures: List[Finding] = field(default_factory=list)

    @classmethod
    def from_sources(
        cls,
        files: Mapping[str, str],
        tests: Optional[Mapping[str, str]] = None,
    ) -> "PackageContext":
        """Build a context from in-memory sources (the test fixtures' path)."""
        ctx = cls()
        for path, source in files.items():
            ctx.add_source(path, source, is_test=False)
        for path, source in (tests or {}).items():
            ctx.add_source(path, source, is_test=True)
        return ctx

    def add_source(self, path: str, source: str, is_test: bool) -> None:
        """Parse and add one source; a syntax error becomes a finding."""
        try:
            parsed = SourceFile.parse(path, source, is_test=is_test)
        except SyntaxError as exc:
            self.parse_failures.append(Finding(
                rule="PARSE",
                path=path,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            ))
            return
        (self.test_files if is_test else self.files).append(parsed)

    @classmethod
    def from_paths(
        cls,
        roots: Sequence[Path],
        tests_root: Optional[Path] = None,
    ) -> "PackageContext":
        """Parse every ``*.py`` under the roots (and the test tree)."""
        ctx = cls()
        for root, is_test in [(r, False) for r in roots] + (
            [(tests_root, True)] if tests_root is not None else []
        ):
            root = Path(root)
            if root.is_file():
                paths = [root]
            else:
                paths = sorted(
                    p for p in root.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
            for path in paths:
                ctx.add_source(
                    str(path),
                    path.read_text(encoding="utf-8"),
                    is_test=is_test,
                )
        return ctx


class Rule(abc.ABC):
    """One statically checkable invariant.

    Subclasses set ``id`` / ``title`` / ``rationale`` and implement
    :meth:`check`.  ``scope_parts``, when non-empty, restricts the rule to
    files whose path contains at least one of the named directories —
    :meth:`targets` applies it.
    """

    id: str = "RULE"
    title: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    #: Directory names the rule is scoped to (empty = every file).
    scope_parts: Sequence[str] = ()
    #: Path suffixes exempt from the rule (e.g. the blessed helper module).
    exempt_suffixes: Sequence[str] = ()

    @abc.abstractmethod
    def check(self, ctx: PackageContext) -> Iterator[Finding]:
        """Yield every violation found in the context."""

    def applies(self, source: SourceFile) -> bool:
        """Whether the rule covers ``source`` (scope minus exemptions)."""
        if any(source.path.endswith(sfx) for sfx in self.exempt_suffixes):
            return False
        if not self.scope_parts:
            return True
        return any(part in source.parts for part in self.scope_parts)

    def targets(self, ctx: PackageContext) -> Iterator[SourceFile]:
        """The package files this rule applies to."""
        return (f for f in ctx.files if self.applies(f))

    def finding(
        self, source: SourceFile, line: int, message: str, column: int = 0
    ) -> Finding:
        """A finding of this rule anchored in ``source``."""
        return Finding(
            rule=self.id,
            path=source.path,
            line=line,
            column=column,
            message=message,
            severity=self.severity,
        )


#: The default rule registry, populated by :func:`register_rule`.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default registry by ``id``."""
    rule_id = rule_cls.id
    if not rule_id or rule_id == Rule.id:
        raise ValueError(
            f"rule class {rule_cls.__name__} needs a distinctive id"
        )
    if rule_id in RULE_REGISTRY and RULE_REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"a rule with id {rule_id!r} is already registered")
    RULE_REGISTRY[rule_id] = rule_cls
    return rule_cls


def default_rules(
    only: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instances of every registered rule (optionally a named subset)."""
    # Importing the rule pack registers it; deferred to avoid a cycle at
    # package-import time.
    from repro.lint import rules as _rules  # noqa: F401

    names = sorted(RULE_REGISTRY) if only is None else list(only)
    instances = []
    for name in names:
        try:
            instances.append(RULE_REGISTRY[name]())
        except KeyError as exc:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise KeyError(
                f"unknown lint rule {name!r}; registered rules: {known}"
            ) from exc
    return instances


@dataclass
class LintReport:
    """Every finding of one engine run, suppressions/baseline applied."""

    findings: List[Finding]
    checked_files: int = 0
    rules: Sequence[str] = ()

    @property
    def active(self) -> List[Finding]:
        """Findings that are neither suppressed nor baselined."""
        return [f for f in self.findings if f.active]

    @property
    def ok(self) -> bool:
        """Whether the run should exit zero."""
        return not self.active

    def summary(self) -> Dict[str, int]:
        return {
            "files": self.checked_files,
            "total": len(self.findings),
            "suppressed": sum(1 for f in self.findings if f.suppressed),
            "baselined": sum(1 for f in self.findings if f.baselined),
            "active": len(self.active),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "rules": list(self.rules),
            "summary": self.summary(),
            "findings": [f.to_dict() for f in self.findings],
        }


class LintEngine:
    """Runs a rule set over a :class:`PackageContext`."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None) -> None:
        self.rules: List[Rule] = (
            list(rules) if rules is not None else default_rules()
        )
        ids = [rule.id for rule in self.rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids in engine: {ids}")

    def run(
        self, ctx: PackageContext, baseline: Optional[Baseline] = None
    ) -> LintReport:
        """Check every rule, then apply suppressions and the baseline."""
        raw: List[Finding] = list(ctx.parse_failures)
        for rule in self.rules:
            raw.extend(rule.check(ctx))
        suppressions = {
            f.path: Suppressions.scan(f.source)
            for f in ctx.files + ctx.test_files
        }
        findings: List[Finding] = []
        for finding in raw:
            table = suppressions.get(finding.path)
            if table is not None:
                finding = table.apply(finding)
            if baseline is not None:
                finding = baseline.apply(finding)
            findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return LintReport(
            findings=findings,
            checked_files=len(ctx.files),
            rules=[rule.id for rule in self.rules],
        )


def lint_sources(
    files: Mapping[str, str],
    tests: Optional[Mapping[str, str]] = None,
    rules: Optional[Iterable[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint in-memory sources — the fixture entry point used by the tests."""
    engine = LintEngine(rules=rules)
    return engine.run(
        PackageContext.from_sources(files, tests=tests), baseline=baseline
    )


def lint_paths(
    paths: Sequence[Path],
    tests_root: Optional[Path] = None,
    rules: Optional[Iterable[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint files/directories on disk — the CLI entry point."""
    engine = LintEngine(rules=rules)
    ctx = PackageContext.from_paths(list(paths), tests_root=tests_root)
    return engine.run(ctx, baseline=baseline)
