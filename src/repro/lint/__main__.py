"""``python -m repro.lint`` — run the invariant checker."""

from repro.lint.cli import main

raise SystemExit(main())
