"""Self-hosted static analysis for the repro package.

``repro.lint`` walks the package's ASTs and checks the invariants the
runtime test suite cannot exhaustively enforce: lock discipline on the
thread-shared session/serving/registry state (``LCK001``), scalar-parity
test coverage for every batch-capable backend family (``PAR001``),
frozen-dataclass immutability (``FRZ001``), the single blessed
ceil-division idiom behind bit-for-bit scalar/batch agreement
(``CEIL001``), and unknown-key rejection in every ``from_dict``
deserialiser (``DIC001``).

Run it as ``python -m repro.lint`` (see :mod:`repro.lint.cli`), silence a
deliberate violation with ``# repro-lint: disable=RULE -- reason``, and
add rules via :func:`~repro.lint.engine.register_rule`.
"""

from repro.lint.engine import (
    LintEngine,
    LintReport,
    PackageContext,
    Rule,
    RULE_REGISTRY,
    SourceFile,
    default_rules,
    lint_paths,
    lint_sources,
    register_rule,
)
from repro.lint.findings import (
    Baseline,
    Finding,
    Severity,
    Suppressions,
    render_text,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "LintReport",
    "PackageContext",
    "Rule",
    "RULE_REGISTRY",
    "Severity",
    "SourceFile",
    "Suppressions",
    "default_rules",
    "lint_paths",
    "lint_sources",
    "register_rule",
    "render_text",
]
