"""Common protocol for the computational problems evaluated on ATGPU.

Each algorithm in this package exposes the full pipeline the paper applies
to its three example problems:

* hand-derived **model metrics** (Section IV's analyses) via :meth:`GPUAlgorithm.metrics`,
* the **pseudocode** listing via :meth:`GPUAlgorithm.build_pseudocode`,
* an executable **kernel implementation** on the simulator via :meth:`GPUAlgorithm.run`,
* a NumPy **reference** for correctness checking via :meth:`GPUAlgorithm.reference`,
* convenience wrappers that produce the per-size prediction
  (:meth:`GPUAlgorithm.analyse`) and the per-size simulated observation
  (:meth:`GPUAlgorithm.observe`), plus whole-sweep versions used by the
  experiment harness.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.analysis import AnalysisReport, analyse_metrics
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, MetricsGrid
from repro.core.prediction import (
    SweepObservation,
    SweepPrediction,
    predict_sweep,
)
from repro.core.presets import DEFAULT_PRESET, GPUPreset
from repro.core.topology import Topology
from repro.pseudocode.program import Program
from repro.simulator.config import DeviceConfig
from repro.simulator.device import GPUDevice
from repro.simulator.device_pool import DevicePool
from repro.simulator.streams import StreamTimeline
from repro.utils.validation import ensure_positive_int

#: Evaluation strategies for observed sweeps, mirroring the prediction
#: side's ``SWEEP_PATHS``: ``"auto"`` takes the batched simulator when the
#: algorithm allows it, ``"batch"`` forces it, ``"scalar"`` forces the
#: per-size loop (the parity reference).
OBSERVE_PATHS = ("auto", "batch", "scalar")


def chunk_bounds(n: int, chunks: int) -> List[tuple]:
    """Near-equal ``[lo, hi)`` bounds splitting ``n`` elements into chunks.

    ``chunks`` is clamped to ``n`` so every chunk is non-empty; the first
    ``n % chunks`` chunks carry one extra element.
    """
    ensure_positive_int(n, "n")
    ensure_positive_int(chunks, "chunks")
    chunks = min(chunks, n)
    base, extra = divmod(n, chunks)
    bounds = []
    lo = 0
    for index in range(chunks):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def sharded_pool_bounds(
    device: GPUDevice,
    n: int,
    devices: int,
    contention: float,
    topology: Optional[Topology],
) -> tuple:
    """The ``(pool, bounds)`` pair every sharded run schedules against.

    Without a topology: a homogeneous pool of ``devices`` over one link
    with the given ``contention``, and the near-equal :func:`chunk_bounds`
    split.  With one: a topology-driven pool (per-socket link stretch) and
    the throughput-weighted :func:`~repro.core.topology.plan_bounds`
    split, whose zero-width bounds mark devices the planner left idle.
    """
    if topology is None:
        pool = DevicePool(
            devices, config=device.config, contention=contention
        )
        return pool, chunk_bounds(n, devices)
    from repro.core.topology import plan_bounds

    pool = DevicePool(config=device.config, topology=topology)
    return pool, plan_bounds(n, topology.throughputs())


@dataclass
class StreamedRunResult:
    """Outcome of a chunked, double-buffered (streamed) algorithm run.

    All timing views derive from the attached stream timeline:
    :attr:`makespan_s` is the overlapped total time (its critical path) and
    :attr:`serial_time_s` is what the very same operations would cost back
    to back, so their ratio isolates the benefit of compute/copy overlap.
    """

    outputs: Dict[str, np.ndarray]
    chunk_count: int
    timeline: StreamTimeline

    @property
    def makespan_s(self) -> float:
        """Overlapped total time (the timeline's critical path)."""
        return self.timeline.makespan_s

    @property
    def serial_time_s(self) -> float:
        """The same operations executed back to back (no overlap)."""
        return self.timeline.serial_time_s

    @property
    def overlap_saving_s(self) -> float:
        """Seconds recovered by overlapping: serial sum minus makespan."""
        return self.timeline.overlap_saving_s

    @property
    def overlap_speedup(self) -> float:
        """Serial-over-overlapped time ratio (1.0 = no overlap benefit)."""
        if self.makespan_s == 0:
            return 1.0
        return self.serial_time_s / self.makespan_s


@dataclass
class ShardedRunResult:
    """Outcome of a multi-device (sharded) algorithm run.

    All timing views derive from the attached :class:`DevicePool`:
    :attr:`makespan_s` is the straggler device's completion time and
    :attr:`serial_time_s` is what the very same operations would cost back
    to back on one device, so their ratio isolates the benefit of sharding
    across the pool.
    """

    outputs: Dict[str, np.ndarray]
    device_count: int
    pool: DevicePool

    @property
    def makespan_s(self) -> float:
        """Pool total time (the straggler device's completion)."""
        return self.pool.makespan_s

    @property
    def serial_time_s(self) -> float:
        """The same operations executed back to back on one device."""
        return self.pool.serial_time_s

    @property
    def device_makespans(self) -> List[float]:
        """Per-device completion times."""
        return list(self.pool.device_makespans())

    @property
    def sharding_speedup(self) -> float:
        """Serial-over-sharded time ratio (1.0 = no benefit)."""
        return self.pool.sharding_speedup


@dataclass
class RunResult:
    """Outcome of running an algorithm end to end on the simulator."""

    outputs: Dict[str, np.ndarray]
    total_time_s: float
    kernel_time_s: float
    transfer_time_s: float
    sync_time_s: float

    @property
    def observed_transfer_proportion(self) -> float:
        """``ΔE`` -- share of the total time spent transferring."""
        if self.total_time_s == 0:
            return 0.0
        return self.transfer_time_s / self.total_time_s


@dataclass
class ObservationRecord:
    """One observed (simulated) data point of a sweep."""

    input_size: int
    total_time_s: float
    kernel_time_s: float
    transfer_time_s: float
    sync_time_s: float
    correct: Optional[bool] = None

    @property
    def observed_transfer_proportion(self) -> float:
        """``ΔE`` of this data point."""
        if self.total_time_s == 0:
            return 0.0
        return self.transfer_time_s / self.total_time_s


class GPUAlgorithm(abc.ABC):
    """A computational problem analysed and executed on the ATGPU model."""

    #: Registry / report name of the algorithm.
    name: str = "algorithm"
    #: Human-readable description.
    description: str = ""
    #: Whether the batched simulator (:mod:`repro.simulator.batch`) may
    #: probe this algorithm's :meth:`run`.  The probe replays the real host
    #: program against a recording device, which is faithful for anything
    #: that only talks to the :class:`GPUDevice` API; set ``False`` if a
    #: custom ``run`` inspects device timings mid-run, and ``observe_sweep``
    #: will keep the scalar loop on ``path="auto"``.
    sim_batch_safe: bool = True
    #: Whether this algorithm's kernel traces depend on input *values*
    #: rather than just indices.  ``False`` lets the batched-simulator probe
    #: skip host-buffer copies and vectorised data fallbacks (the timing
    #: traces cannot change); pair it with a structural :meth:`sim_inputs`
    #: override.  Opting out requires a scalar-parity test (lint ``SIM001``).
    sim_trace_data_dependent: bool = True

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def default_sizes(self) -> List[int]:
        """The input sizes of the paper's sweep for this problem."""

    @abc.abstractmethod
    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        """Generate a random input instance of size ``n``."""

    def sim_inputs(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        """Inputs for the batched-simulator probe (default: real inputs).

        Algorithms with :attr:`sim_trace_data_dependent` ``= False``
        override this with cheap structural stand-ins (zero arrays of the
        right shapes and dtypes): their traces depend only on indices, so
        the probe skips the per-size random generation the scalar path pays.
        Data-dependent algorithms keep the default, which matches the
        scalar ``observe`` input exactly.
        """
        return self.generate_input(n, seed=seed)

    @abc.abstractmethod
    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """NumPy reference implementation used for correctness checks."""

    # ------------------------------------------------------------------ #
    # Model-side (prediction)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        """Hand-derived ATGPU metrics of the algorithm at size ``n``."""

    def metrics_batch(
        self, ns: Sequence[int], machine: ATGPUMachine
    ) -> MetricsGrid:
        """Array-native metrics of the algorithm over a whole size vector.

        The Section IV analyses are closed-form in ``n``, so an algorithm
        can describe an entire sweep as per-round NumPy columns instead of
        one :class:`~repro.core.metrics.AlgorithmMetrics` per size.  Every
        built-in algorithm overrides this with a true vectorized factory
        whose grid is **bit-for-bit** equal to calling :meth:`metrics` per
        size; the default here is the scalar-loop fallback (still packed
        column-wise, so custom algorithms get the cheap packing for free).
        """
        return MetricsGrid.from_metrics(
            ns,
            [self.metrics(int(n), machine) for n in ns],
            name=self.name,
        )

    @property
    def supports_metrics_batch(self) -> bool:
        """Whether this algorithm overrides :meth:`metrics_batch`."""
        return type(self).metrics_batch is not GPUAlgorithm.metrics_batch

    @abc.abstractmethod
    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        """The algorithm's ATGPU pseudocode listing at size ``n``."""

    def analyse(
        self,
        n: int,
        preset: GPUPreset = DEFAULT_PRESET,
        backends: Optional[Sequence[str]] = None,
    ) -> AnalysisReport:
        """Predict the algorithm's cost at size ``n`` on a GPU preset.

        ``backends`` selects the cost-model backends to evaluate (see
        :mod:`repro.core.backends`); the default is the built-in trio.
        """
        return analyse_metrics(
            self.metrics(n, preset.machine),
            preset.machine,
            preset.parameters,
            preset.occupancy,
            algorithm=self.name,
            input_size=n,
            backends=backends,
        )

    def predict_sweep(
        self,
        sizes: Optional[Sequence[int]] = None,
        preset: GPUPreset = DEFAULT_PRESET,
        backends: Optional[Sequence[str]] = None,
        path: str = "auto",
    ) -> SweepPrediction:
        """Per-backend cost predictions over a sweep of input sizes.

        ``path`` selects the evaluation strategy (see
        :func:`repro.core.prediction.predict_sweep`): the default ``"auto"``
        vectorizes the whole sweep when every backend supports it, compiling
        the metrics through :meth:`metrics_batch` (no per-size
        :class:`~repro.core.metrics.RoundMetrics` objects).
        """
        sizes = list(sizes) if sizes is not None else self.default_sizes()
        return predict_sweep(
            algorithm=self.name,
            sizes=sizes,
            metrics_factory=lambda n: self.metrics(n, preset.machine),
            machine=preset.machine,
            parameters=preset.parameters,
            occupancy=preset.occupancy,
            backends=backends,
            path=path,
            grid_factory=lambda ns: self.metrics_batch(ns, preset.machine),
        )

    def compile_batch(
        self,
        sizes: Optional[Sequence[int]] = None,
        preset: GPUPreset = DEFAULT_PRESET,
    ):
        """Pack this algorithm's per-round metrics for a sweep into a
        :class:`~repro.core.batch.MetricsBatch` (compiled once, evaluated by
        any backend family as an array program).  Compilation goes through
        :meth:`metrics_batch`, so algorithms with a vectorized factory
        describe the whole sweep without per-size metrics objects."""
        from repro.core.batch import MetricsBatch

        sizes = list(sizes) if sizes is not None else self.default_sizes()
        return MetricsBatch.compile(
            self.name, sizes,
            grid_factory=lambda ns: self.metrics_batch(ns, preset.machine),
        )

    # ------------------------------------------------------------------ #
    # Simulator-side (observation)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        """Execute the algorithm end to end on a simulated device."""

    def run_streamed(
        self,
        device: GPUDevice,
        inputs: Dict[str, np.ndarray],
        chunks: int = 2,
        pinned: bool = False,
    ) -> StreamedRunResult:
        """Chunked, double-buffered execution on asynchronous streams.

        Splits the workload into ``chunks`` pieces, schedules each piece's
        H2D copies, kernels and D2H copies on its own stream of a
        :class:`~repro.simulator.streams.StreamTimeline`, and reports the
        overlapped makespan alongside the serial sum.  Not every algorithm
        decomposes this way; the base implementation raises.
        """
        raise NotImplementedError(
            f"algorithm {self.name!r} has no streamed execution mode"
        )

    @property
    def supports_streaming(self) -> bool:
        """Whether :meth:`run_streamed` is implemented for this algorithm."""
        return type(self).run_streamed is not GPUAlgorithm.run_streamed

    def run_sharded(
        self,
        device: GPUDevice,
        inputs: Dict[str, np.ndarray],
        devices: int = 2,
        contention: float = 0.0,
        pinned: bool = False,
        topology: Optional["Topology"] = None,
    ) -> ShardedRunResult:
        """Sharded execution across a multi-device pool.

        Splits the workload into ``devices`` shards, schedules each shard's
        H2D copies, kernels and D2H copies on its own device of a
        :class:`~repro.simulator.device_pool.DevicePool` (one shared host
        link with the given ``contention``), and reports the straggler
        makespan alongside the serial single-device sum.  ``device``
        supplies the per-device configuration and the kernel/transfer
        engines used for durations.  ``topology`` replaces ``devices`` /
        ``contention`` with a full :class:`~repro.core.topology.Topology`:
        shards are sized by per-device throughput
        (:func:`~repro.core.topology.plan_bounds`) and the pool applies
        per-socket link stretch.  Not every algorithm decomposes this
        way; the base implementation raises.
        """
        raise NotImplementedError(
            f"algorithm {self.name!r} has no sharded execution mode"
        )

    @property
    def supports_sharding(self) -> bool:
        """Whether :meth:`run_sharded` is implemented for this algorithm."""
        return type(self).run_sharded is not GPUAlgorithm.run_sharded

    # ------------------------------------------------------------------ #
    # Batched-simulator plan hooks
    # ------------------------------------------------------------------ #
    def sim_stream_plan(
        self,
        n: int,
        config: DeviceConfig,
        chunks: int = 2,
        pinned: bool = False,
    ):
        """Symbolic stream schedule of :meth:`run_streamed` at size ``n``.

        Returns a :class:`~repro.simulator.batch.StreamPlan` whose operation
        structure (streams, engines, waits), word counts and kernel timings
        replicate what ``run_streamed`` submits — including the scalar
        path's device-memory allocation layout, since coalescing transaction
        counts depend on array base offsets.  The batched
        :meth:`observe_streamed_sweep` replays these plans as array
        programs; algorithms without a plan fall back to the scalar loop.
        """
        raise NotImplementedError(
            f"algorithm {self.name!r} has no streamed batch plan"
        )

    @property
    def supports_sim_stream_plan(self) -> bool:
        """Whether :meth:`sim_stream_plan` is implemented."""
        return type(self).sim_stream_plan is not GPUAlgorithm.sim_stream_plan

    def sim_shard_plan(
        self,
        n: int,
        config: DeviceConfig,
        devices: int = 2,
        contention: float = 0.0,
        pinned: bool = False,
        topology: Optional["Topology"] = None,
    ):
        """Symbolic device-pool schedule of :meth:`run_sharded` at size ``n``.

        Returns a :class:`~repro.simulator.batch.ShardPlan` replicating the
        per-device operations ``run_sharded`` submits (same allocation
        layout, same shard bounds, same link stretches).  The batched
        :meth:`observe_sharded_sweep` replays these plans as array programs.
        """
        raise NotImplementedError(
            f"algorithm {self.name!r} has no sharded batch plan"
        )

    @property
    def supports_sim_shard_plan(self) -> bool:
        """Whether :meth:`sim_shard_plan` is implemented."""
        return type(self).sim_shard_plan is not GPUAlgorithm.sim_shard_plan

    def observe_streamed(
        self,
        n: int,
        config: Optional[DeviceConfig] = None,
        chunks: int = 2,
        seed: int = 0,
        pinned: bool = False,
    ) -> StreamedRunResult:
        """Run the streamed mode at size ``n`` on a fresh device."""
        device = GPUDevice(config or DeviceConfig.gtx650())
        inputs = self.generate_input(n, seed=seed)
        return self.run_streamed(device, inputs, chunks=chunks, pinned=pinned)

    def observe_sharded(
        self,
        n: int,
        config: Optional[DeviceConfig] = None,
        devices: int = 2,
        contention: float = 0.0,
        seed: int = 0,
        pinned: bool = False,
        topology: Optional["Topology"] = None,
    ) -> ShardedRunResult:
        """Run the sharded mode at size ``n`` on a fresh device pool."""
        device = GPUDevice(config or DeviceConfig.gtx650())
        inputs = self.generate_input(n, seed=seed)
        return self.run_sharded(
            device, inputs, devices=devices, contention=contention,
            pinned=pinned, topology=topology,
        )

    def observe(
        self,
        n: int,
        config: Optional[DeviceConfig] = None,
        seed: int = 0,
        check: bool = False,
    ) -> ObservationRecord:
        """Run the algorithm at size ``n`` on a fresh device and time it."""
        device = GPUDevice(config or DeviceConfig.gtx650())
        inputs = self.generate_input(n, seed=seed)
        result = self.run(device, inputs)
        correct: Optional[bool] = None
        if check:
            expected = self.reference(inputs)
            correct = all(
                np.allclose(result.outputs[key], expected[key])
                for key in expected
            )
        return ObservationRecord(
            input_size=n,
            total_time_s=result.total_time_s,
            kernel_time_s=result.kernel_time_s,
            transfer_time_s=result.transfer_time_s,
            sync_time_s=result.sync_time_s,
            correct=correct,
        )

    def observe_sweep(
        self,
        sizes: Optional[Sequence[int]] = None,
        config: Optional[DeviceConfig] = None,
        seed: int = 0,
        path: str = "auto",
    ) -> SweepObservation:
        """Simulated total / kernel / transfer times over a sweep of sizes.

        ``path`` selects the evaluation strategy (:data:`OBSERVE_PATHS`):
        ``"auto"`` evaluates the whole sweep through the batched simulator
        (:func:`repro.simulator.batch.simulate_sweep`, bit-for-bit equal to
        the scalar loop) unless :attr:`sim_batch_safe` is ``False``;
        ``"scalar"`` forces the per-size reference loop.
        """
        if path not in OBSERVE_PATHS:
            raise ValueError(
                f"unknown observe path {path!r}; expected one of {OBSERVE_PATHS}"
            )
        sizes = list(sizes) if sizes is not None else self.default_sizes()
        # Resolved once, shared by the batch path and the fallback loop
        # (observe passes a non-None config straight through).
        device_config = config or DeviceConfig.gtx650()
        if path == "batch" or (path == "auto" and self.sim_batch_safe):
            from repro.simulator.batch import simulate_sweep

            return simulate_sweep(self, sizes, config=device_config, seed=seed)
        records = [
            self.observe(int(n), config=device_config, seed=seed) for n in sizes
        ]
        return SweepObservation(
            algorithm=self.name,
            sizes=[int(n) for n in sizes],
            total_times=[r.total_time_s for r in records],
            kernel_times=[r.kernel_time_s for r in records],
            transfer_times=[r.transfer_time_s for r in records],
        )

    def observe_streamed_sweep(
        self,
        sizes: Optional[Sequence[int]] = None,
        config: Optional[DeviceConfig] = None,
        chunks: int = 2,
        seed: int = 0,
        pinned: bool = False,
        path: str = "auto",
    ):
        """Streamed makespan / serial time over a sweep of sizes.

        ``"auto"`` replays the algorithm's :meth:`sim_stream_plan` through
        the batched replay when one is implemented (bit-for-bit equal to
        per-size :meth:`observe_streamed`); otherwise, and on
        ``path="scalar"``, it runs the per-size loop.
        """
        if path not in OBSERVE_PATHS:
            raise ValueError(
                f"unknown observe path {path!r}; expected one of {OBSERVE_PATHS}"
            )
        sizes = list(sizes) if sizes is not None else self.default_sizes()
        device_config = config or DeviceConfig.gtx650()
        from repro.simulator.batch import (
            StreamedSweepObservation,
            simulate_streamed_sweep,
        )

        if path == "batch" or (path == "auto" and self.supports_sim_stream_plan):
            return simulate_streamed_sweep(
                self, sizes, config=device_config, chunks=chunks, pinned=pinned
            )
        results = [
            self.observe_streamed(
                int(n), config=device_config, chunks=chunks, seed=seed,
                pinned=pinned,
            )
            for n in sizes
        ]
        return StreamedSweepObservation(
            algorithm=self.name,
            sizes=[int(n) for n in sizes],
            makespans_s=[r.makespan_s for r in results],
            serial_times_s=[r.serial_time_s for r in results],
        )

    def observe_sharded_sweep(
        self,
        sizes: Optional[Sequence[int]] = None,
        config: Optional[DeviceConfig] = None,
        devices: int = 2,
        contention: float = 0.0,
        seed: int = 0,
        pinned: bool = False,
        topology: Optional["Topology"] = None,
        path: str = "auto",
    ):
        """Sharded straggler makespan / serial time over a sweep of sizes.

        ``"auto"`` replays the algorithm's :meth:`sim_shard_plan` through
        the batched replay when one is implemented (bit-for-bit equal to
        per-size :meth:`observe_sharded`); otherwise, and on
        ``path="scalar"``, it runs the per-size loop.
        """
        if path not in OBSERVE_PATHS:
            raise ValueError(
                f"unknown observe path {path!r}; expected one of {OBSERVE_PATHS}"
            )
        sizes = list(sizes) if sizes is not None else self.default_sizes()
        device_config = config or DeviceConfig.gtx650()
        from repro.simulator.batch import (
            ShardedSweepObservation,
            simulate_sharded_sweep,
        )

        if path == "batch" or (path == "auto" and self.supports_sim_shard_plan):
            return simulate_sharded_sweep(
                self, sizes, config=device_config, devices=devices,
                contention=contention, pinned=pinned, topology=topology,
            )
        results = [
            self.observe_sharded(
                int(n), config=device_config, devices=devices,
                contention=contention, seed=seed, pinned=pinned,
                topology=topology,
            )
            for n in sizes
        ]
        return ShardedSweepObservation(
            algorithm=self.name,
            sizes=[int(n) for n in sizes],
            makespans_s=[r.makespan_s for r in results],
            serial_times_s=[r.serial_time_s for r in results],
            device_count=results[0].device_count if results else devices,
        )
