"""Tree reduction on the ATGPU model (Section IV-B of the paper).

The reduction of an ``n``-element vector under ``+`` is computed with the
classic multi-round tree method (Harris, "Optimizing parallel reduction in
CUDA"): every round, each thread block loads ``b`` elements into shared
memory, reduces them to a single value with a log-depth in-block tree, and
writes that value out; rounds repeat on the shrinking array of partial sums
until one value remains.  The paper's analysis:

* rounds ``R = O(log n)`` (``⌈log_b n⌉`` kernel launches);
* per-round parallel time ``O(log b)``;
* total I/O ``O((n/b)·(1 - (1/b)^{log n})/(1 - 1/b))`` -- the geometric sum of
  per-round block counts;
* global memory ``O(n)``, shared memory ``O(b)`` per block;
* transfer ``O(α + βn)``: the input moves to the device once, the single-word
  answer moves back at the end.

The in-block tree uses the *interleaved addressing* scheme of the simple
kernel the paper cites, which produces divergent branches; divergence is
charged per the model's "all paths are executed" rule.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    GPUAlgorithm,
    RunResult,
    ShardedRunResult,
    StreamedRunResult,
    chunk_bounds,
    sharded_pool_bounds,
)
from repro.core.topology import Topology
from repro.core.transfer import TransferDirection
from repro.core.machine import ATGPUMachine
from repro.core.metrics import (
    AlgorithmMetrics,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
    size_vector,
)
from repro.pseudocode.ast_nodes import (
    Barrier,
    GlobalToShared,
    If,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import global_var, host_var, shared_var
from repro.simulator.device import GPUDevice
from repro.simulator.device_pool import DevicePool
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray
from repro.simulator.streams import StreamOpKind, StreamTimeline
from repro.simulator.timing import KernelTiming
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int


def reduction_rounds(n: int, b: int) -> List[int]:
    """Sizes of the successive round inputs: ``n, ⌈n/b⌉, ... , > 1``.

    The returned list has one entry per kernel launch; the final launch
    reduces at most ``b`` values to one.
    """
    ensure_positive_int(n, "n")
    ensure_positive_int(b, "b")
    sizes = []
    size = n
    while size > 1:
        sizes.append(size)
        size = ceil_div(size, b)
    if not sizes:
        sizes = [n]
    return sizes


class ReductionRoundKernel(KernelProgram):
    """One round of the tree reduction: ``out[i] = Σ src[i·b : (i+1)·b]``."""

    name = "reduction_round_kernel"

    def __init__(self, m: int, warp_width: int, src: str, dst: str) -> None:
        self.m = ensure_positive_int(m, "m")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        self.src = src
        self.dst = dst

    def grid_size(self) -> int:
        return ceil_div(self.m, self.warp_width)

    def array_names(self) -> Tuple[str, ...]:
        return (self.src, self.dst)

    def shared_words_per_block(self) -> int:
        return self.warp_width

    def run_block(self, ctx: BlockContext) -> None:
        b = self.warp_width
        start = ctx.block_index * b
        count = min(b, self.m - start)
        lanes = np.arange(count)
        shared = ctx.shared_alloc("_s", b)
        values = ctx.global_read(self.src, start + lanes)
        ctx.shared_write("_s", lanes, values)
        shared[:count] = values
        shared[count:] = 0
        # Interleaved-addressing tree: for stride s = 1, 2, 4, ... the lanes
        # with lane % 2s == 0 accumulate their right neighbour.  The branch
        # diverges, so both paths are charged (all paths executed).
        stride = 1
        while stride < b:
            active = np.arange(0, b, 2 * stride)
            active = active[active + stride < b]
            ctx.shared_read("_s", active + stride)
            ctx.diverge([1.0, 1.0], label=f"stride {stride} add")
            shared[active] += shared[active + stride]
            ctx.shared_write("_s", active, shared[active])
            ctx.barrier()
            stride *= 2
        # Lane 0 writes the block's partial sum.
        ctx.global_write(self.dst, np.array([ctx.block_index]), shared[:1])

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        b = self.warp_width
        grid = self.grid_size()
        src = arrays[self.src].data[: self.m]
        padded = np.zeros(grid * b, dtype=src.dtype)
        padded[: self.m] = src
        arrays[self.dst].data[:grid] = padded.reshape(grid, b).sum(axis=1)


class Reduction(GPUAlgorithm):
    """Sum reduction, the paper's multi-round example."""

    name = "reduction"
    description = "Tree reduction (sum) of an n-element 0/1 vector"

    #: Block traces depend only on indices, so the batched probe may skip
    #: input materialisation (parity-tested in tests/test_sim_batch.py).
    sim_trace_data_dependent = False

    #: Grids larger than this are simulated via representative-block tracing.
    _functional_limit = 4096

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #
    def default_sizes(self) -> List[int]:
        """The paper sweeps n = 2^16, 2^17, ..., 2^26."""
        return [1 << e for e in range(16, 27)]

    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        ensure_positive_int(n, "n")
        rng = np.random.default_rng(seed)
        return {"A": rng.integers(0, 2, size=n, dtype=np.int64)}

    def sim_inputs(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        ensure_positive_int(n, "n")
        return {"A": np.zeros(n, dtype=np.int64)}

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"Ans": np.array([inputs["A"].sum()], dtype=np.int64)}

    # ------------------------------------------------------------------ #
    # Model-side analysis (Section IV-B)
    # ------------------------------------------------------------------ #
    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        ensure_positive_int(n, "n")
        b = machine.b
        tree_depth = max(1.0, math.log2(b))
        sizes = reduction_rounds(n, b)
        rounds = []
        for index, size in enumerate(sizes):
            blocks = ceil_div(size, b)
            rounds.append(RoundMetrics(
                # Load, log2(b) tree steps (divergent, so doubled), store.
                time=2.0 + 2.0 * tree_depth,
                # One coalesced read per block plus the partial-sum write.
                io_blocks=2.0 * blocks,
                inward_words=float(n) if index == 0 else 0.0,
                inward_transactions=1 if index == 0 else 0,
                outward_words=1.0 if index == len(sizes) - 1 else 0.0,
                outward_transactions=1 if index == len(sizes) - 1 else 0,
                global_words=float(n + ceil_div(n, b)),
                shared_words_per_mp=float(b),
                thread_blocks=blocks,
                label=f"reduction level {index + 1} ({size} values)",
            ))
        return AlgorithmMetrics(rounds, name=self.name)

    def metrics_batch(self, ns, machine: ATGPUMachine) -> MetricsGrid:
        """Vectorized :meth:`metrics`: the log tree over a size vector.

        The per-size round count varies (``⌈log_b n⌉`` levels), so the
        recurrence iterates level by level over the whole vector — each
        level's ``ceil`` mirrors the scalar :func:`reduction_rounds` float
        division exactly — and deeper levels are simply marked absent for
        the sizes whose trees already bottomed out.
        """
        sizes = size_vector(ns)
        b = machine.b
        tree_depth = max(1.0, math.log2(b))
        time = 2.0 + 2.0 * tree_depth
        n_sizes = len(sizes)
        # Level sizes n, ⌈n/b⌉, ... while > 1; n = 1 keeps its single round.
        levels = []
        current = sizes.copy()
        present = np.ones(n_sizes, dtype=bool)
        while True:
            levels.append((current, present))
            nxt = ceil_div(current, b).astype(np.int64)
            present = present & (nxt > 1)
            if not present.any():
                break
            current = nxt
        depths = sum(
            (p.astype(np.int64) for _, p in levels),
            np.zeros(n_sizes, dtype=np.int64),
        )
        global_words = (sizes + ceil_div(sizes, b).astype(np.int64)).astype(float)
        rounds = []
        for index, (level_sizes, level_present) in enumerate(levels):
            blocks = ceil_div(level_sizes, b).astype(np.int64)
            last = depths == index + 1
            rounds.append(round_arrays(
                n_sizes,
                # Load, log2(b) tree steps (divergent, so doubled), store.
                time=time,
                # One coalesced read per block plus the partial-sum write.
                io_blocks=2.0 * blocks,
                inward_words=sizes.astype(float) if index == 0 else 0.0,
                inward_transactions=1 if index == 0 else 0,
                outward_words=np.where(last, 1.0, 0.0),
                outward_transactions=np.where(last, 1, 0),
                global_words=global_words,
                shared_words_per_mp=float(b),
                thread_blocks=np.where(level_present, blocks, 1),
                present=level_present,
                label=f"reduction level {index + 1}",
            ))
        return metrics_grid(sizes, rounds, name=self.name)

    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        ensure_positive_int(n, "n")
        b = machine.b
        sizes = reduction_rounds(n, b)
        tree_depth = max(1, int(math.ceil(math.log2(b))))
        rounds = []
        variables = [
            host_var("A", n),
            host_var("Ans", 1),
            global_var("a", n),
            global_var("partials", max(1, ceil_div(n, b))),
            shared_var("_s", b),
        ]
        for index, size in enumerate(sizes):
            src = "a" if index % 2 == 0 else "partials"
            dst = "partials" if index % 2 == 0 else "a"
            blocks = ceil_div(size, b)
            kernel = KernelLaunch(
                grid_blocks=blocks,
                shared_declarations=(shared_var("_s", b),),
                label=f"reduction kernel level {index + 1}",
                body=(
                    GlobalToShared("_s", src, blocks_per_mp=1),
                    Loop(
                        count=tree_depth,
                        var="level",
                        body=(
                            If(
                                condition_description="lane mod 2^(level+1) == 0",
                                body=(
                                    SharedCompute("_s", "_s[lane] + _s[lane + 2^level]",
                                                  operations=2),
                                ),
                            ),
                            Barrier(),
                        ),
                    ),
                    SharedToGlobal(dst, "_s", blocks_per_mp=1),
                ),
            )
            rounds.append(Round(
                transfers_in=(TransferIn(src, "A", words=n),) if index == 0 else (),
                launches=(kernel,),
                transfers_out=(
                    (TransferOut("Ans", dst, words=1),)
                    if index == len(sizes) - 1 else ()
                ),
                label=f"reduction level {index + 1}",
            ))
        return Program(
            name="reduction",
            variables=tuple(variables),
            rounds=tuple(rounds),
            params={"n": float(n), "b": float(b)},
        )

    # ------------------------------------------------------------------ #
    # Simulator-side execution
    # ------------------------------------------------------------------ #
    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        a = np.asarray(inputs["A"])
        n = a.size
        b = device.config.warp_width
        device.reset_timers()
        device.memcpy_htod("a", a)
        device.allocate("partials", max(1, ceil_div(n, b)), dtype=a.dtype)
        src, dst = "a", "partials"
        for size in reduction_rounds(n, b):
            kernel = ReductionRoundKernel(size, b, src=src, dst=dst)
            force_functional = None
            if kernel.grid_size() > self._functional_limit:
                force_functional = False
            device.launch(kernel, force_functional=force_functional)
            device.synchronise(f"reduction level ({size} values)")
            src, dst = dst, src
        answer = device.memcpy_dtoh_partial(src, 1)
        result = RunResult(
            outputs={"Ans": answer},
            total_time_s=device.total_time_s,
            kernel_time_s=device.kernel_time_s,
            transfer_time_s=device.transfer_time_s,
            sync_time_s=device.sync_time_s,
        )
        for name in ("a", "partials"):
            device.free(name)
        return result

    def _timed_kernel(self, device: GPUDevice, kernel: ReductionRoundKernel):
        """Sampled-trace timing of one reduction kernel (no data movement)."""
        pairs, _ = device.functional_engine.execute_sampled(kernel)
        return device.timing_engine.kernel_timing(kernel.name, pairs)

    def run_streamed(
        self,
        device: GPUDevice,
        inputs: Dict[str, np.ndarray],
        chunks: int = 2,
        pinned: bool = False,
    ) -> StreamedRunResult:
        """Chunked reduction with the input copies overlapped by first-level
        kernels.

        Each chunk's stream carries its H2D copy followed by the first
        reduction level over that chunk, so the (transfer-dominant) input
        copy of chunk ``i+1`` streams in while chunk ``i`` reduces.  The
        surviving partial sums are then reduced by the usual tree on a final
        stream that waits on every chunk, and the single-word answer is
        copied out.
        """
        a = np.asarray(inputs["A"])
        n = a.size
        b = device.config.warp_width
        bounds = chunk_bounds(n, chunks)
        # Every chunk contributes ceil(m/b) partial sums; with many small
        # chunks that exceeds the ceil(n/b) of the unchunked run.
        total_partials = sum(ceil_div((hi - lo), b) for lo, hi in bounds)
        device.reset_timers()
        device.allocate("a", n, dtype=a.dtype).data[:] = a.reshape(-1)
        device.allocate("partials", max(1, total_partials), dtype=a.dtype)
        # Sampled trace blocks really execute (and the final tree writes its
        # partial sums back into "a"), so take the answer before tracing.
        answer = np.array([device.array("a").data[:n].sum()], dtype=a.dtype)

        timeline = StreamTimeline()
        chunk_kernel_ops = []
        partials = 0
        for index, (lo, hi) in enumerate(bounds):
            m = hi - lo
            stream = timeline.stream(f"chunk{index}")
            record = device.transfer_engine.transfer(
                m, TransferDirection.HOST_TO_DEVICE, pinned=pinned,
                label=f"a[{lo}:{hi}]",
            )
            timeline.add_transfer(stream, record)
            kernel = ReductionRoundKernel(m, b, src="a", dst="partials")
            timing = self._timed_kernel(device, kernel)
            chunk_kernel_ops.append(timeline.add_kernel(stream, timing))
            partials += kernel.grid_size()
        final = timeline.stream("final")
        timeline.submit(
            "final", StreamOpKind.HOST, device.config.sync_overhead_s,
            name="chunk-level sync", wait=chunk_kernel_ops,
        )
        src, dst = "partials", "a"
        if partials > 1:
            for size in reduction_rounds(partials, b):
                kernel = ReductionRoundKernel(size, b, src=src, dst=dst)
                timeline.add_kernel(final, self._timed_kernel(device, kernel))
                timeline.submit(
                    final, StreamOpKind.HOST, device.config.sync_overhead_s,
                    name=f"reduction level ({size} values)",
                )
                src, dst = dst, src
        record = device.transfer_engine.transfer(
            1, TransferDirection.DEVICE_TO_HOST, pinned=pinned, label="answer",
        )
        timeline.add_transfer(final, record)

        for name in ("a", "partials"):
            device.free(name)
        return StreamedRunResult(
            outputs={"Ans": answer},
            chunk_count=min(chunks, n),
            timeline=timeline,
        )

    def run_sharded(
        self,
        device: GPUDevice,
        inputs: Dict[str, np.ndarray],
        devices: int = 2,
        contention: float = 0.0,
        pinned: bool = False,
        topology: Optional[Topology] = None,
    ) -> ShardedRunResult:
        """Reduction sharded across a multi-device pool.

        Each device receives a contiguous shard of the input, runs the full
        local reduction tree on it (one kernel + sync per level, exactly as
        :meth:`run` does for the whole array), and returns its single-word
        partial sum; the host adds the ``P`` partials.  The dominant H2D
        copy shards ``P`` ways, so scaling follows the link model: near
        linear on independent links, flat on a fully contended one.  With a
        ``topology``, shard widths follow the per-device throughput weights
        and each device's transfers stretch by its own socket's link
        contention.
        """
        a = np.asarray(inputs["A"])
        n = a.size
        b = device.config.warp_width
        device.reset_timers()
        device.allocate("a", n, dtype=a.dtype).data[:] = a.reshape(-1)
        device.allocate(
            "partials", max(1, ceil_div(n, b)), dtype=a.dtype
        )
        # Sampled trace blocks really execute against the shared arrays, so
        # take the answer before any tracing mutates them.
        answer = np.array([device.array("a").data[:n].sum()], dtype=a.dtype)

        pool, bounds = sharded_pool_bounds(
            device, n, devices, contention, topology
        )
        # Equal-sized shards run identical kernel ladders; the timing is
        # deterministic in the level size, so memoise it across devices.
        timings: Dict[int, KernelTiming] = {}
        for index, (lo, hi) in enumerate(bounds):
            m = hi - lo
            if m == 0:
                continue
            pool.add_transfer(
                index, m, TransferDirection.HOST_TO_DEVICE,
                pinned=pinned, label=f"a[{lo}:{hi}]",
            )
            src, dst = "a", "partials"
            for size in reduction_rounds(m, b):
                if size not in timings:
                    kernel = ReductionRoundKernel(size, b, src=src, dst=dst)
                    timings[size] = self._timed_kernel(device, kernel)
                pool.add_kernel(index, timings[size])
                pool.add_host(
                    index, device.config.sync_overhead_s,
                    name=f"reduction level ({size} values)",
                )
                src, dst = dst, src
            pool.add_transfer(
                index, 1, TransferDirection.DEVICE_TO_HOST,
                pinned=pinned, label=f"partial[{index}]",
            )

        for name in ("a", "partials"):
            device.free(name)
        return ShardedRunResult(
            outputs={"Ans": answer},
            device_count=pool.num_devices,
            pool=pool,
        )

    # ------------------------------------------------------------------ #
    # Batched-sweep plans (see repro.simulator.batch)
    # ------------------------------------------------------------------ #
    def _scratch_device(
        self, n: int, config, partials: int
    ) -> GPUDevice:
        """A device with the same allocation layout as the scalar runs.

        Coalesced-transaction counts depend on global-memory offsets, so
        the plan hooks must allocate ``a`` then ``partials`` exactly as
        :meth:`run_streamed` / :meth:`run_sharded` do.
        """
        device = GPUDevice(config)
        device.allocate("a", n, dtype=np.int64)
        device.allocate("partials", max(1, partials), dtype=np.int64)
        return device

    def sim_stream_plan(self, n, config, chunks: int = 2, pinned: bool = False):
        from repro.simulator.batch import StreamPlan

        ensure_positive_int(n, "n")
        b = config.warp_width
        bounds = chunk_bounds(n, chunks)
        total_partials = sum(ceil_div((hi - lo), b) for lo, hi in bounds)
        device = self._scratch_device(n, config, total_partials)
        plan = StreamPlan()
        chunk_kernel_ops = []
        partials = 0
        for index, (lo, hi) in enumerate(bounds):
            m = hi - lo
            stream = f"chunk{index}"
            plan.h2d(stream, m, pinned=pinned)
            kernel = ReductionRoundKernel(m, b, src="a", dst="partials")
            chunk_kernel_ops.append(
                plan.kernel(stream, self._timed_kernel(device, kernel))
            )
            partials += kernel.grid_size()
        plan.host("final", config.sync_overhead_s, wait=chunk_kernel_ops)
        src, dst = "partials", "a"
        if partials > 1:
            for size in reduction_rounds(partials, b):
                kernel = ReductionRoundKernel(size, b, src=src, dst=dst)
                plan.kernel("final", self._timed_kernel(device, kernel))
                plan.host("final", config.sync_overhead_s)
                src, dst = dst, src
        plan.d2h("final", 1, pinned=pinned)
        return plan

    def sim_shard_plan(
        self,
        n,
        config,
        devices: int = 2,
        contention: float = 0.0,
        pinned: bool = False,
        topology: Optional[Topology] = None,
    ):
        from repro.simulator.batch import ShardPlan

        ensure_positive_int(n, "n")
        b = config.warp_width
        device = self._scratch_device(n, config, ceil_div(n, b))
        pool, bounds = sharded_pool_bounds(
            device, n, devices, contention, topology
        )
        plan = ShardPlan(
            [pool.device_stretch(i) for i in range(pool.num_devices)]
        )
        timings: Dict[int, KernelTiming] = {}
        for index, (lo, hi) in enumerate(bounds):
            m = hi - lo
            if m == 0:
                continue
            plan.h2d(index, m, pinned=pinned)
            src, dst = "a", "partials"
            for size in reduction_rounds(m, b):
                if size not in timings:
                    kernel = ReductionRoundKernel(size, b, src=src, dst=dst)
                    timings[size] = self._timed_kernel(device, kernel)
                plan.kernel(index, timings[size])
                plan.host(index, config.sync_overhead_s)
                src, dst = dst, src
            plan.d2h(index, 1, pinned=pinned)
        return plan
