"""Registry of the implemented GPU algorithms.

The experiment harness, the examples and the benchmarks look algorithms up
by name; the registry keeps that mapping in one place and distinguishes the
*paper* algorithms (the three problems of Section IV) from the *extension*
algorithms added to exercise the model further.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.base import GPUAlgorithm
from repro.algorithms.histogram import Histogram
from repro.algorithms.matrix_multiplication import MatrixMultiplication
from repro.algorithms.reduction import Reduction
from repro.algorithms.scan import PrefixSum
from repro.algorithms.spmv import SpMV
from repro.algorithms.stencil import Stencil1D
from repro.algorithms.vector_addition import VectorAddition

#: Factories of the algorithms evaluated in the paper (Section IV).
PAPER_ALGORITHMS: Dict[str, Callable[[], GPUAlgorithm]] = {
    VectorAddition.name: VectorAddition,
    Reduction.name: Reduction,
    MatrixMultiplication.name: MatrixMultiplication,
}

#: Factories of the extension algorithms (the "future work" problems).
EXTENSION_ALGORITHMS: Dict[str, Callable[[], GPUAlgorithm]] = {
    PrefixSum.name: PrefixSum,
    Stencil1D.name: Stencil1D,
    Histogram.name: Histogram,
    SpMV.name: SpMV,
}

#: All registered algorithm factories.
ALL_ALGORITHMS: Dict[str, Callable[[], GPUAlgorithm]] = {
    **PAPER_ALGORITHMS,
    **EXTENSION_ALGORITHMS,
}


def create(name: str) -> GPUAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = ALL_ALGORITHMS[name]
    except KeyError as exc:
        known = ", ".join(sorted(ALL_ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known algorithms: {known}") from exc
    return factory()


def paper_algorithm_names() -> List[str]:
    """Names of the three algorithms the paper evaluates."""
    return list(PAPER_ALGORITHMS)


def extension_algorithm_names() -> List[str]:
    """Names of the extension algorithms."""
    return list(EXTENSION_ALGORITHMS)


def all_algorithm_names() -> List[str]:
    """Names of every registered algorithm."""
    return list(ALL_ALGORITHMS)
