"""Exclusive prefix sum (scan) on the ATGPU model.

Scan is the first of the extension problems beyond the paper's three
examples (the paper's conclusion calls for "further experiments on other
computational problems to verify our model").  The implementation follows
the standard three-phase GPU formulation:

1. every block scans its ``b``-element segment in shared memory and writes
   the segment total to an auxiliary array (one round),
2. the auxiliary array of block totals is itself scanned (recursively; for
   the sizes used here a single second-level block suffices per level),
3. every block adds its scanned block offset to its segment (one round).

Like reduction, scan transfers the whole input in and the whole output back,
so its transfer share sits between vector addition (transfer-dominated) and
matrix multiplication (compute-dominated).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.base import GPUAlgorithm, RunResult
from repro.core.machine import ATGPUMachine
from repro.core.metrics import (
    AlgorithmMetrics,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
    size_vector,
)
from repro.pseudocode.ast_nodes import (
    Barrier,
    GlobalToShared,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import global_var, host_var, shared_var
from repro.simulator.device import GPUDevice
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int


class BlockScanKernel(KernelProgram):
    """Phase 1: per-block exclusive scan plus block-total extraction."""

    name = "block_scan_kernel"

    def __init__(self, m: int, warp_width: int, src: str, dst: str, totals: str) -> None:
        self.m = ensure_positive_int(m, "m")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        self.src, self.dst, self.totals = src, dst, totals

    def grid_size(self) -> int:
        return ceil_div(self.m, self.warp_width)

    def array_names(self) -> Tuple[str, ...]:
        return (self.src, self.dst, self.totals)

    def shared_words_per_block(self) -> int:
        return self.warp_width

    def run_block(self, ctx: BlockContext) -> None:
        b = self.warp_width
        start = ctx.block_index * b
        count = min(b, self.m - start)
        lanes = np.arange(count)
        shared = ctx.shared_alloc("_s", b)
        values = ctx.global_read(self.src, start + lanes)
        ctx.shared_write("_s", lanes, values)
        shared[:count] = values
        shared[count:] = 0
        total = shared[:count].sum()
        # Hillis-Steele inclusive scan in shared memory, then shift.
        stride = 1
        while stride < b:
            ctx.shared_read("_s", np.arange(stride, b))
            ctx.compute(1.0, label=f"scan stride {stride}")
            shifted = np.concatenate([np.zeros(stride), shared[:-stride]])
            shared[:] = shared + shifted
            ctx.shared_write("_s", np.arange(b), shared)
            ctx.barrier()
            stride *= 2
        exclusive = np.concatenate([[0.0], shared[:-1]])
        ctx.global_write(self.dst, start + lanes, exclusive[:count])
        ctx.global_write(self.totals, np.array([ctx.block_index]), np.array([total]))

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        b = self.warp_width
        grid = self.grid_size()
        src = arrays[self.src].data[: self.m]
        padded = np.zeros(grid * b, dtype=np.float64)
        padded[: self.m] = src
        segments = padded.reshape(grid, b)
        scanned = np.cumsum(segments, axis=1) - segments
        arrays[self.dst].data[: self.m] = scanned.reshape(-1)[: self.m]
        arrays[self.totals].data[:grid] = segments.sum(axis=1)


class AddOffsetsKernel(KernelProgram):
    """Phase 3: add each block's scanned offset to its segment."""

    name = "scan_add_offsets_kernel"

    def __init__(self, m: int, warp_width: int, data: str, offsets: str) -> None:
        self.m = ensure_positive_int(m, "m")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        self.data, self.offsets = data, offsets

    def grid_size(self) -> int:
        return ceil_div(self.m, self.warp_width)

    def array_names(self) -> Tuple[str, ...]:
        return (self.data, self.offsets)

    def shared_words_per_block(self) -> int:
        return self.warp_width + 1

    def run_block(self, ctx: BlockContext) -> None:
        b = self.warp_width
        start = ctx.block_index * b
        count = min(b, self.m - start)
        lanes = np.arange(count)
        shared = ctx.shared_alloc("_seg", b)
        offset = ctx.global_read(self.offsets, np.array([ctx.block_index]))[0]
        values = ctx.global_read(self.data, start + lanes)
        ctx.shared_write("_seg", lanes, values)
        shared[:count] = values
        ctx.compute(1.0, label="add block offset")
        ctx.global_write(self.data, start + lanes, shared[:count] + offset)

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        b = self.warp_width
        grid = self.grid_size()
        data = arrays[self.data].data
        offsets = arrays[self.offsets].data[:grid]
        padded = np.zeros(grid * b, dtype=np.float64)
        padded[: self.m] = data[: self.m]
        padded = (padded.reshape(grid, b) + offsets[:, None]).reshape(-1)
        data[: self.m] = padded[: self.m]


class PrefixSum(GPUAlgorithm):
    """Exclusive prefix sum (extension problem)."""

    name = "prefix_sum"
    description = "Exclusive prefix sum of an n-element vector (3-phase block scan)"

    #: Block traces depend only on indices, so the batched probe may skip
    #: input materialisation (parity-tested in tests/test_sim_batch.py).
    sim_trace_data_dependent = False

    _functional_limit = 4096

    def default_sizes(self) -> List[int]:
        return [1 << e for e in range(16, 25)]

    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"A": rng.integers(0, 16, size=n).astype(np.float64)}

    def sim_inputs(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        ensure_positive_int(n, "n")
        return {"A": np.zeros(n, dtype=np.float64)}

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        a = inputs["A"]
        return {"S": np.concatenate([[0.0], np.cumsum(a)[:-1]])}

    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        ensure_positive_int(n, "n")
        b = machine.b
        blocks = ceil_div(n, b)
        depth = max(1.0, math.log2(b))
        scan_round = RoundMetrics(
            time=2.0 + 2.0 * depth,
            io_blocks=3.0 * blocks,
            inward_words=float(n), inward_transactions=1,
            global_words=float(2 * n + blocks),
            shared_words_per_mp=float(b),
            thread_blocks=blocks,
            label="block scan",
        )
        totals_blocks = max(1, ceil_div(blocks, b))
        totals_round = RoundMetrics(
            time=2.0 + 2.0 * depth,
            io_blocks=3.0 * totals_blocks,
            global_words=float(2 * n + blocks),
            shared_words_per_mp=float(b),
            thread_blocks=totals_blocks,
            label="scan of block totals",
        )
        add_round = RoundMetrics(
            time=3.0,
            io_blocks=3.0 * blocks,
            outward_words=float(n), outward_transactions=1,
            global_words=float(2 * n + blocks),
            shared_words_per_mp=float(b + 1),
            thread_blocks=blocks,
            label="add offsets",
        )
        return AlgorithmMetrics([scan_round, totals_round, add_round], name=self.name)

    def metrics_batch(self, ns, machine: ATGPUMachine) -> MetricsGrid:
        """Vectorized :meth:`metrics`: the three scan phases over a size vector."""
        sizes = size_vector(ns)
        b = machine.b
        blocks = ceil_div(sizes, b).astype(np.int64)
        depth = max(1.0, math.log2(b))
        phase_time = 2.0 + 2.0 * depth
        totals_blocks = np.maximum(1, ceil_div(blocks, b).astype(np.int64))
        global_words = (2 * sizes + blocks).astype(float)
        n_sizes = len(sizes)
        scan_round = round_arrays(
            n_sizes,
            time=phase_time,
            io_blocks=3.0 * blocks,
            inward_words=sizes.astype(float), inward_transactions=1,
            global_words=global_words,
            shared_words_per_mp=float(b),
            thread_blocks=blocks,
            label="block scan",
        )
        totals_round = round_arrays(
            n_sizes,
            time=phase_time,
            io_blocks=3.0 * totals_blocks,
            global_words=global_words,
            shared_words_per_mp=float(b),
            thread_blocks=totals_blocks,
            label="scan of block totals",
        )
        add_round = round_arrays(
            n_sizes,
            time=3.0,
            io_blocks=3.0 * blocks,
            outward_words=sizes.astype(float), outward_transactions=1,
            global_words=global_words,
            shared_words_per_mp=float(b + 1),
            thread_blocks=blocks,
            label="add offsets",
        )
        return metrics_grid(
            sizes, [scan_round, totals_round, add_round], name=self.name
        )

    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        b = machine.b
        blocks = ceil_div(n, b)
        depth = max(1, int(math.ceil(math.log2(b))))
        scan_body = (
            GlobalToShared("_s", "a"),
            Loop(count=depth, var="stride", body=(
                SharedCompute("_s", "_s[lane] + _s[lane - 2^stride]", operations=2),
                Barrier(),
            )),
            SharedToGlobal("s", "_s"),
            SharedToGlobal("totals", "_s"),
        )
        add_body = (
            GlobalToShared("_seg", "s"),
            GlobalToShared("_off", "totals"),
            SharedCompute("_seg", "_seg[lane] + _off[0]"),
            SharedToGlobal("s", "_seg"),
        )
        return Program(
            name="prefix-sum",
            variables=(
                host_var("A", n), host_var("S", n),
                global_var("a", n), global_var("s", n), global_var("totals", blocks),
                shared_var("_s", b), shared_var("_seg", b), shared_var("_off", 1),
            ),
            rounds=(
                Round(
                    transfers_in=(TransferIn("a", "A", words=n),),
                    launches=(KernelLaunch(blocks, scan_body,
                                           (shared_var("_s", b),), "block scan"),),
                    label="block scan",
                ),
                Round(
                    launches=(KernelLaunch(max(1, ceil_div(blocks, b)), scan_body,
                                           (shared_var("_s", b),), "totals scan"),),
                    label="totals scan",
                ),
                Round(
                    launches=(KernelLaunch(blocks, add_body,
                                           (shared_var("_seg", b), shared_var("_off", 1)),
                                           "add offsets"),),
                    transfers_out=(TransferOut("S", "s", words=n),),
                    label="add offsets",
                ),
            ),
            params={"n": float(n), "b": float(b)},
        )

    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        a = np.asarray(inputs["A"], dtype=np.float64)
        n = a.size
        b = device.config.warp_width
        device.reset_timers()
        device.memcpy_htod("a", a)
        allocated: List[str] = []

        def launch(kernel: KernelProgram) -> None:
            force = False if kernel.grid_size() > self._functional_limit else None
            device.launch(kernel, force_functional=force)

        def scan_level(name: str, length: int) -> str:
            """Scan ``name`` (of ``length`` words) and return the scanned array name."""
            scanned = f"{name}_scanned"
            totals = f"{name}_totals"
            blocks = ceil_div(length, b)
            device.allocate(scanned, length, dtype=np.float64)
            device.allocate(totals, blocks, dtype=np.float64)
            allocated.extend([scanned, totals])
            launch(BlockScanKernel(length, b, src=name, dst=scanned, totals=totals))
            device.synchronise(f"scan level of {name}")
            if blocks > 1:
                totals_scanned = scan_level(totals, blocks)
                launch(AddOffsetsKernel(length, b, data=scanned,
                                        offsets=totals_scanned))
                device.synchronise(f"offset fix-up of {name}")
            return scanned

        scanned_name = scan_level("a", n)
        s = device.memcpy_dtoh(scanned_name)[:n]
        result = RunResult(
            outputs={"S": s},
            total_time_s=device.total_time_s,
            kernel_time_s=device.kernel_time_s,
            transfer_time_s=device.transfer_time_s,
            sync_time_s=device.sync_time_s,
        )
        device.free("a")
        for name in allocated:
            device.free(name)
        return result
