"""Matrix multiplication on the ATGPU model (Section IV-C of the paper).

``C = A × B`` for two ``n×n`` matrices, using the well-known shared-memory
tiled method of the CUDA Programming Guide, modified (as in the paper) for
the single warp per multiprocessor of the model: each thread block owns one
``b×b`` output tile, iterates over the ``n/b`` tile pairs of ``A`` and ``B``,
stages each pair in shared memory and accumulates the partial products.

The paper's analysis:

* rounds ``R = 1``;
* parallel time ``O(n·b)``;
* I/O ``O((n/b)²·(n + b))`` block transactions;
* global memory ``O(n²)``, shared memory ``O(b²)`` per block;
* transfer ``O(α + βn²)``: two inward matrices and one outward matrix.

This is the paper's example where data transfer does *not* dominate, so the
SWGPU (kernel-only) prediction is already adequate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.base import GPUAlgorithm, RunResult
from repro.core.machine import ATGPUMachine
from repro.core.metrics import (
    AlgorithmMetrics,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
    size_vector,
)
from repro.pseudocode.ast_nodes import (
    Barrier,
    GlobalToShared,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import global_var, host_var, shared_var
from repro.simulator.device import GPUDevice
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int


class MatrixMultiplicationKernel(KernelProgram):
    """Tiled matrix-multiplication kernel (one warp per ``b×b`` output tile)."""

    name = "matrix_multiplication_kernel"

    def __init__(self, n: int, warp_width: int) -> None:
        self.n = ensure_positive_int(n, "n")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        if n % warp_width != 0 and n >= warp_width:
            raise ValueError(
                f"matrix side {n} must be a multiple of the warp width {warp_width} "
                "(the paper evaluates sides 32, 64, ..., 1024)"
            )
        self.tile = min(n, warp_width)

    @property
    def tiles_per_side(self) -> int:
        """Number of ``b``-wide tiles along one matrix side."""
        return ceil_div(self.n, self.tile)

    def grid_size(self) -> int:
        return self.tiles_per_side ** 2

    def array_names(self) -> Tuple[str, ...]:
        return ("ma", "mb", "mc")

    def shared_words_per_block(self) -> int:
        return 3 * self.tile * self.tile

    def run_block(self, ctx: BlockContext) -> None:
        n, tile = self.n, self.tile
        tiles = self.tiles_per_side
        tile_row = ctx.block_index // tiles
        tile_col = ctx.block_index % tiles
        lanes = np.arange(tile)
        shared_a = ctx.shared_alloc("_ta", tile * tile)
        shared_b = ctx.shared_alloc("_tb", tile * tile)
        shared_c = ctx.shared_alloc("_tc", tile * tile)
        acc = np.zeros((tile, tile), dtype=np.float64)
        for kt in range(tiles):
            # Stage the A and B tiles row by row (one coalesced read per row).
            for r in range(tile):
                a_row = (tile_row * tile + r) * n + kt * tile + lanes
                values = ctx.global_read("ma", a_row)
                ctx.shared_write("_ta", r * tile + lanes, values)
                shared_a[r * tile + lanes] = values
            for r in range(tile):
                b_row = (kt * tile + r) * n + tile_col * tile + lanes
                values = ctx.global_read("mb", b_row)
                ctx.shared_write("_tb", r * tile + lanes, values)
                shared_b[r * tile + lanes] = values
            ctx.barrier()
            # Each of the b cores accumulates one column of the output tile:
            # b·b multiply-adds per core, issued as b·b warp instructions.
            ctx.compute(float(tile * tile), label="tile multiply-accumulate")
            acc += shared_a.reshape(tile, tile) @ shared_b.reshape(tile, tile)
            ctx.barrier()
        shared_c[:] = acc.reshape(-1)
        for r in range(tile):
            ctx.shared_read("_tc", r * tile + lanes)
            c_row = (tile_row * tile + r) * n + tile_col * tile + lanes
            ctx.global_write("mc", c_row, shared_c[r * tile + lanes])

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        n = self.n
        a = arrays["ma"].data[: n * n].reshape(n, n)
        b = arrays["mb"].data[: n * n].reshape(n, n)
        arrays["mc"].data[: n * n] = (a @ b).reshape(-1)


class MatrixMultiplication(GPUAlgorithm):
    """Tiled matrix multiplication, the paper's compute-bound example."""

    name = "matrix_multiplication"
    description = "C = A x B for n x n integer matrices via shared-memory tiling"

    #: Block traces depend only on indices, so the batched probe may skip
    #: input materialisation (parity-tested in tests/test_sim_batch.py).
    sim_trace_data_dependent = False

    #: Grids larger than this run via representative-block tracing.
    _functional_limit = 16

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #
    def default_sizes(self) -> List[int]:
        """The paper sweeps square matrices of side n = 32, 64, ..., 1024."""
        return [32 * i for i in (1, 2, 4, 8, 16, 24, 32)]

    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        ensure_positive_int(n, "n")
        rng = np.random.default_rng(seed)
        return {
            "A": rng.integers(0, 64, size=(n, n)).astype(np.float64),
            "B": rng.integers(0, 64, size=(n, n)).astype(np.float64),
        }

    def sim_inputs(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        ensure_positive_int(n, "n")
        return {
            "A": np.zeros((n, n), dtype=np.float64),
            "B": np.zeros((n, n), dtype=np.float64),
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"C": inputs["A"] @ inputs["B"]}

    # ------------------------------------------------------------------ #
    # Model-side analysis (Section IV-C)
    # ------------------------------------------------------------------ #
    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        ensure_positive_int(n, "n")
        b = min(machine.b, n)
        tiles = ceil_div(n, b)
        blocks = tiles ** 2
        io_per_block = tiles * 2 * b + b  # load A+B tiles each k-step, store C tile
        round_metrics = RoundMetrics(
            time=float(n * b),
            io_blocks=float(blocks * io_per_block),
            inward_words=2.0 * n * n,
            outward_words=float(n * n),
            inward_transactions=2,
            outward_transactions=1,
            global_words=3.0 * n * n,
            shared_words_per_mp=3.0 * b * b,
            thread_blocks=blocks,
            label="matrix multiplication",
        )
        return AlgorithmMetrics([round_metrics], name=self.name)

    def metrics_batch(self, ns, machine: ATGPUMachine) -> MetricsGrid:
        """Vectorized :meth:`metrics` over a vector of matrix sides.

        The tile width ``b = min(machine.b, n)`` is itself size-dependent,
        so every derived quantity is a per-size column.
        """
        sizes = size_vector(ns)
        b = np.minimum(machine.b, sizes)
        tiles = ceil_div(sizes, b).astype(np.int64)
        blocks = tiles ** 2
        io_per_block = tiles * 2 * b + b  # load A+B tiles each k-step, store C tile
        return metrics_grid(sizes, [round_arrays(
            len(sizes),
            time=(sizes * b).astype(float),
            io_blocks=(blocks * io_per_block).astype(float),
            inward_words=2.0 * sizes * sizes,
            outward_words=(sizes * sizes).astype(float),
            inward_transactions=2,
            outward_transactions=1,
            global_words=3.0 * sizes * sizes,
            shared_words_per_mp=3.0 * b * b,
            thread_blocks=blocks,
            label="matrix multiplication",
        )], name=self.name)

    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        ensure_positive_int(n, "n")
        b = min(machine.b, n)
        tiles = ceil_div(n, b)
        kernel = KernelLaunch(
            grid_blocks=tiles ** 2,
            shared_declarations=(
                shared_var("_ta", b * b), shared_var("_tb", b * b),
                shared_var("_tc", b * b),
            ),
            label="tiled matrix multiplication kernel",
            body=(
                Loop(
                    count=tiles,
                    var="kt",
                    body=(
                        GlobalToShared("_ta", "ma", blocks_per_mp=b, operations=b),
                        GlobalToShared("_tb", "mb", blocks_per_mp=b, operations=b),
                        Barrier(),
                        SharedCompute("_tc", "_tc + _ta · _tb", operations=b * b),
                        Barrier(),
                    ),
                ),
                SharedToGlobal("mc", "_tc", blocks_per_mp=b, operations=b),
            ),
        )
        return Program(
            name="matrix-multiplication",
            variables=(
                host_var("A", n * n), host_var("B", n * n), host_var("C", n * n),
                global_var("ma", n * n), global_var("mb", n * n), global_var("mc", n * n),
                shared_var("_ta", b * b), shared_var("_tb", b * b), shared_var("_tc", b * b),
            ),
            rounds=(
                Round(
                    transfers_in=(
                        TransferIn("ma", "A", words=n * n),
                        TransferIn("mb", "B", words=n * n),
                    ),
                    launches=(kernel,),
                    transfers_out=(TransferOut("C", "mc", words=n * n),),
                    label="matrix multiplication",
                ),
            ),
            params={"n": float(n), "b": float(b)},
        )

    # ------------------------------------------------------------------ #
    # Simulator-side execution
    # ------------------------------------------------------------------ #
    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        a = np.asarray(inputs["A"], dtype=np.float64)
        b_matrix = np.asarray(inputs["B"], dtype=np.float64)
        if a.shape != b_matrix.shape or a.shape[0] != a.shape[1]:
            raise ValueError("A and B must be square matrices of the same size")
        n = a.shape[0]
        device.reset_timers()
        device.memcpy_htod("ma", a.reshape(-1))
        device.memcpy_htod("mb", b_matrix.reshape(-1))
        device.allocate("mc", n * n, dtype=np.float64)
        kernel = MatrixMultiplicationKernel(n, device.config.warp_width)
        force_functional = None
        if kernel.grid_size() > self._functional_limit:
            force_functional = False
        device.launch(kernel, force_functional=force_functional)
        c = device.memcpy_dtoh("mc").reshape(n, n)
        device.synchronise("matrix multiplication round")
        result = RunResult(
            outputs={"C": c},
            total_time_s=device.total_time_s,
            kernel_time_s=device.kernel_time_s,
            transfer_time_s=device.transfer_time_s,
            sync_time_s=device.sync_time_s,
        )
        for name in ("ma", "mb", "mc"):
            device.free(name)
        return result
