"""Vector addition on the ATGPU model (Section IV-A of the paper).

For two ``n``-element vectors ``A`` and ``B`` the kernel computes
``C = A + B`` with one thread per element.  The paper's analysis:

* rounds ``R = 1``;
* parallel time ``O(1)`` (the concrete cost uses 3 operations per MP);
* I/O ``O(k)`` with ``k = ⌈n/b⌉`` thread blocks (3 block transactions per
  block: load a, load b, store c);
* global memory ``O(n)`` (3n words), shared memory ``O(b)`` (3b words per
  block);
* transfer ``O(α + βn)``: two inward transactions of ``n`` words each and one
  outward transaction of ``n`` words.

The concrete cost is ``3α + 3βn + (3 + 3λk)/γ + σ`` and the GPU-cost replaces
the ``3`` operations with ``⌈k/(k'ℓ)⌉·3`` (Expression 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    GPUAlgorithm,
    RunResult,
    ShardedRunResult,
    StreamedRunResult,
    chunk_bounds,
    sharded_pool_bounds,
)
from repro.core.topology import Topology
from repro.core.transfer import TransferDirection
from repro.core.machine import ATGPUMachine
from repro.core.metrics import (
    AlgorithmMetrics,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
    size_vector,
)
from repro.pseudocode.ast_nodes import (
    GlobalToShared,
    KernelLaunch,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import global_var, host_var, shared_var
from repro.simulator.device import GPUDevice
from repro.simulator.device_pool import DevicePool
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray
from repro.simulator.streams import StreamOpKind, StreamTimeline
from repro.simulator.timing import KernelTiming
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int

#: Operations charged per MP by the paper's analysis of the kernel.
_KERNEL_OPERATIONS = 3.0
#: Global-memory block transactions per thread block (load a, load b, store c).
_IO_BLOCKS_PER_BLOCK = 3.0


class VectorAdditionKernel(KernelProgram):
    """The vector-addition kernel as a simulator kernel program."""

    name = "vector_addition_kernel"

    def __init__(self, n: int, warp_width: int) -> None:
        self.n = ensure_positive_int(n, "n")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")

    def grid_size(self) -> int:
        return ceil_div(self.n, self.warp_width)

    def array_names(self) -> Tuple[str, ...]:
        return ("a", "b", "c")

    def shared_words_per_block(self) -> int:
        return 3 * self.warp_width

    def run_block(self, ctx: BlockContext) -> None:
        tids = ctx.global_thread_ids()
        active = tids[tids < self.n]
        lanes = np.arange(active.size)
        shared_a = ctx.shared_alloc("_a", self.warp_width)
        shared_b = ctx.shared_alloc("_b", self.warp_width)
        shared_c = ctx.shared_alloc("_c", self.warp_width)
        if active.size == 0:  # pragma: no cover - grids never launch empty blocks
            return
        # _a[j] <== a[ib + j]
        values_a = ctx.global_read("a", active)
        ctx.shared_write("_a", lanes, values_a)
        shared_a[lanes] = values_a
        # _b[j] <== b[ib + j]
        values_b = ctx.global_read("b", active)
        ctx.shared_write("_b", lanes, values_b)
        shared_b[lanes] = values_b
        # _c[j] <- _a[j] + _b[j]
        ctx.compute(1.0, label="c = a + b")
        shared_c[lanes] = shared_a[lanes] + shared_b[lanes]
        # c[ib + j] <== _c[j]
        ctx.global_write("c", active, shared_c[lanes])

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        arrays["c"].data[: self.n] = (
            arrays["a"].data[: self.n] + arrays["b"].data[: self.n]
        )


class VectorAddition(GPUAlgorithm):
    """Vector addition, the paper's first (most transfer-bound) example."""

    name = "vector_addition"
    description = "C = A + B over n-element integer vectors, one thread per element"
    #: The kernel's traces depend only on element indices, so the batched
    #: simulator probes with structural zero inputs (see :meth:`sim_inputs`).
    sim_trace_data_dependent = False

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #
    def default_sizes(self) -> List[int]:
        """The paper sweeps n = 1,000,000 ... 10,000,000 in steps of one million."""
        return [i * 1_000_000 for i in range(1, 11)]

    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        ensure_positive_int(n, "n")
        rng = np.random.default_rng(seed)
        return {
            "A": rng.integers(0, 1 << 20, size=n, dtype=np.int64),
            "B": rng.integers(0, 1 << 20, size=n, dtype=np.int64),
        }

    def sim_inputs(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        """Structural stand-ins for the probe: zeros of the real dtypes."""
        ensure_positive_int(n, "n")
        return {
            "A": np.zeros(n, dtype=np.int64),
            "B": np.zeros(n, dtype=np.int64),
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"C": inputs["A"] + inputs["B"]}

    # ------------------------------------------------------------------ #
    # Model-side analysis (Section IV-A)
    # ------------------------------------------------------------------ #
    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        ensure_positive_int(n, "n")
        k = machine.thread_blocks_for(n)
        round_metrics = RoundMetrics(
            time=_KERNEL_OPERATIONS,
            io_blocks=_IO_BLOCKS_PER_BLOCK * k,
            inward_words=2.0 * n,
            outward_words=float(n),
            inward_transactions=2,
            outward_transactions=1,
            global_words=3.0 * n,
            shared_words_per_mp=3.0 * machine.b,
            thread_blocks=k,
            label="vector addition",
        )
        return AlgorithmMetrics([round_metrics], name=self.name)

    def metrics_batch(self, ns, machine: ATGPUMachine) -> MetricsGrid:
        """Vectorized :meth:`metrics`: the single round over a size vector."""
        sizes = size_vector(ns)
        k = machine.thread_blocks_grid(sizes)
        return metrics_grid(sizes, [round_arrays(
            len(sizes),
            time=_KERNEL_OPERATIONS,
            io_blocks=_IO_BLOCKS_PER_BLOCK * k,
            inward_words=2.0 * sizes,
            outward_words=sizes.astype(float),
            inward_transactions=2,
            outward_transactions=1,
            global_words=3.0 * sizes,
            shared_words_per_mp=3.0 * machine.b,
            thread_blocks=k,
            label="vector addition",
        )], name=self.name)

    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        ensure_positive_int(n, "n")
        b = machine.b
        k = machine.thread_blocks_for(n)

        def block_slice(block: int, lanes: np.ndarray, params: Dict[str, float]) -> np.ndarray:
            start = block * b
            indices = start + lanes
            return indices[indices < int(params["n"])]

        kernel = KernelLaunch(
            grid_blocks=k,
            shared_declarations=(
                shared_var("_a", b), shared_var("_b", b), shared_var("_c", b),
            ),
            label="vector addition kernel",
            body=(
                GlobalToShared("_a", "a", blocks_per_mp=1, global_index=block_slice),
                GlobalToShared("_b", "b", blocks_per_mp=1, global_index=block_slice),
                SharedCompute(
                    "_c", "_a[j] + _b[j]",
                    compute=lambda shared, lanes, params: shared["_a"][lanes] + shared["_b"][lanes],
                ),
                SharedToGlobal("c", "_c", blocks_per_mp=1, global_index=block_slice),
            ),
        )
        return Program(
            name="vector-addition",
            variables=(
                host_var("A", n), host_var("B", n), host_var("C", n),
                global_var("a", n), global_var("b", n), global_var("c", n),
                shared_var("_a", b), shared_var("_b", b), shared_var("_c", b),
            ),
            rounds=(
                Round(
                    transfers_in=(
                        TransferIn("a", "A", words=n),
                        TransferIn("b", "B", words=n),
                    ),
                    launches=(kernel,),
                    transfers_out=(TransferOut("C", "c", words=n),),
                    label="vector addition",
                ),
            ),
            params={"n": float(n), "b": float(b)},
        )

    # ------------------------------------------------------------------ #
    # Simulator-side execution
    # ------------------------------------------------------------------ #
    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        a = np.asarray(inputs["A"])
        b = np.asarray(inputs["B"])
        if a.shape != b.shape:
            raise ValueError("A and B must have the same length")
        n = a.size
        device.reset_timers()
        device.memcpy_htod("a", a)
        device.memcpy_htod("b", b)
        device.allocate("c", n, dtype=a.dtype)
        kernel = VectorAdditionKernel(n, device.config.warp_width)
        device.launch(kernel)
        c = device.memcpy_dtoh("c")
        device.synchronise("vector addition round")
        result = RunResult(
            outputs={"C": c},
            total_time_s=device.total_time_s,
            kernel_time_s=device.kernel_time_s,
            transfer_time_s=device.transfer_time_s,
            sync_time_s=device.sync_time_s,
        )
        for name in ("a", "b", "c"):
            device.free(name)
        return result

    def run_streamed(
        self,
        device: GPUDevice,
        inputs: Dict[str, np.ndarray],
        chunks: int = 2,
        pinned: bool = False,
    ) -> StreamedRunResult:
        """Chunked vector addition with compute/copy overlap.

        Each chunk gets its own stream carrying ``H2D a``, ``H2D b``, the
        chunk's kernel and ``D2H c``; the stream timeline's copy and compute
        engines overlap chunk ``i``'s kernel with chunk ``i+1``'s copies
        (classic double buffering — the workload is copy-bound, so most of
        the kernel time hides entirely).  Durations come from the device's
        own transfer and timing engines, so the serial sum of the scheduled
        operations matches what :meth:`run` would charge for the same
        chunked operations executed back to back.
        """
        a = np.asarray(inputs["A"])
        b = np.asarray(inputs["B"])
        if a.shape != b.shape:
            raise ValueError("A and B must have the same length")
        n = a.size
        device.reset_timers()
        device.allocate("a", n, dtype=a.dtype).data[:] = a.reshape(-1)
        device.allocate("b", n, dtype=b.dtype).data[:] = b.reshape(-1)
        device.allocate("c", n, dtype=a.dtype)

        timeline = StreamTimeline()
        d2h_ops = []
        for index, (lo, hi) in enumerate(chunk_bounds(n, chunks)):
            m = hi - lo
            stream = timeline.stream(f"chunk{index}")
            for name in ("a", "b"):
                record = device.transfer_engine.transfer(
                    m, TransferDirection.HOST_TO_DEVICE, pinned=pinned,
                    label=f"{name}[{lo}:{hi}]",
                )
                timeline.add_transfer(stream, record)
            kernel = VectorAdditionKernel(m, device.config.warp_width)
            pairs, _ = device.functional_engine.execute_sampled(kernel)
            timing = device.timing_engine.kernel_timing(kernel.name, pairs)
            timeline.add_kernel(stream, timing)
            record = device.transfer_engine.transfer(
                m, TransferDirection.DEVICE_TO_HOST, pinned=pinned,
                label=f"c[{lo}:{hi}]",
            )
            d2h_ops.append(timeline.add_transfer(stream, record))
        timeline.submit(
            "host", StreamOpKind.HOST, device.config.sync_overhead_s,
            name="round sync", wait=d2h_ops,
        )

        arrays = {name: device.array(name) for name in ("a", "b", "c")}
        VectorAdditionKernel(n, device.config.warp_width).vectorised_result(arrays)
        c = device.array("c").to_host()
        for name in ("a", "b", "c"):
            device.free(name)
        return StreamedRunResult(
            outputs={"C": c},
            chunk_count=min(chunks, n),
            timeline=timeline,
        )

    def run_sharded(
        self,
        device: GPUDevice,
        inputs: Dict[str, np.ndarray],
        devices: int = 2,
        contention: float = 0.0,
        pinned: bool = False,
        topology: Optional[Topology] = None,
    ) -> ShardedRunResult:
        """Vector addition sharded across a multi-device pool.

        Each device receives a contiguous shard of ``A``/``B``, adds it with
        its own kernel, and returns its shard of ``C``; the pool's makespan
        is the straggler device's completion.  The problem is embarrassingly
        parallel, so with independent links (``contention=0``) the makespan
        shrinks nearly linearly in the device count; on a fully shared link
        (``contention=1``) the copy-bound workload stops scaling — exactly
        the regime the :class:`~repro.core.sharding.ShardedCostModel`
        prices.  With a ``topology``, shard widths follow the per-device
        throughput weights and each device's transfers stretch by its own
        socket's link contention.  ``device`` supplies the per-device
        configuration and the functional/timing engines; data results come
        from the vectorised kernel over the full arrays.
        """
        a = np.asarray(inputs["A"])
        b = np.asarray(inputs["B"])
        if a.shape != b.shape:
            raise ValueError("A and B must have the same length")
        n = a.size
        device.reset_timers()
        device.allocate("a", n, dtype=a.dtype).data[:] = a.reshape(-1)
        device.allocate("b", n, dtype=b.dtype).data[:] = b.reshape(-1)
        device.allocate("c", n, dtype=a.dtype)

        pool, bounds = sharded_pool_bounds(
            device, n, devices, contention, topology
        )
        # Shard sizes take few distinct values, so memoise the
        # (deterministic, size-only) kernel timing instead of re-simulating
        # per device.
        timings: Dict[int, KernelTiming] = {}
        for index, (lo, hi) in enumerate(bounds):
            m = hi - lo
            if m == 0:
                continue
            for name in ("a", "b"):
                pool.add_transfer(
                    index, m, TransferDirection.HOST_TO_DEVICE,
                    pinned=pinned, label=f"{name}[{lo}:{hi}]",
                )
            if m not in timings:
                kernel = VectorAdditionKernel(m, device.config.warp_width)
                pairs, _ = device.functional_engine.execute_sampled(kernel)
                timings[m] = device.timing_engine.kernel_timing(
                    kernel.name, pairs
                )
            pool.add_kernel(index, timings[m])
            pool.add_transfer(
                index, m, TransferDirection.DEVICE_TO_HOST,
                pinned=pinned, label=f"c[{lo}:{hi}]",
            )
            pool.add_host(
                index, device.config.sync_overhead_s, name="device sync",
            )

        arrays = {name: device.array(name) for name in ("a", "b", "c")}
        VectorAdditionKernel(n, device.config.warp_width).vectorised_result(arrays)
        c = device.array("c").to_host()
        for name in ("a", "b", "c"):
            device.free(name)
        return ShardedRunResult(
            outputs={"C": c},
            device_count=pool.num_devices,
            pool=pool,
        )

    # ------------------------------------------------------------------ #
    # Batched-simulator plans
    # ------------------------------------------------------------------ #
    def _scratch_device(self, n: int, config) -> GPUDevice:
        """A device with :meth:`run_streamed`'s exact allocation layout.

        Coalescing transaction counts depend on each array's base offset in
        global memory, so the scratch device allocates ``a``/``b``/``c`` at
        full length in the same order as the scalar paths before any kernel
        is traced.
        """
        device = GPUDevice(config)
        for name in ("a", "b", "c"):
            device.allocate(name, n, dtype=np.int64)
        return device

    def sim_stream_plan(
        self, n: int, config, chunks: int = 2, pinned: bool = False
    ):
        """Symbolic twin of :meth:`run_streamed`'s stream schedule."""
        from repro.simulator.batch import StreamPlan

        ensure_positive_int(n, "n")
        device = self._scratch_device(n, config)
        plan = StreamPlan()
        d2h_ops = []
        for index, (lo, hi) in enumerate(chunk_bounds(n, chunks)):
            m = hi - lo
            stream = f"chunk{index}"
            plan.h2d(stream, m, pinned=pinned)
            plan.h2d(stream, m, pinned=pinned)
            kernel = VectorAdditionKernel(m, config.warp_width)
            pairs, _ = device.functional_engine.execute_sampled(kernel)
            timing = device.timing_engine.kernel_timing(kernel.name, pairs)
            plan.kernel(stream, timing)
            d2h_ops.append(plan.d2h(stream, m, pinned=pinned))
        plan.host("host", config.sync_overhead_s, wait=d2h_ops)
        return plan

    def sim_shard_plan(
        self,
        n: int,
        config,
        devices: int = 2,
        contention: float = 0.0,
        pinned: bool = False,
        topology: Optional[Topology] = None,
    ):
        """Symbolic twin of :meth:`run_sharded`'s device-pool schedule."""
        from repro.simulator.batch import ShardPlan

        ensure_positive_int(n, "n")
        device = self._scratch_device(n, config)
        pool, bounds = sharded_pool_bounds(
            device, n, devices, contention, topology
        )
        plan = ShardPlan(
            [pool.device_stretch(i) for i in range(pool.num_devices)]
        )
        timings: Dict[int, KernelTiming] = {}
        for index, (lo, hi) in enumerate(bounds):
            m = hi - lo
            if m == 0:
                continue
            plan.h2d(index, m, pinned=pinned)
            plan.h2d(index, m, pinned=pinned)
            if m not in timings:
                kernel = VectorAdditionKernel(m, config.warp_width)
                pairs, _ = device.functional_engine.execute_sampled(kernel)
                timings[m] = device.timing_engine.kernel_timing(
                    kernel.name, pairs
                )
            plan.kernel(index, timings[m])
            plan.d2h(index, m, pinned=pinned)
            plan.host(index, config.sync_overhead_s)
        return plan
