"""Sparse matrix–vector product (CSR SpMV) on the ATGPU model.

An extension problem with *data-dependent* irregular memory behaviour: the
matrix is stored in CSR format and each thread block processes one row per
lane using the scalar-CSR scheme (each lane walks its row's nonzeros).  The
column-index gathers from the dense vector are generally uncoalesced, so the
per-block transaction count depends on the sparsity pattern — something the
three regular examples of the paper never exercise.

Transfer-wise SpMV resembles vector addition: the values, column indices,
row pointers and the dense vector all move to the device, and only the small
result vector returns; for low ``nnz/row`` the transfer share is high.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.base import GPUAlgorithm, RunResult
from repro.core.machine import ATGPUMachine
from repro.core.metrics import (
    AlgorithmMetrics,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
    size_vector,
)
from repro.pseudocode.ast_nodes import (
    GlobalToShared,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import global_var, host_var, shared_var
from repro.simulator.device import GPUDevice
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int


class CSRSpMVKernel(KernelProgram):
    """Scalar-CSR SpMV: one matrix row per lane."""

    name = "csr_spmv_kernel"

    def __init__(self, rows: int, warp_width: int, max_row_nnz: int) -> None:
        self.rows = ensure_positive_int(rows, "rows")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        self.max_row_nnz = ensure_positive_int(max_row_nnz, "max_row_nnz")

    def grid_size(self) -> int:
        return ceil_div(self.rows, self.warp_width)

    def array_names(self) -> Tuple[str, ...]:
        return ("values", "colidx", "rowptr", "x", "y")

    def shared_words_per_block(self) -> int:
        return self.warp_width

    def run_block(self, ctx: BlockContext) -> None:
        b = self.warp_width
        start = ctx.block_index * b
        count = min(b, self.rows - start)
        lanes = np.arange(count)
        acc = ctx.shared_alloc("_acc", b)
        row_start = ctx.global_read("rowptr", start + lanes).astype(np.int64)
        row_end = ctx.global_read("rowptr", start + lanes + 1).astype(np.int64)
        lengths = row_end - row_start
        for step in range(int(lengths.max()) if count else 0):
            active = lengths > step
            if not np.any(active):
                break
            positions = (row_start + step)[active]
            cols = ctx.global_read("colidx", positions).astype(np.int64)
            vals = ctx.global_read("values", positions)
            xs = ctx.global_read("x", cols)
            ctx.compute(1.0, label="multiply-accumulate")
            acc[np.flatnonzero(active)] += vals * xs
        ctx.shared_write("_acc", lanes, acc[:count])
        ctx.global_write("y", start + lanes, acc[:count])

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        rowptr = arrays["rowptr"].data[: self.rows + 1].astype(np.int64)
        nnz = int(rowptr[-1])
        values = arrays["values"].data[:nnz]
        colidx = arrays["colidx"].data[:nnz].astype(np.int64)
        x = arrays["x"].data
        contrib = values * x[colidx]
        y = np.add.reduceat(contrib, rowptr[:-1]) if nnz else np.zeros(self.rows)
        # reduceat misbehaves for empty rows; recompute those as zero.
        row_lengths = np.diff(rowptr)
        y = np.where(row_lengths > 0, y, 0.0)
        arrays["y"].data[: self.rows] = y


class SpMV(GPUAlgorithm):
    """CSR sparse matrix–vector product (extension problem)."""

    name = "spmv"
    description = "y = M x for a random sparse CSR matrix with a fixed nnz per row"

    _functional_limit = 2048

    def __init__(self, nnz_per_row: int = 8) -> None:
        self.nnz_per_row = ensure_positive_int(nnz_per_row, "nnz_per_row")

    def default_sizes(self) -> List[int]:
        return [1 << e for e in range(12, 20)]

    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        nnz = self.nnz_per_row
        colidx = rng.integers(0, n, size=(n, nnz)).astype(np.int64)
        values = rng.normal(size=(n, nnz))
        rowptr = np.arange(0, (n + 1) * nnz, nnz, dtype=np.int64)
        x = rng.normal(size=n)
        return {
            "Values": values.reshape(-1),
            "ColIdx": colidx.reshape(-1),
            "RowPtr": rowptr,
            "X": x,
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        rowptr = inputs["RowPtr"].astype(np.int64)
        n = rowptr.size - 1
        values = inputs["Values"]
        colidx = inputs["ColIdx"].astype(np.int64)
        x = inputs["X"]
        y = np.zeros(n)
        contrib = values * x[colidx]
        for row in range(n):
            y[row] = contrib[rowptr[row]:rowptr[row + 1]].sum()
        return {"Y": y}

    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        b = machine.b
        nnz = self.nnz_per_row
        blocks = ceil_div(n, b)
        total_nnz = n * nnz
        round_metrics = RoundMetrics(
            time=float(2 + nnz),
            # Row pointers + per-nonzero value/colidx (coalesced) and the x
            # gather which in the worst case touches one block per lane.
            io_blocks=float(blocks * (2 + 2 * nnz + nnz * b / b) + blocks),
            inward_words=float(2 * total_nnz + (n + 1) + n),
            inward_transactions=4,
            outward_words=float(n),
            outward_transactions=1,
            global_words=float(2 * total_nnz + (n + 1) + 2 * n),
            shared_words_per_mp=float(b),
            thread_blocks=blocks,
            label="csr spmv",
        )
        return AlgorithmMetrics([round_metrics], name=self.name)

    def metrics_batch(self, ns, machine: ATGPUMachine) -> MetricsGrid:
        """Vectorized :meth:`metrics`: the CSR round over a size vector."""
        sizes = size_vector(ns)
        b = machine.b
        nnz = self.nnz_per_row
        blocks = ceil_div(sizes, b).astype(np.int64)
        total_nnz = sizes * nnz
        return metrics_grid(sizes, [round_arrays(
            len(sizes),
            time=float(2 + nnz),
            # Row pointers + per-nonzero value/colidx (coalesced) and the x
            # gather which in the worst case touches one block per lane.
            io_blocks=blocks * (2 + 2 * nnz + nnz * b / b) + blocks,
            inward_words=(2 * total_nnz + (sizes + 1) + sizes).astype(float),
            inward_transactions=4,
            outward_words=sizes.astype(float),
            outward_transactions=1,
            global_words=(2 * total_nnz + (sizes + 1) + 2 * sizes).astype(float),
            shared_words_per_mp=float(b),
            thread_blocks=blocks,
            label="csr spmv",
        )], name=self.name)

    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        b = machine.b
        nnz = self.nnz_per_row
        blocks = ceil_div(n, b)
        body = (
            GlobalToShared("_row", "rowptr", blocks_per_mp=1),
            Loop(count=nnz, var="step", body=(
                GlobalToShared("_val", "values", blocks_per_mp=1),
                GlobalToShared("_col", "colidx", blocks_per_mp=1),
                GlobalToShared("_x", "x", blocks_per_mp=b),
                SharedCompute("_acc", "_acc[j] + _val[j] * _x[j]"),
            )),
            SharedToGlobal("y", "_acc", blocks_per_mp=1),
        )
        return Program(
            name="csr-spmv",
            variables=(
                host_var("Values", n * nnz), host_var("ColIdx", n * nnz),
                host_var("RowPtr", n + 1), host_var("X", n), host_var("Y", n),
                global_var("values", n * nnz), global_var("colidx", n * nnz),
                global_var("rowptr", n + 1), global_var("x", n), global_var("y", n),
                shared_var("_row", b), shared_var("_val", b), shared_var("_col", b),
                shared_var("_x", b), shared_var("_acc", b),
            ),
            rounds=(
                Round(
                    transfers_in=(
                        TransferIn("values", "Values", words=n * nnz),
                        TransferIn("colidx", "ColIdx", words=n * nnz),
                        TransferIn("rowptr", "RowPtr", words=n + 1),
                        TransferIn("x", "X", words=n),
                    ),
                    launches=(KernelLaunch(blocks, body,
                                           (shared_var("_acc", b),), "csr spmv"),),
                    transfers_out=(TransferOut("Y", "y", words=n),),
                    label="csr spmv",
                ),
            ),
            params={"n": float(n), "b": float(b), "nnz": float(nnz)},
        )

    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        rowptr = np.asarray(inputs["RowPtr"], dtype=np.int64)
        n = rowptr.size - 1
        device.reset_timers()
        device.memcpy_htod("values", np.asarray(inputs["Values"], dtype=np.float64))
        device.memcpy_htod("colidx", np.asarray(inputs["ColIdx"], dtype=np.int64))
        device.memcpy_htod("rowptr", rowptr)
        device.memcpy_htod("x", np.asarray(inputs["X"], dtype=np.float64))
        device.allocate("y", n, dtype=np.float64)
        max_row_nnz = int(np.diff(rowptr).max()) if n else 1
        kernel = CSRSpMVKernel(n, device.config.warp_width, max(1, max_row_nnz))
        force = False if kernel.grid_size() > self._functional_limit else None
        device.launch(kernel, force_functional=force)
        device.synchronise("spmv round")
        y = device.memcpy_dtoh("y")
        result = RunResult(
            outputs={"Y": y},
            total_time_s=device.total_time_s,
            kernel_time_s=device.kernel_time_s,
            transfer_time_s=device.transfer_time_s,
            sync_time_s=device.sync_time_s,
        )
        for name in ("values", "colidx", "rowptr", "x", "y"):
            device.free(name)
        return result
