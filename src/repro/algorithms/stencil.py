"""1-D three-point stencil (Jacobi smoothing step) on the ATGPU model.

An extension problem: every output element is the average of its input
neighbourhood, ``out[i] = (in[i-1] + in[i] + in[i+1]) / 3`` with clamped
boundaries.  Each block loads its ``b``-element segment plus a halo of one
element on each side into shared memory (two of the three reads per block
coalesce into the segment's own memory block, the halo elements touch the
neighbouring blocks), computes the stencil, and writes the segment back.

Stencil sweeps often iterate many times over the same device-resident data,
which makes the transfer share *per iteration* tunable: the algorithm takes
an ``iterations`` parameter, and with many iterations it behaves like the
paper's matrix-multiplication case (kernel-bound) while with one iteration
it behaves like vector addition (transfer-bound).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.base import GPUAlgorithm, RunResult
from repro.core.machine import ATGPUMachine
from repro.core.metrics import (
    AlgorithmMetrics,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
    size_vector,
)
from repro.pseudocode.ast_nodes import (
    GlobalToShared,
    KernelLaunch,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import global_var, host_var, shared_var
from repro.simulator.device import GPUDevice
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int


class StencilKernel(KernelProgram):
    """One Jacobi iteration of the three-point stencil."""

    name = "stencil_kernel"

    def __init__(self, n: int, warp_width: int, src: str, dst: str) -> None:
        self.n = ensure_positive_int(n, "n")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        self.src, self.dst = src, dst

    def grid_size(self) -> int:
        return ceil_div(self.n, self.warp_width)

    def array_names(self) -> Tuple[str, ...]:
        return (self.src, self.dst)

    def shared_words_per_block(self) -> int:
        return self.warp_width + 2

    def run_block(self, ctx: BlockContext) -> None:
        b = self.warp_width
        start = ctx.block_index * b
        count = min(b, self.n - start)
        lanes = np.arange(count)
        shared = ctx.shared_alloc("_tile", b + 2)
        # Segment load (coalesced) plus the two halo elements (clamped).
        values = ctx.global_read(self.src, start + lanes)
        ctx.shared_write("_tile", 1 + lanes, values)
        shared[1:1 + count] = values
        left = max(start - 1, 0)
        right = min(start + count, self.n - 1)
        halo = ctx.global_read(self.src, np.array([left, right]))
        shared[0], shared[1 + count] = halo[0], halo[1]
        ctx.shared_write("_tile", np.array([0, 1 + count]), halo)
        ctx.compute(2.0, label="three-point average")
        result = (shared[0:count] + shared[1:1 + count] + shared[2:2 + count]) / 3.0
        ctx.global_write(self.dst, start + lanes, result)

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        src = arrays[self.src].data[: self.n]
        padded = np.concatenate([src[:1], src, src[-1:]])
        arrays[self.dst].data[: self.n] = (
            padded[:-2] + padded[1:-1] + padded[2:]
        ) / 3.0


class Stencil1D(GPUAlgorithm):
    """Iterated 1-D three-point stencil (extension problem)."""

    name = "stencil_1d"
    description = "Iterated 3-point Jacobi stencil over an n-element vector"

    #: Block traces depend only on indices, so the batched probe may skip
    #: input materialisation (parity-tested in tests/test_sim_batch.py).
    sim_trace_data_dependent = False

    _functional_limit = 4096

    def __init__(self, iterations: int = 4) -> None:
        self.iterations = ensure_positive_int(iterations, "iterations")

    def default_sizes(self) -> List[int]:
        return [1 << e for e in range(16, 24)]

    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"A": rng.normal(size=n)}

    def sim_inputs(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        ensure_positive_int(n, "n")
        return {"A": np.zeros(n, dtype=np.float64)}

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        data = np.asarray(inputs["A"], dtype=np.float64)
        for _ in range(self.iterations):
            padded = np.concatenate([data[:1], data, data[-1:]])
            data = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
        return {"Out": data}

    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        b = machine.b
        blocks = ceil_div(n, b)
        rounds = []
        for iteration in range(self.iterations):
            rounds.append(RoundMetrics(
                time=5.0,
                # Segment read, two halo blocks, segment write.
                io_blocks=4.0 * blocks,
                inward_words=float(n) if iteration == 0 else 0.0,
                inward_transactions=1 if iteration == 0 else 0,
                outward_words=float(n) if iteration == self.iterations - 1 else 0.0,
                outward_transactions=1 if iteration == self.iterations - 1 else 0,
                global_words=2.0 * n,
                shared_words_per_mp=float(b + 2),
                thread_blocks=blocks,
                label=f"stencil iteration {iteration + 1}",
            ))
        return AlgorithmMetrics(rounds, name=self.name)

    def metrics_batch(self, ns, machine: ATGPUMachine) -> MetricsGrid:
        """Vectorized :meth:`metrics`: ``iterations`` rounds over a size vector.

        The round count is a fixed parameter (not size-dependent), so every
        round is present at every size; only the per-size columns vary.
        """
        sizes = size_vector(ns)
        b = machine.b
        blocks = ceil_div(sizes, b).astype(np.int64)
        n_sizes = len(sizes)
        rounds = []
        for iteration in range(self.iterations):
            rounds.append(round_arrays(
                n_sizes,
                time=5.0,
                # Segment read, two halo blocks, segment write.
                io_blocks=4.0 * blocks,
                inward_words=sizes.astype(float) if iteration == 0 else 0.0,
                inward_transactions=1 if iteration == 0 else 0,
                outward_words=(
                    sizes.astype(float)
                    if iteration == self.iterations - 1 else 0.0
                ),
                outward_transactions=(
                    1 if iteration == self.iterations - 1 else 0
                ),
                global_words=2.0 * sizes,
                shared_words_per_mp=float(b + 2),
                thread_blocks=blocks,
                label=f"stencil iteration {iteration + 1}",
            ))
        return metrics_grid(sizes, rounds, name=self.name)

    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        b = machine.b
        blocks = ceil_div(n, b)
        body = (
            GlobalToShared("_tile", "u", blocks_per_mp=3),
            SharedCompute("_out", "(_tile[j-1] + _tile[j] + _tile[j+1]) / 3",
                          operations=2),
            SharedToGlobal("v", "_out", blocks_per_mp=1),
        )
        rounds = []
        for iteration in range(self.iterations):
            rounds.append(Round(
                transfers_in=(TransferIn("u", "A", words=n),) if iteration == 0 else (),
                launches=(KernelLaunch(blocks, body,
                                       (shared_var("_tile", b + 2), shared_var("_out", b)),
                                       f"stencil iteration {iteration + 1}"),),
                transfers_out=(
                    (TransferOut("Out", "v", words=n),)
                    if iteration == self.iterations - 1 else ()
                ),
                label=f"stencil iteration {iteration + 1}",
            ))
        return Program(
            name="stencil-1d",
            variables=(
                host_var("A", n), host_var("Out", n),
                global_var("u", n), global_var("v", n),
                shared_var("_tile", b + 2), shared_var("_out", b),
            ),
            rounds=tuple(rounds),
            params={"n": float(n), "b": float(b)},
        )

    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        a = np.asarray(inputs["A"], dtype=np.float64)
        n = a.size
        b = device.config.warp_width
        device.reset_timers()
        device.memcpy_htod("u", a)
        device.allocate("v", n, dtype=np.float64)
        src, dst = "u", "v"
        for iteration in range(self.iterations):
            kernel = StencilKernel(n, b, src=src, dst=dst)
            force = False if kernel.grid_size() > self._functional_limit else None
            device.launch(kernel, force_functional=force)
            device.synchronise(f"stencil iteration {iteration + 1}")
            src, dst = dst, src
        out = device.memcpy_dtoh(src)
        result = RunResult(
            outputs={"Out": out},
            total_time_s=device.total_time_s,
            kernel_time_s=device.kernel_time_s,
            transfer_time_s=device.transfer_time_s,
            sync_time_s=device.sync_time_s,
        )
        device.free("u")
        device.free("v")
        return result
