"""Computational problems analysed and executed on the ATGPU model.

The three paper algorithms (vector addition, reduction, matrix
multiplication) each provide the complete pipeline of Section IV — hand
analysis, pseudocode, simulator kernels, reference implementation — and the
extension algorithms (prefix sum, stencil, histogram, SpMV) cover the
"further computational problems" the paper's conclusion calls for.
"""

from repro.algorithms.base import (
    GPUAlgorithm,
    ObservationRecord,
    RunResult,
    ShardedRunResult,
    StreamedRunResult,
    chunk_bounds,
)
from repro.algorithms.histogram import BlockHistogramKernel, Histogram, MergePartialsKernel
from repro.algorithms.matrix_multiplication import (
    MatrixMultiplication,
    MatrixMultiplicationKernel,
)
from repro.algorithms.reduction import Reduction, ReductionRoundKernel, reduction_rounds
from repro.algorithms.registry import (
    ALL_ALGORITHMS,
    EXTENSION_ALGORITHMS,
    PAPER_ALGORITHMS,
    all_algorithm_names,
    create,
    extension_algorithm_names,
    paper_algorithm_names,
)
from repro.algorithms.scan import AddOffsetsKernel, BlockScanKernel, PrefixSum
from repro.algorithms.spmv import CSRSpMVKernel, SpMV
from repro.algorithms.stencil import Stencil1D, StencilKernel
from repro.algorithms.vector_addition import VectorAddition, VectorAdditionKernel

__all__ = [
    "GPUAlgorithm",
    "ObservationRecord",
    "RunResult",
    "ShardedRunResult",
    "StreamedRunResult",
    "chunk_bounds",
    "BlockHistogramKernel",
    "Histogram",
    "MergePartialsKernel",
    "MatrixMultiplication",
    "MatrixMultiplicationKernel",
    "Reduction",
    "ReductionRoundKernel",
    "reduction_rounds",
    "ALL_ALGORITHMS",
    "EXTENSION_ALGORITHMS",
    "PAPER_ALGORITHMS",
    "all_algorithm_names",
    "create",
    "extension_algorithm_names",
    "paper_algorithm_names",
    "AddOffsetsKernel",
    "BlockScanKernel",
    "PrefixSum",
    "CSRSpMVKernel",
    "SpMV",
    "Stencil1D",
    "StencilKernel",
    "VectorAddition",
    "VectorAdditionKernel",
]
