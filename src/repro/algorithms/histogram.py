"""Histogram computation on the ATGPU model (extension problem).

Each block builds a private histogram of its ``b``-element segment in shared
memory and then merges it into a per-block slice of a global partial-
histogram array; a second round reduces the per-block partials into the
final histogram.  Shared-memory updates of a histogram are the textbook
source of bank conflicts, so this problem exercises the model component the
paper's three examples deliberately avoid ("we assume bank conflicts do not
occur, as these are difficult to analyse") — here the simulator measures
them and the analysis charges the worst-case serialisation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.base import GPUAlgorithm, RunResult
from repro.core.machine import ATGPUMachine
from repro.core.metrics import (
    AlgorithmMetrics,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
    size_vector,
)
from repro.pseudocode.ast_nodes import (
    GlobalToShared,
    KernelLaunch,
    Loop,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
)
from repro.pseudocode.program import Program, Round
from repro.pseudocode.variables import global_var, host_var, shared_var
from repro.simulator.device import GPUDevice
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int


class BlockHistogramKernel(KernelProgram):
    """Phase 1: per-block private histograms written to a partials array.

    Each block processes ``elements_per_thread`` consecutive warp-wide chunks
    (so ``b * elements_per_thread`` input elements), the standard technique
    for keeping the number of partial histograms — and hence the merge cost —
    small.
    """

    name = "block_histogram_kernel"

    def __init__(self, n: int, bins: int, warp_width: int,
                 src: str, partials: str, elements_per_thread: int = 64) -> None:
        self.n = ensure_positive_int(n, "n")
        self.bins = ensure_positive_int(bins, "bins")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        self.elements_per_thread = ensure_positive_int(
            elements_per_thread, "elements_per_thread"
        )
        self.src, self.partials = src, partials

    @property
    def segment(self) -> int:
        """Input elements handled by one block."""
        return self.warp_width * self.elements_per_thread

    def grid_size(self) -> int:
        return ceil_div(self.n, self.segment)

    def array_names(self) -> Tuple[str, ...]:
        return (self.src, self.partials)

    def shared_words_per_block(self) -> int:
        return self.bins

    def run_block(self, ctx: BlockContext) -> None:
        b = self.warp_width
        hist = ctx.shared_alloc("_hist", self.bins)
        base = ctx.block_index * self.segment
        for chunk in range(self.elements_per_thread):
            start = base + chunk * b
            if start >= self.n:
                break
            count = min(b, self.n - start)
            lanes = np.arange(count)
            values = ctx.global_read(self.src, start + lanes).astype(np.int64)
            bins = values % self.bins
            ctx.compute(1.0, label="bin increments")
            np.add.at(hist, bins, 1)
            # Scatter the increments into the shared histogram: the access is
            # potentially bank-conflicting, which the trace records.
            ctx.shared_write("_hist", bins, hist[bins])
        # Merge into the per-block slice of the global partials array.
        bin_lanes = np.arange(self.bins)
        ctx.global_write(self.partials, ctx.block_index * self.bins + bin_lanes,
                         hist[bin_lanes])

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        grid = self.grid_size()
        src = arrays[self.src].data[: self.n].astype(np.int64) % self.bins
        partials = np.zeros((grid, self.bins), dtype=np.int64)
        block_of = np.arange(self.n) // self.segment
        np.add.at(partials, (block_of, src), 1)
        arrays[self.partials].data[: grid * self.bins] = partials.reshape(-1)


class MergePartialsKernel(KernelProgram):
    """Phase 2: column-sum the per-block partial histograms."""

    name = "histogram_merge_kernel"

    def __init__(self, num_partials: int, bins: int, warp_width: int,
                 partials: str, out: str) -> None:
        self.num_partials = ensure_positive_int(num_partials, "num_partials")
        self.bins = ensure_positive_int(bins, "bins")
        self.warp_width = ensure_positive_int(warp_width, "warp_width")
        self.partials, self.out = partials, out

    def grid_size(self) -> int:
        return ceil_div(self.bins, self.warp_width)

    def array_names(self) -> Tuple[str, ...]:
        return (self.partials, self.out)

    def shared_words_per_block(self) -> int:
        return self.warp_width

    def run_block(self, ctx: BlockContext) -> None:
        b = self.warp_width
        start = ctx.block_index * b
        count = min(b, self.bins - start)
        lanes = np.arange(count)
        acc = ctx.shared_alloc("_acc", b)
        for block in range(self.num_partials):
            values = ctx.global_read(self.partials,
                                     block * self.bins + start + lanes)
            ctx.compute(1.0, label="accumulate partial")
            acc[:count] += values
        ctx.shared_write("_acc", lanes, acc[:count])
        ctx.global_write(self.out, start + lanes, acc[:count])

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        partials = arrays[self.partials].data[: self.num_partials * self.bins]
        arrays[self.out].data[: self.bins] = (
            partials.reshape(self.num_partials, self.bins).sum(axis=0)
        )


class Histogram(GPUAlgorithm):
    """Binned histogram of an integer vector (extension problem)."""

    name = "histogram"
    description = "Histogram of an n-element integer vector into a fixed number of bins"

    _functional_limit = 512
    #: Consecutive warp-wide chunks handled by each block in phase 1.
    elements_per_thread = 64

    def __init__(self, bins: int = 64) -> None:
        self.bins = ensure_positive_int(bins, "bins")

    def default_sizes(self) -> List[int]:
        return [1 << e for e in range(16, 24)]

    def generate_input(self, n: int, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"A": rng.integers(0, self.bins, size=n, dtype=np.int64)}

    def reference(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        counts = np.bincount(inputs["A"] % self.bins, minlength=self.bins)
        return {"H": counts.astype(np.int64)}

    def metrics(self, n: int, machine: ATGPUMachine) -> AlgorithmMetrics:
        b = machine.b
        ept = self.elements_per_thread
        blocks = ceil_div(n, (b * ept))
        bin_blocks = ceil_div(self.bins, b)
        build_round = RoundMetrics(
            # Per chunk: load and scatter (worst-case b-way serialisation is
            # charged as b operations), plus the partial write-back.
            time=float(ept) * (2.0 + float(b)),
            io_blocks=float(blocks * (ept + bin_blocks)),
            inward_words=float(n), inward_transactions=1,
            global_words=float(n + blocks * self.bins + self.bins),
            shared_words_per_mp=float(self.bins),
            thread_blocks=blocks,
            label="per-block histograms",
        )
        merge_round = RoundMetrics(
            time=float(blocks),
            io_blocks=float(bin_blocks * (blocks + 1)),
            outward_words=float(self.bins), outward_transactions=1,
            global_words=float(n + blocks * self.bins + self.bins),
            shared_words_per_mp=float(b),
            thread_blocks=max(1, bin_blocks),
            label="merge partials",
        )
        return AlgorithmMetrics([build_round, merge_round], name=self.name)

    def metrics_batch(self, ns, machine: ATGPUMachine) -> MetricsGrid:
        """Vectorized :meth:`metrics`: build + merge phases over a size vector."""
        sizes = size_vector(ns)
        b = machine.b
        ept = self.elements_per_thread
        blocks = ceil_div(sizes, (b * ept)).astype(np.int64)
        bin_blocks = ceil_div(self.bins, b)
        global_words = (sizes + blocks * self.bins + self.bins).astype(float)
        n_sizes = len(sizes)
        build_round = round_arrays(
            n_sizes,
            # Per chunk: load and scatter (worst-case b-way serialisation is
            # charged as b operations), plus the partial write-back.
            time=float(ept) * (2.0 + float(b)),
            io_blocks=(blocks * (ept + bin_blocks)).astype(float),
            inward_words=sizes.astype(float), inward_transactions=1,
            global_words=global_words,
            shared_words_per_mp=float(self.bins),
            thread_blocks=blocks,
            label="per-block histograms",
        )
        merge_round = round_arrays(
            n_sizes,
            time=blocks.astype(float),
            io_blocks=(bin_blocks * (blocks + 1)).astype(float),
            outward_words=float(self.bins), outward_transactions=1,
            global_words=global_words,
            shared_words_per_mp=float(b),
            thread_blocks=max(1, bin_blocks),
            label="merge partials",
        )
        return metrics_grid(sizes, [build_round, merge_round], name=self.name)

    def build_pseudocode(self, n: int, machine: ATGPUMachine) -> Program:
        b = machine.b
        ept = self.elements_per_thread
        blocks = ceil_div(n, (b * ept))
        bin_blocks = max(1, ceil_div(self.bins, b))
        build_body = (
            Loop(count=ept, var="chunk", body=(
                GlobalToShared("_seg", "a"),
                SharedCompute("_hist", "_hist[_seg[j] mod bins] + 1", operations=b),
            )),
            SharedToGlobal("partials", "_hist", blocks_per_mp=bin_blocks),
        )
        merge_body = (
            Loop(count=blocks, var="block", body=(
                GlobalToShared("_acc", "partials"),
                SharedCompute("_acc", "_acc[j] + partials[block][j]"),
            )),
            SharedToGlobal("h", "_acc"),
        )
        return Program(
            name="histogram",
            variables=(
                host_var("A", n), host_var("H", self.bins),
                global_var("a", n), global_var("partials", blocks * self.bins),
                global_var("h", self.bins),
                shared_var("_seg", b), shared_var("_hist", self.bins),
                shared_var("_acc", b),
            ),
            rounds=(
                Round(
                    transfers_in=(TransferIn("a", "A", words=n),),
                    launches=(KernelLaunch(blocks, build_body,
                                           (shared_var("_seg", b),
                                            shared_var("_hist", self.bins)),
                                           "per-block histograms"),),
                    label="per-block histograms",
                ),
                Round(
                    launches=(KernelLaunch(bin_blocks, merge_body,
                                           (shared_var("_acc", b),),
                                           "merge partials"),),
                    transfers_out=(TransferOut("H", "h", words=self.bins),),
                    label="merge partials",
                ),
            ),
            params={"n": float(n), "b": float(b), "bins": float(self.bins)},
        )

    def run(self, device: GPUDevice, inputs: Dict[str, np.ndarray]) -> RunResult:
        a = np.asarray(inputs["A"], dtype=np.int64)
        n = a.size
        b = device.config.warp_width
        blocks = ceil_div(n, (b * self.elements_per_thread))
        device.reset_timers()
        device.memcpy_htod("a", a)
        device.allocate("partials", blocks * self.bins, dtype=np.int64)
        device.allocate("h", self.bins, dtype=np.int64)
        build = BlockHistogramKernel(
            n, self.bins, b, src="a", partials="partials",
            elements_per_thread=self.elements_per_thread,
        )
        force = False if build.grid_size() > self._functional_limit else None
        device.launch(build, force_functional=force)
        device.synchronise("per-block histograms")
        merge = MergePartialsKernel(blocks, self.bins, b, partials="partials", out="h")
        force = False if merge.grid_size() > self._functional_limit else None
        device.launch(merge, force_functional=force)
        device.synchronise("merge partials")
        h = device.memcpy_dtoh("h")
        result = RunResult(
            outputs={"H": h},
            total_time_s=device.total_time_s,
            kernel_time_s=device.kernel_time_s,
            transfer_time_s=device.transfer_time_s,
            sync_time_s=device.sync_time_s,
        )
        for name in ("a", "partials", "h"):
            device.free(name)
        return result
