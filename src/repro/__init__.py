"""ATGPU: an abstract GPU model with host/device data transfer.

Reproduction of Carroll & Wong, *An Improved Abstract GPU Model with Data
Transfer* (ICPP Workshops 2017).

The package is organised as:

* :mod:`repro.core` -- the ATGPU model itself: machine, metrics, transfer
  model, cost functions, SWGPU/AGPU baselines, prediction and calibration.
* :mod:`repro.models` -- the classical parallel models (PRAM, BSP, BSPRAM,
  PEM) the paper surveys, with an extended feature comparison.
* :mod:`repro.simulator` -- an executable abstract-GPU simulator used as the
  "observed" side of every experiment (the GTX 650 substitute).
* :mod:`repro.pseudocode` -- the ATGPU pseudocode notation as an embedded
  DSL with validation, static analysis, interpretation and rendering.
* :mod:`repro.algorithms` -- the evaluated computational problems (vector
  addition, reduction, matrix multiplication) plus extension problems.
* :mod:`repro.workloads` -- input generators and the paper's sweeps.
* :mod:`repro.experiments` -- the harness that regenerates every figure and
  table of the evaluation section.

Quick start::

    from repro import VectorAddition, ExperimentRunner

    runner = ExperimentRunner(scale="small")
    comparison = runner.run_algorithm(VectorAddition())
    print(comparison.summary())
"""

from repro.algorithms import (
    GPUAlgorithm,
    Histogram,
    MatrixMultiplication,
    PrefixSum,
    Reduction,
    SpMV,
    Stencil1D,
    VectorAddition,
    create,
)
from repro.core import (
    ATGPUCostModel,
    ATGPUMachine,
    AnalysisReport,
    CostParameters,
    GTX_650,
    OccupancyModel,
    SWGPUCostModel,
    analyse_metrics,
    get_preset,
)
from repro.experiments import ExperimentRunner, all_figures, summary_statistics, table1
from repro.simulator import DeviceConfig, GPUDevice

__version__ = "1.0.0"

__all__ = [
    "GPUAlgorithm",
    "Histogram",
    "MatrixMultiplication",
    "PrefixSum",
    "Reduction",
    "SpMV",
    "Stencil1D",
    "VectorAddition",
    "create",
    "ATGPUCostModel",
    "ATGPUMachine",
    "AnalysisReport",
    "CostParameters",
    "GTX_650",
    "OccupancyModel",
    "SWGPUCostModel",
    "analyse_metrics",
    "get_preset",
    "ExperimentRunner",
    "all_figures",
    "summary_statistics",
    "table1",
    "DeviceConfig",
    "GPUDevice",
    "__version__",
]
