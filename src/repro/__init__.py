"""ATGPU: an abstract GPU model with host/device data transfer.

Reproduction of Carroll & Wong, *An Improved Abstract GPU Model with Data
Transfer* (ICPP Workshops 2017).

The package is organised as:

* :mod:`repro.core` -- the ATGPU model itself: machine, metrics, transfer
  model, cost functions, SWGPU/AGPU baselines, prediction and calibration.
* :mod:`repro.models` -- the classical parallel models (PRAM, BSP, BSPRAM,
  PEM) the paper surveys, with an extended feature comparison.
* :mod:`repro.simulator` -- an executable abstract-GPU simulator used as the
  "observed" side of every experiment (the GTX 650 substitute).
* :mod:`repro.pseudocode` -- the ATGPU pseudocode notation as an embedded
  DSL with validation, static analysis, interpretation and rendering.
* :mod:`repro.algorithms` -- the evaluated computational problems (vector
  addition, reduction, matrix multiplication) plus extension problems.
* :mod:`repro.workloads` -- input generators and the paper's sweeps.
* :mod:`repro.experiments` -- the declarative experiment layer: specs,
  sessions, results, and the harness that regenerates every figure and
  table of the evaluation section.
* :mod:`repro.serving` -- prediction-as-a-service: a request server that
  coalesces concurrent sweep requests sharing ``(algorithm, preset)`` into
  one union-of-sizes batch, with pluggable scheduling policies and
  admission control.

Quick start -- describe an experiment declaratively and run it through a
session (results are cached by spec hash, batches can fan out over a
process pool)::

    from repro import ExperimentSpec, Session

    session = Session()
    result = session.run(ExperimentSpec("vector_addition", scale="small"))
    print(result.summary())

The full Section IV evaluation as one batch::

    from repro import Session, paper_specs, summary_statistics

    evaluation = Session(engine="process").run_many(paper_specs(scale="small"))
    print(summary_statistics(evaluation))

Cost-model backends (``atgpu``, ``swgpu``, ``perfect``, ``agpu``, plus any
registered via :func:`repro.core.backends.register_backend`) are selected
per spec: ``ExperimentSpec("reduction", backends=("atgpu", "perfect"))``.
"""

from repro.algorithms import (
    GPUAlgorithm,
    Histogram,
    MatrixMultiplication,
    PrefixSum,
    Reduction,
    SpMV,
    Stencil1D,
    VectorAddition,
    create,
)
from repro.core import (
    ATGPUCostModel,
    ATGPUMachine,
    AnalysisReport,
    CostParameters,
    GTX_650,
    MetricsBatch,
    OccupancyModel,
    OverlappedTransferModel,
    SWGPUCostModel,
    analyse_metrics,
    backend_names,
    get_backend,
    get_preset,
    make_async_backend,
    register_backend,
)
from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    Result,
    ResultSet,
    Session,
    all_figures,
    paper_specs,
    summary_statistics,
    table1,
)
from repro.serving import (
    DeadlineExpiredError,
    PredictionServer,
    SchedulingPolicy,
    ServerOverloadedError,
    ServerStats,
)
from repro.simulator import DeviceConfig, GPUDevice, StreamTimeline

__version__ = "1.0.0"

__all__ = [
    "GPUAlgorithm",
    "Histogram",
    "MatrixMultiplication",
    "PrefixSum",
    "Reduction",
    "SpMV",
    "Stencil1D",
    "VectorAddition",
    "create",
    "ATGPUCostModel",
    "ATGPUMachine",
    "AnalysisReport",
    "CostParameters",
    "GTX_650",
    "MetricsBatch",
    "OccupancyModel",
    "OverlappedTransferModel",
    "SWGPUCostModel",
    "analyse_metrics",
    "backend_names",
    "get_backend",
    "get_preset",
    "make_async_backend",
    "register_backend",
    "ExperimentRunner",
    "ExperimentSpec",
    "Result",
    "ResultSet",
    "Session",
    "paper_specs",
    "all_figures",
    "summary_statistics",
    "table1",
    "DeadlineExpiredError",
    "PredictionServer",
    "SchedulingPolicy",
    "ServerOverloadedError",
    "ServerStats",
    "DeviceConfig",
    "GPUDevice",
    "StreamTimeline",
    "__version__",
]
