"""The cycle-accounting timing engine of the simulator.

Where the ATGPU cost function charges every global-memory block access a
full latency ``λ`` serially, a real GPU overlaps memory latency with the
execution of other resident warps (latency hiding), is ultimately limited by
its memory bandwidth, and pays per-launch overheads.  The timing engine
models those mechanisms so the simulator's "observed" times are produced by
a genuinely different model than the analytical prediction — which is what
makes the paper's prediction-vs-observation comparison meaningful in this
reproduction.

For one kernel launch the engine computes, per wave of resident blocks on
one SM, three candidate bounds and takes their maximum:

* **issue bound** -- every warp-instruction of every resident block must be
  issued by the SM's schedulers: ``ℓ · (compute + shared access cycles)``,
* **latency bound** -- a single block's chain of global transactions, with
  ``memory_parallelism`` outstanding requests overlapping, plus the block's
  own instruction issue (which cannot hide behind its own memory stalls):
  ``transactions/block · λ / MLP + mean_issue``,
* **bandwidth bound** -- the wave's total global traffic cannot exceed the
  device bandwidth share of one SM:
  ``ℓ · words/block / (BW_words_per_cycle / num_SMs)``.

The kernel's total device time is ``waves · wave_time + λ`` (pipeline fill)
converted to seconds, plus the host-side launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.occupancy import blocks_per_multiprocessor_grid, wave_count_grid
from repro.simulator.config import DeviceConfig
from repro.simulator.scheduler import BlockScheduler, SchedulePlan
from repro.simulator.trace import BlockTrace, KernelCounters


@dataclass(frozen=True)
class KernelTiming:
    """Timing result of one kernel launch."""

    kernel_name: str
    cycles: float
    device_time_s: float
    launch_overhead_s: float
    issue_bound_cycles: float
    latency_bound_cycles: float
    bandwidth_bound_cycles: float
    plan: SchedulePlan
    counters: KernelCounters

    @property
    def total_time_s(self) -> float:
        """Device time plus host-side launch overhead."""
        return self.device_time_s + self.launch_overhead_s

    @property
    def limiting_factor(self) -> str:
        """Which of the three bounds dominated the wave time."""
        bounds = {
            "issue": self.issue_bound_cycles,
            "latency": self.latency_bound_cycles,
            "bandwidth": self.bandwidth_bound_cycles,
        }
        return max(bounds, key=bounds.get)


class TimingEngine:
    """Computes kernel timings from block traces and the device configuration."""

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config
        self.scheduler = BlockScheduler(config)

    # ------------------------------------------------------------------ #
    # Per-block cycle components
    # ------------------------------------------------------------------ #
    def block_issue_cycles(self, trace: BlockTrace) -> float:
        """Cycles of instruction issue for one block (compute + shared + barriers)."""
        config = self.config
        compute = trace.compute_operations * config.issue_cycles
        shared = trace.shared_conflict_cycles_factor * config.shared_latency_cycles
        barriers = trace.barriers * config.barrier_cycles
        return compute + shared + barriers

    def block_latency_cycles(self, trace: BlockTrace) -> float:
        """Exposed global-memory latency cycles of one block."""
        config = self.config
        if trace.global_transactions == 0:
            return 0.0
        overlapped = trace.global_transactions / config.memory_parallelism
        return overlapped * config.global_latency_cycles

    # ------------------------------------------------------------------ #
    # Launch-level timing
    # ------------------------------------------------------------------ #
    def kernel_timing(
        self,
        kernel_name: str,
        traces_with_counts: Sequence[Tuple[BlockTrace, int]],
        shared_words_per_block: int = None,
    ) -> KernelTiming:
        """Time a launch described by ``(trace, multiplicity)`` pairs.

        The traces are assumed to cover the whole grid (their multiplicities
        sum to the grid size).  When blocks differ structurally the engine
        uses the *weighted mean* per-block cycle components, which is exact
        for the aggregate issue and bandwidth bounds and a close approximation
        for the latency bound.
        """
        if not traces_with_counts:
            raise ValueError("kernel_timing requires at least one block trace")
        counters = KernelCounters.from_traces(kernel_name, traces_with_counts)
        num_blocks = counters.num_blocks
        if shared_words_per_block is None:
            shared_words_per_block = counters.max_shared_words_per_block
        plan = self.scheduler.plan(num_blocks, shared_words_per_block)

        total_issue = sum(
            self.block_issue_cycles(trace) * count
            for trace, count in traces_with_counts
        )
        total_latency = sum(
            self.block_latency_cycles(trace) * count
            for trace, count in traces_with_counts
        )
        mean_issue = total_issue / num_blocks
        mean_latency = total_latency / num_blocks
        mean_words = counters.global_words / num_blocks

        config = self.config
        resident = plan.blocks_per_sm
        # Per-SM share of the device memory bandwidth, in words per cycle.
        bandwidth_share = config.global_bandwidth_words_per_cycle / config.num_sms

        issue_bound = resident * mean_issue
        latency_bound = mean_latency + mean_issue
        bandwidth_bound = resident * mean_words / bandwidth_share

        wave_cycles = max(issue_bound, latency_bound, bandwidth_bound)
        total_cycles = plan.waves * wave_cycles + config.global_latency_cycles
        device_time = total_cycles / config.clock_hz
        return KernelTiming(
            kernel_name=kernel_name,
            cycles=total_cycles,
            device_time_s=device_time,
            launch_overhead_s=config.kernel_launch_overhead_s,
            issue_bound_cycles=issue_bound,
            latency_bound_cycles=latency_bound,
            bandwidth_bound_cycles=bandwidth_bound,
            plan=plan,
            counters=counters,
        )

    def kernel_timing_from_traces(
        self, kernel_name: str, traces: Iterable[BlockTrace],
        shared_words_per_block: int = None,
    ) -> KernelTiming:
        """Convenience wrapper for fully-enumerated traces (multiplicity one)."""
        pairs = [(trace, 1) for trace in traces]
        return self.kernel_timing(kernel_name, pairs, shared_words_per_block)


@dataclass(frozen=True)
class KernelTimingGrid:
    """Timing results for a grid of kernel launches (launches × sizes).

    The batched analogue of :class:`KernelTiming`: every field is an array
    over the grid, mirroring how ``MetricsGrid`` holds rounds × sizes cost
    inputs.  Elements are bit-for-bit equal to what the scalar
    :meth:`TimingEngine.kernel_timing` produces for the corresponding launch.
    """

    num_blocks: np.ndarray
    blocks_per_sm: np.ndarray
    waves: np.ndarray
    issue_bound_cycles: np.ndarray
    latency_bound_cycles: np.ndarray
    bandwidth_bound_cycles: np.ndarray
    cycles: np.ndarray
    device_time_s: np.ndarray
    launch_overhead_s: float

    @property
    def total_time_s(self) -> np.ndarray:
        """Device time plus host-side launch overhead, per launch."""
        return self.device_time_s + self.launch_overhead_s

    @property
    def limiting_factors(self) -> np.ndarray:
        """Which bound dominated each launch's wave time.

        Replicates the scalar tie order (first maximum wins in dict order:
        issue, then latency, then bandwidth).
        """
        issue = self.issue_bound_cycles
        latency = self.latency_bound_cycles
        bandwidth = self.bandwidth_bound_cycles
        return np.where(
            (issue >= latency) & (issue >= bandwidth),
            "issue",
            np.where(latency >= bandwidth, "latency", "bandwidth"),
        )


def kernel_timing_grid(
    config: DeviceConfig,
    num_blocks,
    total_issue_cycles,
    total_latency_cycles,
    global_words,
    shared_words_per_block,
) -> KernelTimingGrid:
    """Vectorized twin of :meth:`TimingEngine.kernel_timing`.

    Inputs are per-launch aggregates (any common shape, e.g. launches ×
    sizes): grid sizes, the trace-weighted total issue and latency cycles,
    total global words, and the per-block shared-memory footprint the
    scheduler plans with.  Aggregation over block traces stays with the
    caller — it is order-sensitive float accumulation — while everything
    downstream of the aggregates is elementwise and replicates the scalar
    operand order exactly.
    """
    blocks = np.asarray(num_blocks, dtype=np.int64)
    total_issue = np.asarray(total_issue_cycles, dtype=float)
    total_latency = np.asarray(total_latency_cycles, dtype=float)
    words = np.asarray(global_words, dtype=float)
    if np.any(blocks <= 0):
        raise ValueError("kernel_timing_grid requires positive grid sizes")
    resident = blocks_per_multiprocessor_grid(
        config.shared_memory_words,
        np.asarray(shared_words_per_block, dtype=float),
        config.max_blocks_per_sm,
    )
    waves = wave_count_grid(blocks, config.num_sms, resident)

    mean_issue = total_issue / blocks
    mean_latency = total_latency / blocks
    mean_words = words / blocks
    bandwidth_share = config.global_bandwidth_words_per_cycle / config.num_sms

    issue_bound = resident * mean_issue
    latency_bound = mean_latency + mean_issue
    bandwidth_bound = resident * mean_words / bandwidth_share

    wave_cycles = np.maximum(np.maximum(issue_bound, latency_bound), bandwidth_bound)
    total_cycles = waves * wave_cycles + config.global_latency_cycles
    device_time = total_cycles / config.clock_hz
    return KernelTimingGrid(
        num_blocks=blocks,
        blocks_per_sm=resident,
        waves=waves,
        issue_bound_cycles=issue_bound,
        latency_bound_cycles=latency_bound,
        bandwidth_bound_cycles=bandwidth_bound,
        cycles=total_cycles,
        device_time_s=device_time,
        launch_overhead_s=config.kernel_launch_overhead_s,
    )
