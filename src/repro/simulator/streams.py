"""Asynchronous streams with compute/copy overlap for the simulator.

The serial device timeline (:class:`repro.simulator.trace.Timeline`) charges
every operation back to back, exactly as the paper's cost function charges
every transfer serially.  Real pipelines hide transfer time behind kernel
execution instead: CUDA exposes *streams* — in-order queues of operations —
and a GPU with dedicated copy engines executes an H2D copy, a kernel and a
D2H copy from three different streams concurrently (the classic
double-buffering pattern of CrystalGPU and the CUDA "overlap data transfers"
examples).

:class:`StreamTimeline` models that machinery:

* operations (H2D copy, kernel launch, D2H copy, host work) are submitted to
  named :class:`Stream` objects and execute **in order within a stream**;
* each operation kind occupies one of the device's *engines* (an H2D copy
  engine, a compute engine, a D2H copy engine); an engine runs one operation
  at a time, in submission order — two H2D copies never overlap each other,
  but an H2D copy, a kernel and a D2H copy from different streams do;
* explicit *events* (the scheduled operations themselves) can be waited on
  across streams, mirroring ``cudaStreamWaitEvent``;
* the **makespan** is the end of the critical path through those
  constraints, as opposed to the serial sum of durations.

Durations come from the existing engines: :meth:`StreamTimeline.add_transfer`
accepts the :class:`~repro.simulator.transfer_engine.TransferRecord` produced
by a :class:`~repro.simulator.transfer_engine.TransferEngine`, and
:meth:`StreamTimeline.add_kernel` accepts the
:class:`~repro.simulator.timing.KernelTiming` produced by a
:class:`~repro.simulator.timing.TimingEngine` — so the overlapped account
uses exactly the same per-operation costs as the serial one, and
``serial_time - makespan`` is the time recovered by overlap alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.transfer import TransferDirection
from repro.simulator.timing import KernelTiming
from repro.simulator.transfer_engine import TransferRecord


class StreamOpKind(enum.Enum):
    """Categories of operations a stream can carry."""

    H2D = "h2d"
    KERNEL = "kernel"
    D2H = "d2h"
    HOST = "host"


#: Engine each operation kind executes on.  Copies in the two directions use
#: separate DMA engines (dual-copy-engine GPUs); host work has its own lane.
ENGINE_FOR_KIND: Dict[StreamOpKind, str] = {
    StreamOpKind.H2D: "h2d",
    StreamOpKind.KERNEL: "compute",
    StreamOpKind.D2H: "d2h",
    StreamOpKind.HOST: "host",
}


@dataclass(frozen=True)
class StreamOp:
    """One scheduled operation: the timeline's unit of work *and* its event.

    A ``StreamOp`` doubles as the CUDA-event analogue: passing it in another
    submission's ``wait`` sequence makes that operation start no earlier than
    this one's :attr:`end_s`.
    """

    index: int
    kind: StreamOpKind
    name: str
    stream: str
    engine: str
    start_s: float
    duration_s: float
    #: Index of the operation whose completion determined this start time
    #: (stream predecessor, engine predecessor or awaited event); ``None``
    #: for operations that start at time zero.
    blocked_by: Optional[int] = None
    details: str = ""

    @property
    def end_s(self) -> float:
        """Completion time of the operation in seconds."""
        return self.start_s + self.duration_s


@dataclass
class Stream:
    """A named in-order queue of operations (the CUDA-stream analogue)."""

    name: str
    _last: Optional[StreamOp] = field(default=None, repr=False)

    @property
    def last_op(self) -> Optional[StreamOp]:
        """The most recently submitted operation, or ``None`` when empty."""
        return self._last

    @property
    def ready_s(self) -> float:
        """Earliest time the next operation on this stream may start."""
        return 0.0 if self._last is None else self._last.end_s


class StreamTimeline:
    """Schedules stream operations onto engines and computes the makespan.

    Parameters
    ----------
    dual_copy_engines:
        ``True`` (default) gives the device separate H2D and D2H DMA engines,
        so copies in opposite directions overlap (post-Fermi GPUs).  ``False``
        serialises all copies through one engine (a single-copy-engine part),
        while still overlapping them with kernels.
    """

    def __init__(self, dual_copy_engines: bool = True) -> None:
        self.dual_copy_engines = dual_copy_engines
        self._ops: List[StreamOp] = []
        self._streams: Dict[str, Stream] = {}
        self._engine_last: Dict[str, StreamOp] = {}

    # ------------------------------------------------------------------ #
    # Streams
    # ------------------------------------------------------------------ #
    def stream(self, name: str) -> Stream:
        """Get or create the stream called ``name``."""
        if not name:
            raise ValueError("a stream needs a non-empty name")
        if name not in self._streams:
            self._streams[name] = Stream(name=name)
        return self._streams[name]

    @property
    def streams(self) -> Tuple[str, ...]:
        """Names of every stream that has been created, in creation order."""
        return tuple(self._streams)

    def _engine_for(self, kind: StreamOpKind) -> str:
        engine = ENGINE_FOR_KIND[kind]
        if not self.dual_copy_engines and engine in ("h2d", "d2h"):
            return "copy"
        return engine

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        stream: "Stream | str",
        kind: StreamOpKind,
        duration_s: float,
        name: str = "",
        wait: Sequence[StreamOp] = (),
        details: str = "",
    ) -> StreamOp:
        """Schedule one operation and return it (usable as an event).

        The start time is the latest of: the completion of the previous
        operation on the same stream, the completion of the previous
        operation on the same engine (engines are FIFO, like hardware copy
        queues), and the completion of every operation in ``wait``.
        """
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        if not isinstance(kind, StreamOpKind):
            raise TypeError("kind must be a StreamOpKind")
        if isinstance(stream, str):
            stream = self.stream(stream)
        elif stream.name not in self._streams or self._streams[stream.name] is not stream:
            raise ValueError(
                f"stream {stream.name!r} does not belong to this timeline"
            )
        for event in wait:
            if (
                not isinstance(event, StreamOp)
                or event.index >= len(self._ops)
                or self._ops[event.index] is not event
            ):
                raise ValueError(
                    "wait events must be operations of this timeline"
                )
        engine = self._engine_for(kind)
        engine_last = self._engine_last.get(engine)

        start, blocker = 0.0, None
        candidates: List[Optional[StreamOp]] = [stream.last_op, engine_last]
        candidates.extend(wait)
        for prior in candidates:
            if prior is not None and prior.end_s > start:
                start, blocker = prior.end_s, prior.index
        op = StreamOp(
            index=len(self._ops),
            kind=kind,
            name=name or kind.value,
            stream=stream.name,
            engine=engine,
            start_s=start,
            duration_s=float(duration_s),
            blocked_by=blocker,
            details=details,
        )
        self._ops.append(op)
        stream._last = op
        self._engine_last[engine] = op
        return op

    # ------------------------------------------------------------------ #
    # Wiring from the transfer and timing engines
    # ------------------------------------------------------------------ #
    def add_transfer(
        self,
        stream: "Stream | str",
        record: TransferRecord,
        wait: Sequence[StreamOp] = (),
    ) -> StreamOp:
        """Schedule a copy from a :class:`TransferRecord`'s duration."""
        kind = (
            StreamOpKind.H2D
            if record.direction is TransferDirection.HOST_TO_DEVICE
            else StreamOpKind.D2H
        )
        return self.submit(
            stream,
            kind,
            record.duration_s,
            name=f"{kind.value} {record.label}".strip(),
            wait=wait,
            details=f"{record.words} words",
        )

    def add_kernel(
        self,
        stream: "Stream | str",
        timing: KernelTiming,
        wait: Sequence[StreamOp] = (),
    ) -> StreamOp:
        """Schedule a kernel launch from a :class:`KernelTiming`."""
        return self.submit(
            stream,
            StreamOpKind.KERNEL,
            timing.total_time_s,
            name=timing.kernel_name,
            wait=wait,
            details=f"{timing.plan.num_blocks} blocks",
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def ops(self) -> Tuple[StreamOp, ...]:
        """Every scheduled operation, in submission order."""
        return tuple(self._ops)

    @property
    def makespan_s(self) -> float:
        """End of the latest operation — the overlapped total time."""
        return max((op.end_s for op in self._ops), default=0.0)

    @property
    def serial_time_s(self) -> float:
        """What the same operations would cost back to back (no overlap)."""
        return sum(op.duration_s for op in self._ops)

    @property
    def overlap_saving_s(self) -> float:
        """Time recovered by overlap: serial sum minus makespan."""
        return self.serial_time_s - self.makespan_s

    def busy_time_s(self, engine: str) -> float:
        """Total busy seconds of one engine (``h2d``/``compute``/``d2h``/...)."""
        return sum(op.duration_s for op in self._ops if op.engine == engine)

    def engine_busy_times(self) -> Dict[str, float]:
        """Busy seconds per engine, for every engine that ran something."""
        out: Dict[str, float] = {}
        for op in self._ops:
            out[op.engine] = out.get(op.engine, 0.0) + op.duration_s
        return out

    def critical_path(self) -> List[StreamOp]:
        """Operations on the critical path, earliest first.

        Follows the :attr:`StreamOp.blocked_by` links back from the
        operation that finishes last; the makespan equals the end of the
        last element (and, when every link is tight, the sum of the path's
        durations plus any initial idle gap).
        """
        if not self._ops:
            return []
        op = max(self._ops, key=lambda o: o.end_s)
        path = [op]
        while op.blocked_by is not None:
            op = self._ops[op.blocked_by]
            path.append(op)
        path.reverse()
        return path

    def render(self) -> str:
        """Profiler-style rendering: one line per operation, engine-tagged."""
        lines = ["    start(ms)    dur(ms)  engine    stream      name"]
        for op in self._ops:
            lines.append(
                f"{op.start_s * 1e3:12.4f} {op.duration_s * 1e3:10.4f}  "
                f"{op.engine:<8}  {op.stream:<10}  {op.name}"
                + (f"  [{op.details}]" if op.details else "")
            )
        return "\n".join(lines)


def pipeline_makespan(stage_chunks: Iterable[Sequence[float]]) -> float:
    """Makespan of a chunked linear pipeline, without building a timeline.

    ``stage_chunks`` yields, per chunk, the durations of its successive
    stages (e.g. ``(h2d, kernel, d2h)``); every stage runs on its own
    dedicated engine in chunk order.  This is the analytic counterpart of
    submitting each chunk to its own stream of a :class:`StreamTimeline` —
    useful for closed-form checks against the cost model.
    """
    engine_free: List[float] = []
    makespan = 0.0
    for chunks in stage_chunks:
        ready = 0.0
        for stage_index, duration in enumerate(chunks):
            if duration < 0:
                raise ValueError("stage durations must be >= 0")
            while stage_index >= len(engine_free):
                engine_free.append(0.0)
            start = max(ready, engine_free[stage_index])
            ready = start + duration
            engine_free[stage_index] = ready
        makespan = max(makespan, ready)
    return makespan


def pipeline_makespan_grid(stage_chunks):
    """Vectorized twin of :func:`pipeline_makespan` over a sweep of pipelines.

    ``stage_chunks`` is a ``chunks × stages × sizes`` array: element
    ``[c, s, i]`` is the duration of chunk ``c``'s stage ``s`` in sweep point
    ``i``.  Returns the per-point makespans as a ``(sizes,)`` float array.
    The recurrence walks chunks and stages exactly like the scalar function
    (``max``/``+`` folds in the same order), so each column is bit-for-bit
    equal to ``pipeline_makespan`` on that column's chunk matrix.
    """
    grid = np.asarray(stage_chunks, dtype=float)
    if grid.ndim != 3:
        raise ValueError("stage_chunks must be a chunks × stages × sizes array")
    if np.any(grid < 0):
        raise ValueError("stage durations must be >= 0")
    num_chunks, num_stages, num_sizes = grid.shape
    engine_free = np.zeros((num_stages, num_sizes))
    makespan = np.zeros(num_sizes)
    for chunk in range(num_chunks):
        ready = np.zeros(num_sizes)
        for stage in range(num_stages):
            start = np.maximum(ready, engine_free[stage])
            ready = start + grid[chunk, stage]
            engine_free[stage] = ready
        makespan = np.maximum(makespan, ready)
    return makespan
