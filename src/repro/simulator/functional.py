"""Fully functional block-by-block execution of kernel programs.

The functional engine executes *every* block of a kernel through a
:class:`~repro.simulator.kernel.BlockContext`, so data movement really
happens and the complete set of block traces is available for timing.  It is
the reference executor used by the test suite; for paper-scale grids the
device switches to trace sampling (see
:class:`repro.simulator.device.GPUDevice`), whose correctness against this
engine is itself covered by tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.simulator.config import DeviceConfig
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import DeviceArray, GlobalMemory
from repro.simulator.trace import BlockTrace


class FunctionalEngine:
    """Executes kernels block by block with real data movement."""

    def __init__(self, config: DeviceConfig, global_memory: GlobalMemory) -> None:
        self.config = config
        self.global_memory = global_memory

    def _arrays_for(self, kernel: KernelProgram) -> Dict[str, DeviceArray]:
        return {name: self.global_memory.get(name) for name in kernel.array_names()}

    def execute_block(self, kernel: KernelProgram, block_index: int) -> BlockTrace:
        """Execute a single block and return its trace."""
        if not 0 <= block_index < kernel.grid_size():
            raise ValueError(
                f"block_index {block_index} outside grid of {kernel.grid_size()} blocks"
            )
        ctx = BlockContext(
            block_index=block_index,
            num_blocks=kernel.grid_size(),
            config=self.config,
            global_memory=self.global_memory,
            arrays=self._arrays_for(kernel),
        )
        kernel.run_block(ctx)
        return ctx.trace

    def execute_all(self, kernel: KernelProgram) -> List[BlockTrace]:
        """Execute every block of the kernel in block-index order."""
        kernel.validate(self.global_memory)
        return [
            self.execute_block(kernel, block_index)
            for block_index in range(kernel.grid_size())
        ]

    def execute_sampled(
        self, kernel: KernelProgram
    ) -> Tuple[List[Tuple[BlockTrace, int]], bool]:
        """Trace only the kernel's representative blocks.

        Returns ``(trace, multiplicity)`` pairs covering the grid and a flag
        saying whether the kernel's vectorised fallback must be applied to
        obtain functional results (always ``True`` for this method: sampled
        execution does not perform the work of the untraced blocks).
        """
        kernel.validate(self.global_memory)
        grid = kernel.grid_size()
        pairs: List[Tuple[BlockTrace, int]] = []
        covered = 0
        for block_index, multiplicity in kernel.representative_blocks():
            if not 0 <= block_index < grid:
                raise ValueError(
                    f"representative block {block_index} outside grid of {grid}"
                )
            trace = self.execute_block(kernel, block_index)
            pairs.append((trace, multiplicity))
            covered += multiplicity
        if covered != grid:
            raise ValueError(
                f"representative blocks of kernel {kernel.name!r} cover "
                f"{covered} blocks but the grid has {grid}"
            )
        return pairs, True
