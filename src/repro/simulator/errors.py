"""Exception types raised by the abstract-GPU simulator."""

from __future__ import annotations


class SimulatorError(RuntimeError):
    """Base class for all simulator errors."""


class OutOfGlobalMemoryError(SimulatorError):
    """Raised when a device allocation exceeds the global-memory capacity ``G``."""


class OutOfSharedMemoryError(SimulatorError):
    """Raised when a block's shared-memory allocations exceed the per-MP capacity ``M``."""


class InvalidAccessError(SimulatorError):
    """Raised on out-of-bounds or otherwise malformed memory accesses."""


class AllocationError(SimulatorError):
    """Raised on invalid allocation or deallocation requests (double free, unknown name, ...)."""


class LaunchError(SimulatorError):
    """Raised when a kernel launch is malformed (zero blocks, missing arrays, ...)."""
