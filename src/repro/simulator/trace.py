"""Execution traces and counters produced by the simulator.

Every block execution yields a :class:`BlockTrace` -- the ordered list of
warp-level instruction records together with aggregate counters.  Kernel
launches aggregate block traces into a :class:`KernelCounters`, and the
device keeps a :class:`Timeline` of launch / transfer / synchronisation
events so examples can print a CUDA-profiler-like account of a run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class InstructionKind(enum.Enum):
    """Warp-level instruction categories recognised by the timing engine."""

    COMPUTE = "compute"
    GLOBAL_READ = "global_read"
    GLOBAL_WRITE = "global_write"
    SHARED_READ = "shared_read"
    SHARED_WRITE = "shared_write"
    BARRIER = "barrier"


@dataclass(frozen=True)
class InstructionRecord:
    """One warp-level instruction executed by a block.

    Parameters
    ----------
    kind:
        The instruction category.
    operations:
        Warp-instructions issued (compute instructions may bundle several).
    transactions:
        Global-memory block transactions generated (global accesses only).
    words:
        Words moved by the instruction.
    conflict_degree:
        Shared-memory bank-conflict serialisation degree (1 = conflict free).
    label:
        Optional human-readable tag (e.g. the source array name).
    """

    kind: InstructionKind
    operations: float = 0.0
    transactions: int = 0
    words: int = 0
    conflict_degree: int = 1
    label: str = ""


@dataclass
class BlockTrace:
    """Ordered instruction trace and aggregate counters of one block."""

    block_index: int
    records: List[InstructionRecord] = field(default_factory=list)
    shared_words_used: int = 0

    def append(self, record: InstructionRecord) -> None:
        """Append one instruction record."""
        self.records.append(record)

    # ------------------------------------------------------------------ #
    # Aggregates consumed by the timing engine
    # ------------------------------------------------------------------ #
    @property
    def compute_operations(self) -> float:
        """Warp-instructions of arithmetic/control work."""
        return sum(r.operations for r in self.records
                   if r.kind is InstructionKind.COMPUTE)

    @property
    def shared_accesses(self) -> int:
        """Number of shared-memory access instructions."""
        return sum(1 for r in self.records
                   if r.kind in (InstructionKind.SHARED_READ,
                                 InstructionKind.SHARED_WRITE))

    @property
    def shared_conflict_cycles_factor(self) -> float:
        """Sum of conflict degrees over shared accesses (1 each if conflict free)."""
        return float(sum(r.conflict_degree for r in self.records
                         if r.kind in (InstructionKind.SHARED_READ,
                                       InstructionKind.SHARED_WRITE)))

    @property
    def global_transactions(self) -> int:
        """Global-memory block transactions issued by the block."""
        return sum(r.transactions for r in self.records
                   if r.kind in (InstructionKind.GLOBAL_READ,
                                 InstructionKind.GLOBAL_WRITE))

    @property
    def global_words(self) -> int:
        """Words moved to/from global memory by the block."""
        return sum(r.words for r in self.records
                   if r.kind in (InstructionKind.GLOBAL_READ,
                                 InstructionKind.GLOBAL_WRITE))

    @property
    def barriers(self) -> int:
        """Number of block-wide barriers executed."""
        return sum(1 for r in self.records if r.kind is InstructionKind.BARRIER)

    @property
    def has_bank_conflicts(self) -> bool:
        """Whether any shared access serialised over banks."""
        return any(
            r.conflict_degree > 1
            for r in self.records
            if r.kind in (InstructionKind.SHARED_READ, InstructionKind.SHARED_WRITE)
        )

    def counters(self) -> Dict[str, float]:
        """Aggregate counters as a plain dictionary."""
        return {
            "compute_operations": self.compute_operations,
            "shared_accesses": float(self.shared_accesses),
            "global_transactions": float(self.global_transactions),
            "global_words": float(self.global_words),
            "barriers": float(self.barriers),
            "instructions": float(len(self.records)),
            "shared_words_used": float(self.shared_words_used),
        }


@dataclass
class KernelCounters:
    """Aggregate counters of one kernel launch (all blocks)."""

    kernel_name: str
    num_blocks: int
    compute_operations: float = 0.0
    shared_accesses: float = 0.0
    global_transactions: float = 0.0
    global_words: float = 0.0
    barriers: float = 0.0
    bank_conflict_blocks: int = 0
    max_shared_words_per_block: int = 0

    @staticmethod
    def from_traces(
        kernel_name: str,
        traces_with_counts: Iterable[Tuple["BlockTrace", int]],
    ) -> "KernelCounters":
        """Aggregate (trace, multiplicity) pairs into kernel-level counters."""
        counters = KernelCounters(kernel_name=kernel_name, num_blocks=0)
        for trace, count in traces_with_counts:
            counters.num_blocks += count
            counters.compute_operations += trace.compute_operations * count
            counters.shared_accesses += trace.shared_accesses * count
            counters.global_transactions += trace.global_transactions * count
            counters.global_words += trace.global_words * count
            counters.barriers += trace.barriers * count
            if trace.has_bank_conflicts:
                counters.bank_conflict_blocks += count
            counters.max_shared_words_per_block = max(
                counters.max_shared_words_per_block, trace.shared_words_used
            )
        return counters


class EventKind(enum.Enum):
    """Timeline event categories."""

    TRANSFER_H2D = "transfer_h2d"
    TRANSFER_D2H = "transfer_d2h"
    KERNEL = "kernel"
    SYNC = "sync"


@dataclass(frozen=True)
class TimelineEvent:
    """One entry of the device timeline."""

    kind: EventKind
    name: str
    start_s: float
    duration_s: float
    details: str = ""

    @property
    def end_s(self) -> float:
        """End time of the event in seconds."""
        return self.start_s + self.duration_s


class Timeline:
    """Ordered record of everything the device did, with a running clock."""

    def __init__(self) -> None:
        self._events: List[TimelineEvent] = []
        self._clock_s = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock_s

    def record(self, kind: EventKind, name: str, duration_s: float,
               details: str = "") -> TimelineEvent:
        """Append an event of ``duration_s`` seconds starting at the current clock."""
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        event = TimelineEvent(
            kind=kind, name=name, start_s=self._clock_s,
            duration_s=duration_s, details=details,
        )
        self._events.append(event)
        self._clock_s += duration_s
        return event

    @property
    def events(self) -> Tuple[TimelineEvent, ...]:
        """All events in chronological order."""
        return tuple(self._events)

    def total_time(self, kind: Optional[EventKind] = None) -> float:
        """Sum of event durations, optionally restricted to one kind."""
        return sum(e.duration_s for e in self._events
                   if kind is None or e.kind is kind)

    def kernel_time(self) -> float:
        """Total time spent in kernel execution."""
        return self.total_time(EventKind.KERNEL)

    def transfer_time(self) -> float:
        """Total time spent in host↔device transfers (both directions)."""
        return (self.total_time(EventKind.TRANSFER_H2D)
                + self.total_time(EventKind.TRANSFER_D2H))

    def sync_time(self) -> float:
        """Total time spent in synchronisation overhead."""
        return self.total_time(EventKind.SYNC)

    def render(self) -> str:
        """Human-readable profiler-like rendering of the timeline."""
        lines = ["    start(ms)    dur(ms)  kind           name"]
        for event in self._events:
            lines.append(
                f"{event.start_s * 1e3:12.4f} {event.duration_s * 1e3:10.4f}  "
                f"{event.kind.value:<14} {event.name}"
                + (f"  [{event.details}]" if event.details else "")
            )
        return "\n".join(lines)
