"""The device façade: a CUDA-runtime-like front end over the simulator.

:class:`GPUDevice` exposes the handful of operations a host program performs
against a GPU — allocate / free device memory, copy data in and out, launch
kernels, synchronise — and maintains a timeline with simulated durations for
every one of them.  Examples and the experiment harness use this interface
exactly the way the paper's CUDA host code uses the CUDA runtime.

Execution strategy for kernel launches:

* grids up to ``config.functional_block_limit`` blocks are executed fully
  functionally (every block really runs, results land in device memory);
* larger grids are executed by tracing the kernel's representative blocks
  for timing and applying the kernel's vectorised NumPy fallback for the
  data results.  This keeps paper-scale sweeps (tens of millions of
  elements) tractable in pure Python while preserving the timing model's
  inputs (per-block instruction traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.transfer import TransferDirection
from repro.simulator.config import DeviceConfig
from repro.simulator.errors import LaunchError
from repro.simulator.functional import FunctionalEngine
from repro.simulator.kernel import KernelProgram
from repro.simulator.memory import DeviceArray, GlobalMemory, HostMemory
from repro.simulator.timing import KernelTiming, TimingEngine
from repro.simulator.trace import EventKind, Timeline
from repro.simulator.transfer_engine import TransferEngine, TransferRecord


@dataclass(frozen=True)
class LaunchRecord:
    """Summary of one kernel launch as seen by the host program."""

    kernel_name: str
    num_blocks: int
    timing: KernelTiming
    functional: bool

    @property
    def duration_s(self) -> float:
        """Total launch duration (device time + launch overhead)."""
        return self.timing.total_time_s


class GPUDevice:
    """A simulated GPU attached to a simulated host."""

    def __init__(self, config: Optional[DeviceConfig] = None) -> None:
        self.config = config or DeviceConfig.gtx650()
        self.host = HostMemory()
        self.global_memory = GlobalMemory(
            capacity_words=self.config.global_memory_words,
            words_per_block=self.config.words_per_block,
        )
        self.transfer_engine = TransferEngine(self.config)
        self.timing_engine = TimingEngine(self.config)
        self.functional_engine = FunctionalEngine(self.config, self.global_memory)
        self.timeline = Timeline()
        self.launches: List[LaunchRecord] = []

    # ------------------------------------------------------------------ #
    # Memory management
    # ------------------------------------------------------------------ #
    def allocate(self, name: str, length: int, dtype=np.int64) -> DeviceArray:
        """Allocate a device array of ``length`` words."""
        return self.global_memory.allocate(name, length, dtype=dtype)

    def free(self, name: str) -> None:
        """Free a device array."""
        self.global_memory.free(name)

    def array(self, name: str) -> DeviceArray:
        """Look up a device array by name."""
        return self.global_memory.get(name)

    # ------------------------------------------------------------------ #
    # Host <-> device transfers (the ``W`` operator)
    # ------------------------------------------------------------------ #
    def memcpy_htod(
        self, name: str, data: np.ndarray, pinned: bool = False
    ) -> TransferRecord:
        """Copy ``data`` into the device array ``name`` (allocating if needed)."""
        data = np.asarray(data)
        if name in self.global_memory:
            array = self.global_memory.get(name)
            if array.length != data.size:
                raise LaunchError(
                    f"device array {name!r} has {array.length} words but the host "
                    f"buffer has {data.size}"
                )
        else:
            array = self.allocate(name, data.size, dtype=data.dtype)
        array.data[:] = data.reshape(-1)
        record = self.transfer_engine.transfer(
            words=data.size,
            direction=TransferDirection.HOST_TO_DEVICE,
            pinned=pinned,
            label=name,
        )
        self.timeline.record(
            EventKind.TRANSFER_H2D, f"H2D {name}", record.duration_s,
            details=f"{record.words} words",
        )
        return record

    def memcpy_dtoh(self, name: str, pinned: bool = False) -> np.ndarray:
        """Copy the device array ``name`` back to the host and return it."""
        array = self.global_memory.get(name)
        record = self.transfer_engine.transfer(
            words=array.length,
            direction=TransferDirection.DEVICE_TO_HOST,
            pinned=pinned,
            label=name,
        )
        self.timeline.record(
            EventKind.TRANSFER_D2H, f"D2H {name}", record.duration_s,
            details=f"{record.words} words",
        )
        return array.to_host()

    def memcpy_dtoh_partial(
        self, name: str, count: int, pinned: bool = False
    ) -> np.ndarray:
        """Copy only the first ``count`` words of a device array to the host.

        Used by the reduction example, whose final answer is a single word of
        a much larger device buffer (the paper transfers only ``A[1]`` back).
        """
        array = self.global_memory.get(name)
        if not 0 < count <= array.length:
            raise LaunchError(
                f"cannot copy {count} words from device array {name!r} of "
                f"{array.length} words"
            )
        record = self.transfer_engine.transfer(
            words=count,
            direction=TransferDirection.DEVICE_TO_HOST,
            pinned=pinned,
            label=f"{name}[:{count}]",
        )
        self.timeline.record(
            EventKind.TRANSFER_D2H, f"D2H {name}[:{count}]", record.duration_s,
            details=f"{record.words} words",
        )
        return array.data[:count].copy()

    # ------------------------------------------------------------------ #
    # Kernel launches
    # ------------------------------------------------------------------ #
    def launch(self, kernel: KernelProgram, force_functional: Optional[bool] = None) -> LaunchRecord:
        """Launch a kernel and account for its execution time.

        ``force_functional`` overrides the automatic choice between full
        functional execution and trace sampling.
        """
        kernel.validate(self.global_memory)
        grid = kernel.grid_size()
        functional = (
            force_functional
            if force_functional is not None
            else grid <= self.config.functional_block_limit
        )
        if functional:
            traces = self.functional_engine.execute_all(kernel)
            pairs = [(trace, 1) for trace in traces]
        else:
            pairs, needs_fallback = self.functional_engine.execute_sampled(kernel)
            if needs_fallback:
                arrays = {
                    name: self.global_memory.get(name)
                    for name in kernel.array_names()
                }
                kernel.vectorised_result(arrays)
        timing = self.timing_engine.kernel_timing(kernel.name, pairs)
        record = LaunchRecord(
            kernel_name=kernel.name,
            num_blocks=grid,
            timing=timing,
            functional=functional,
        )
        self.launches.append(record)
        self.timeline.record(
            EventKind.KERNEL, kernel.name, record.duration_s,
            details=f"{grid} blocks, {timing.limiting_factor}-bound",
        )
        return record

    def synchronise(self, label: str = "round sync") -> float:
        """Account for the per-round synchronisation overhead ``σ``."""
        duration = self.config.sync_overhead_s
        self.timeline.record(EventKind.SYNC, label, duration)
        return duration

    # ------------------------------------------------------------------ #
    # Timing queries (the simulated analogue of CUDA events)
    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        """Total simulated wall-clock time of everything the device did."""
        return self.timeline.now

    @property
    def kernel_time_s(self) -> float:
        """Total simulated time spent executing kernels."""
        return self.timeline.kernel_time()

    @property
    def transfer_time_s(self) -> float:
        """Total simulated time spent in host↔device transfers."""
        return self.timeline.transfer_time()

    @property
    def sync_time_s(self) -> float:
        """Total simulated synchronisation overhead."""
        return self.timeline.sync_time()

    def reset_timers(self) -> None:
        """Discard the timeline and launch records (keep memory contents)."""
        self.timeline = Timeline()
        self.launches = []
        self.transfer_engine.records.clear()

    def profile(self) -> str:
        """Profiler-style rendering of the run so far."""
        header = (
            f"Device: {self.config.num_sms} SMs @ {self.config.clock_hz / 1e6:.0f} MHz, "
            f"warp {self.config.warp_width}, "
            f"{self.config.global_memory_words * 4 / (1 << 30):.1f} GiB global\n"
            f"Totals: {self.total_time_s * 1e3:.3f} ms "
            f"(kernel {self.kernel_time_s * 1e3:.3f} ms, "
            f"transfer {self.transfer_time_s * 1e3:.3f} ms, "
            f"sync {self.sync_time_s * 1e3:.3f} ms)\n"
        )
        return header + self.timeline.render()
