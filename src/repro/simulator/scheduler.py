"""Thread-block scheduling onto the simulated streaming multiprocessors.

The scheduler decides how many blocks of a kernel are resident per SM
(occupancy) and therefore how many *waves* of blocks the launch requires.
It uses exactly the same arithmetic as the GPU-cost function of the abstract
model (Expression 2) — ``ℓ = min(⌊M/m⌋, H)`` and ``⌈k / (k'·ℓ)⌉`` — so that
tests can verify the simulator and the cost model agree on occupancy even
though their *timing* models differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.occupancy import blocks_per_multiprocessor, wave_count
from repro.simulator.config import DeviceConfig
from repro.utils.validation import ensure_non_negative, ensure_positive_int


@dataclass(frozen=True)
class SchedulePlan:
    """Resident-block and wave structure of one kernel launch."""

    num_blocks: int
    blocks_per_sm: int
    num_sms: int
    waves: int
    shared_words_per_block: int

    @property
    def concurrent_blocks(self) -> int:
        """Blocks in flight device-wide during a full wave."""
        return self.blocks_per_sm * self.num_sms

    @property
    def blocks_in_last_wave(self) -> int:
        """Blocks executed by the final (possibly ragged) wave."""
        remainder = self.num_blocks - (self.waves - 1) * self.concurrent_blocks
        return remainder

    @property
    def occupancy(self) -> float:
        """Average fraction of block slots occupied across all waves."""
        return self.num_blocks / (self.waves * self.concurrent_blocks)


class BlockScheduler:
    """Maps kernel launches to :class:`SchedulePlan` objects."""

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config

    def plan(self, num_blocks: int, shared_words_per_block: int) -> SchedulePlan:
        """Compute the schedule of a launch of ``num_blocks`` blocks.

        ``shared_words_per_block`` limits residency exactly as in
        Expression (2): an SM hosts ``min(⌊M/m⌋, H)`` blocks.
        """
        ensure_positive_int(num_blocks, "num_blocks")
        ensure_non_negative(shared_words_per_block, "shared_words_per_block")
        blocks_per_sm = blocks_per_multiprocessor(
            shared_memory_capacity=self.config.shared_memory_words,
            shared_words_per_block=float(shared_words_per_block),
            hardware_block_limit=self.config.max_blocks_per_sm,
        )
        waves = wave_count(
            thread_blocks=num_blocks,
            physical_mps=self.config.num_sms,
            blocks_per_mp=blocks_per_sm,
        )
        return SchedulePlan(
            num_blocks=num_blocks,
            blocks_per_sm=blocks_per_sm,
            num_sms=self.config.num_sms,
            waves=waves,
            shared_words_per_block=int(shared_words_per_block),
        )

    def max_resident_blocks(self, shared_words_per_block: int) -> int:
        """Device-wide block residency for a given shared-memory footprint."""
        ensure_non_negative(shared_words_per_block, "shared_words_per_block")
        return self.config.num_sms * blocks_per_multiprocessor(
            shared_memory_capacity=self.config.shared_memory_words,
            shared_words_per_block=float(shared_words_per_block),
            hardware_block_limit=self.config.max_blocks_per_sm,
        )

    def waves_for(self, num_blocks: int, shared_words_per_block: int) -> int:
        """Convenience wrapper returning only the wave count."""
        return self.plan(num_blocks, shared_words_per_block).waves
