"""Batched (vectorized) simulation of whole sweeps — the ``SimBatch`` layer.

The scalar observation path runs the simulator once per input size: every
``observe`` call replays the host program against a fresh
:class:`~repro.simulator.device.GPUDevice`, paying per-size input
generation, host↔device data movement and per-event timeline accounting.
For a dense model-vs-observed sweep that cost dwarfs the (vectorized)
prediction side.

This module packs a sweep into *array programs*, the way
:class:`~repro.core.batch.MetricsBatch` did for the cost model:

1. **Probe** — :class:`ProbeDevice` runs the algorithm's *real* ``run``
   method once per size, but records symbolic operations (transfer word
   counts, per-launch trace aggregates, syncs) instead of timed events.
   Because the genuine host program executes — same allocations, same
   launch decisions, same representative-block traces — the recorded
   program is structurally identical to the scalar run's timeline.
2. **Pack** — programs with the same operation structure are grouped and
   their per-operation quantities stacked into operations × sizes arrays.
3. **Evaluate** — transfer durations come from
   :func:`~repro.simulator.transfer_engine.duration_grid`, kernel launches
   from :func:`~repro.simulator.timing.kernel_timing_grid`, and the
   timeline totals from ordered array accumulation, so every column is
   **bit-for-bit** equal to the scalar ``observe`` at that size (same
   ``ceil_div`` discipline, same float operand order).

Streamed and sharded sweeps follow the same pattern via
:class:`StreamPlan` / :class:`ShardPlan`: a per-size symbolic schedule
built by the algorithm's ``sim_stream_plan`` / ``sim_shard_plan`` hooks,
replayed here with ``np.maximum`` folds that mirror
:meth:`~repro.simulator.streams.StreamTimeline.submit` and the
:class:`~repro.simulator.device_pool.DevicePool` contention formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.prediction import SweepObservation
from repro.core.transfer import TransferDirection
from repro.simulator.config import DeviceConfig
from repro.simulator.device import GPUDevice
from repro.simulator.device_pool import contended_duration_grid
from repro.simulator.errors import LaunchError
from repro.simulator.kernel import KernelProgram
from repro.simulator.streams import ENGINE_FOR_KIND, StreamOpKind
from repro.simulator.timing import KernelTiming, kernel_timing_grid
from repro.simulator.trace import KernelCounters
from repro.simulator.transfer_engine import duration_grid


# ---------------------------------------------------------------------- #
# Symbolic operations recorded by the probe
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProbeTransfer:
    """One host↔device copy, reduced to what its duration depends on."""

    direction: TransferDirection
    words: int
    pinned: bool


@dataclass(frozen=True)
class ProbeKernel:
    """One kernel launch, reduced to its trace-weighted aggregates.

    The per-block aggregation (``KernelCounters.from_traces`` plus the
    multiplicity-weighted issue/latency sums) is order-sensitive float
    accumulation, so it happens scalarly at record time — exactly as the
    scalar :meth:`~repro.simulator.timing.TimingEngine.kernel_timing`
    performs it.  Everything downstream of these aggregates is elementwise
    and vectorizes without changing a bit.
    """

    name: str
    num_blocks: int
    total_issue_cycles: float
    total_latency_cycles: float
    global_words: float
    shared_words_per_block: int


@dataclass(frozen=True)
class ProbeSync:
    """One round synchronisation (constant ``σ`` duration)."""


def _op_tag(op) -> tuple:
    """Structural signature of one symbolic operation (grouping key)."""
    if isinstance(op, ProbeTransfer):
        return ("transfer", op.direction, op.pinned)
    if isinstance(op, ProbeKernel):
        return ("kernel",)
    return ("sync",)


class ProbeDevice(GPUDevice):
    """A :class:`GPUDevice` that records symbolic operations, not timings.

    The algorithm's real ``run`` executes against it — allocations land at
    the same global-memory offsets as on a scalar device (coalescing
    transaction counts depend on array base addresses), launch decisions
    follow the same functional-block-limit rule, and representative blocks
    are traced identically.  With ``data_dependent=False`` the probe skips
    host-buffer copies and vectorised data fallbacks: safe only for
    algorithms whose traces depend on indices, not input values (see
    ``GPUAlgorithm.sim_trace_data_dependent``).
    """

    def __init__(
        self,
        config: Optional[DeviceConfig] = None,
        data_dependent: bool = True,
    ) -> None:
        super().__init__(config)
        self.data_dependent = data_dependent
        self.ops: List[object] = []

    def memcpy_htod(self, name, data, pinned: bool = False):
        data = np.asarray(data)
        if name in self.global_memory:
            array = self.global_memory.get(name)
            if array.length != data.size:
                raise LaunchError(
                    f"device array {name!r} has {array.length} words but the "
                    f"host buffer has {data.size}"
                )
        else:
            array = self.allocate(name, data.size, dtype=data.dtype)
        if self.data_dependent:
            array.data[:] = data.reshape(-1)
        self.ops.append(
            ProbeTransfer(
                TransferDirection.HOST_TO_DEVICE, int(data.size), bool(pinned)
            )
        )
        return None

    def memcpy_dtoh(self, name, pinned: bool = False):
        array = self.global_memory.get(name)
        self.ops.append(
            ProbeTransfer(
                TransferDirection.DEVICE_TO_HOST, array.length, bool(pinned)
            )
        )
        # Value-faithful outputs are only needed on the data-dependent
        # path; otherwise skip the (potentially huge) host copy.
        if self.data_dependent:
            return array.to_host()
        return array.data[: array.length]

    def memcpy_dtoh_partial(self, name, count: int, pinned: bool = False):
        array = self.global_memory.get(name)
        if not 0 < count <= array.length:
            raise LaunchError(
                f"cannot copy {count} words from device array {name!r} of "
                f"{array.length} words"
            )
        self.ops.append(
            ProbeTransfer(
                TransferDirection.DEVICE_TO_HOST, int(count), bool(pinned)
            )
        )
        if self.data_dependent:
            return array.data[:count].copy()
        return array.data[:count]

    def launch(self, kernel: KernelProgram, force_functional: Optional[bool] = None):
        kernel.validate(self.global_memory)
        grid = kernel.grid_size()
        functional = (
            force_functional
            if force_functional is not None
            else grid <= self.config.functional_block_limit
        )
        if functional:
            traces = self.functional_engine.execute_all(kernel)
            pairs = [(trace, 1) for trace in traces]
        else:
            pairs, needs_fallback = self.functional_engine.execute_sampled(kernel)
            if needs_fallback and self.data_dependent:
                arrays = {
                    name: self.global_memory.get(name)
                    for name in kernel.array_names()
                }
                kernel.vectorised_result(arrays)
        counters = KernelCounters.from_traces(kernel.name, pairs)
        engine = self.timing_engine
        total_issue = sum(
            engine.block_issue_cycles(trace) * count for trace, count in pairs
        )
        total_latency = sum(
            engine.block_latency_cycles(trace) * count for trace, count in pairs
        )
        self.ops.append(
            ProbeKernel(
                name=kernel.name,
                num_blocks=counters.num_blocks,
                total_issue_cycles=total_issue,
                total_latency_cycles=total_latency,
                global_words=counters.global_words,
                shared_words_per_block=counters.max_shared_words_per_block,
            )
        )
        return None

    def synchronise(self, label: str = "round sync") -> float:
        self.ops.append(ProbeSync())
        return self.config.sync_overhead_s


# ---------------------------------------------------------------------- #
# Batched observe_sweep
# ---------------------------------------------------------------------- #
def _evaluate_programs(
    programs: Sequence[Sequence[object]], config: DeviceConfig
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate recorded programs into (total, kernel, transfer) arrays.

    Programs with the same structure are evaluated together: one
    :func:`kernel_timing_grid` call over a launches × sizes grid, one
    :func:`duration_grid` call per transfer slot, and ordered sequential
    array adds replicating the scalar timeline's clock accumulation.
    """
    count = len(programs)
    totals = np.zeros(count)
    kernels = np.zeros(count)
    transfers = np.zeros(count)
    groups: Dict[tuple, List[int]] = {}
    for index, ops in enumerate(programs):
        signature = tuple(_op_tag(op) for op in ops)
        groups.setdefault(signature, []).append(index)

    for signature, columns in groups.items():
        width = len(columns)
        slot_durations: List[Optional[np.ndarray]] = [None] * len(signature)

        kernel_slots = [i for i, tag in enumerate(signature) if tag[0] == "kernel"]
        if kernel_slots:
            def stack(attr):
                return np.array(
                    [
                        [getattr(programs[c][s], attr) for c in columns]
                        for s in kernel_slots
                    ]
                )

            grid = kernel_timing_grid(
                config,
                stack("num_blocks"),
                stack("total_issue_cycles"),
                stack("total_latency_cycles"),
                stack("global_words"),
                stack("shared_words_per_block"),
            )
            launch_times = grid.total_time_s
            for row, slot in enumerate(kernel_slots):
                slot_durations[slot] = launch_times[row]

        for slot, tag in enumerate(signature):
            if tag[0] == "transfer":
                words = np.array(
                    [programs[c][slot].words for c in columns], dtype=np.int64
                )
                slot_durations[slot] = duration_grid(
                    config, words, tag[1], pinned=tag[2]
                )
            elif tag[0] == "sync":
                slot_durations[slot] = np.full(width, config.sync_overhead_s)

        total = np.zeros(width)
        kernel_time = np.zeros(width)
        h2d_time = np.zeros(width)
        d2h_time = np.zeros(width)
        for slot, tag in enumerate(signature):
            row = slot_durations[slot]
            total = total + row
            if tag[0] == "kernel":
                kernel_time = kernel_time + row
            elif tag[0] == "transfer":
                if tag[1] is TransferDirection.HOST_TO_DEVICE:
                    h2d_time = h2d_time + row
                else:
                    d2h_time = d2h_time + row
        totals[columns] = total
        kernels[columns] = kernel_time
        transfers[columns] = h2d_time + d2h_time
    return totals, kernels, transfers


def simulate_sweep(
    algorithm,
    sizes: Sequence[int],
    config: Optional[DeviceConfig] = None,
    seed: int = 0,
) -> SweepObservation:
    """Batched twin of ``GPUAlgorithm.observe_sweep`` (bit-for-bit parity).

    Probes the algorithm's real ``run`` once per size, then evaluates all
    recorded programs in a handful of NumPy passes.  Requires a parity test
    in ``tests/test_sim_batch.py`` (enforced by the ``SIM001`` lint rule).
    """
    device_config = config or DeviceConfig.gtx650()
    data_dependent = getattr(algorithm, "sim_trace_data_dependent", True)
    programs: List[List[object]] = []
    for n in sizes:
        device = ProbeDevice(device_config, data_dependent=data_dependent)
        algorithm.run(device, algorithm.sim_inputs(int(n), seed=seed))
        programs.append(device.ops)
    totals, kernels, transfers = _evaluate_programs(programs, device_config)
    return SweepObservation(
        algorithm=algorithm.name,
        sizes=[int(n) for n in sizes],
        total_times=[float(t) for t in totals],
        kernel_times=[float(t) for t in kernels],
        transfer_times=[float(t) for t in transfers],
    )


# ---------------------------------------------------------------------- #
# Streamed sweeps
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamPlanOp:
    """One operation of a symbolic stream schedule."""

    kind: StreamOpKind
    stream: str
    words: int = 0
    pinned: bool = False
    duration_s: float = 0.0
    wait: Tuple[int, ...] = ()


class StreamPlan:
    """Symbolic :class:`~repro.simulator.streams.StreamTimeline` schedule.

    Built per size by an algorithm's ``sim_stream_plan`` hook: the stream /
    engine / wait structure is explicit, transfer durations stay symbolic
    (word counts, vectorized at replay), kernel and host durations are
    concrete floats.  Plans from different sizes that share a structure are
    replayed together as array programs.
    """

    def __init__(self, dual_copy_engines: bool = True) -> None:
        self.dual_copy_engines = dual_copy_engines
        self.ops: List[StreamPlanOp] = []

    def _add(self, op: StreamPlanOp) -> int:
        self.ops.append(op)
        return len(self.ops) - 1

    def h2d(self, stream: str, words: int, pinned: bool = False,
            wait: Sequence[int] = ()) -> int:
        """Queue an H2D copy of ``words`` words; returns its op index."""
        return self._add(StreamPlanOp(
            StreamOpKind.H2D, stream, words=int(words), pinned=bool(pinned),
            wait=tuple(wait),
        ))

    def d2h(self, stream: str, words: int, pinned: bool = False,
            wait: Sequence[int] = ()) -> int:
        """Queue a D2H copy of ``words`` words; returns its op index."""
        return self._add(StreamPlanOp(
            StreamOpKind.D2H, stream, words=int(words), pinned=bool(pinned),
            wait=tuple(wait),
        ))

    def kernel(self, stream: str, timing: KernelTiming,
               wait: Sequence[int] = ()) -> int:
        """Queue a kernel launch with a concrete timing; returns its index."""
        return self._add(StreamPlanOp(
            StreamOpKind.KERNEL, stream, duration_s=float(timing.total_time_s),
            wait=tuple(wait),
        ))

    def host(self, stream: str, duration_s: float,
             wait: Sequence[int] = ()) -> int:
        """Queue host-side work (e.g. a sync); returns its op index."""
        return self._add(StreamPlanOp(
            StreamOpKind.HOST, stream, duration_s=float(duration_s),
            wait=tuple(wait),
        ))

    def signature(self) -> tuple:
        """Structural grouping key (streams, engines, waits — not sizes)."""
        return (self.dual_copy_engines,) + tuple(
            (op.kind, op.stream, op.pinned, op.wait) for op in self.ops
        )

    def engine_for(self, kind: StreamOpKind) -> str:
        engine = ENGINE_FOR_KIND[kind]
        if not self.dual_copy_engines and engine in ("h2d", "d2h"):
            return "copy"
        return engine


def replay_stream_plans(
    plans: Sequence[StreamPlan], config: DeviceConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay symbolic stream plans; returns (makespans, serial_times).

    The start-time recurrence is the array form of
    :meth:`StreamTimeline.submit`: per-stream and per-engine last-end
    vectors folded with ``np.maximum`` plus awaited op ends, so each column
    equals the scalar timeline's makespan / serial sum bit for bit.
    """
    makespans = np.zeros(len(plans))
    serials = np.zeros(len(plans))
    groups: Dict[tuple, List[int]] = {}
    for index, plan in enumerate(plans):
        groups.setdefault(plan.signature(), []).append(index)

    for columns in groups.values():
        width = len(columns)
        template = plans[columns[0]]
        zero = np.zeros(width)
        stream_last: Dict[str, np.ndarray] = {}
        engine_last: Dict[str, np.ndarray] = {}
        ends: List[np.ndarray] = []
        serial = np.zeros(width)
        makespan = np.zeros(width)
        for slot, op in enumerate(template.ops):
            if op.kind in (StreamOpKind.H2D, StreamOpKind.D2H):
                words = np.array(
                    [plans[c].ops[slot].words for c in columns], dtype=np.int64
                )
                direction = (
                    TransferDirection.HOST_TO_DEVICE
                    if op.kind is StreamOpKind.H2D
                    else TransferDirection.DEVICE_TO_HOST
                )
                duration = duration_grid(
                    config, words, direction, pinned=op.pinned
                )
            else:
                duration = np.array(
                    [plans[c].ops[slot].duration_s for c in columns]
                )
            engine = template.engine_for(op.kind)
            start = np.maximum(
                stream_last.get(op.stream, zero),
                engine_last.get(engine, zero),
            )
            for waited in op.wait:
                start = np.maximum(start, ends[waited])
            end = start + duration
            ends.append(end)
            stream_last[op.stream] = end
            engine_last[engine] = end
            serial = serial + duration
            makespan = np.maximum(makespan, end)
        makespans[columns] = makespan
        serials[columns] = serial
    return makespans, serials


@dataclass(frozen=True)
class StreamedSweepObservation:
    """Overlapped makespan / serial sum of a streamed run, per sweep size."""

    algorithm: str
    sizes: List[int]
    makespans_s: List[float]
    serial_times_s: List[float]

    @property
    def overlap_speedups(self) -> List[float]:
        """Serial-over-overlapped ratio per size (1.0 = no benefit)."""
        return [
            1.0 if makespan == 0 else serial / makespan
            for makespan, serial in zip(self.makespans_s, self.serial_times_s)
        ]


def simulate_streamed_sweep(
    algorithm,
    sizes: Sequence[int],
    config: Optional[DeviceConfig] = None,
    chunks: int = 2,
    pinned: bool = False,
) -> StreamedSweepObservation:
    """Batched twin of per-size ``observe_streamed`` (bit-for-bit parity)."""
    device_config = config or DeviceConfig.gtx650()
    plans = [
        algorithm.sim_stream_plan(
            int(n), device_config, chunks=chunks, pinned=pinned
        )
        for n in sizes
    ]
    makespans, serials = replay_stream_plans(plans, device_config)
    return StreamedSweepObservation(
        algorithm=algorithm.name,
        sizes=[int(n) for n in sizes],
        makespans_s=[float(t) for t in makespans],
        serial_times_s=[float(t) for t in serials],
    )


# ---------------------------------------------------------------------- #
# Sharded sweeps
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardPlanOp:
    """One operation of a symbolic device-pool schedule."""

    device: int
    kind: StreamOpKind
    words: int = 0
    pinned: bool = False
    duration_s: float = 0.0


class ShardPlan:
    """Symbolic :class:`~repro.simulator.device_pool.DevicePool` schedule.

    Each device's operations run back to back on its own timeline (the
    pool submits everything to one stream per device); transfers carry word
    counts and the per-device link stretch is applied at replay with
    :func:`contended_duration_grid`, while the serial baseline accumulates
    the *uncontended* durations exactly like ``DevicePool.add_transfer``.
    """

    def __init__(self, stretches: Sequence[float]) -> None:
        self.stretches = tuple(float(s) for s in stretches)
        self.ops: List[ShardPlanOp] = []

    def _add(self, op: ShardPlanOp) -> int:
        if not 0 <= op.device < len(self.stretches):
            raise IndexError(
                f"device index {op.device} outside pool of "
                f"{len(self.stretches)}"
            )
        self.ops.append(op)
        return len(self.ops) - 1

    def h2d(self, device: int, words: int, pinned: bool = False) -> int:
        """Queue an H2D copy on one device; returns its op index."""
        return self._add(ShardPlanOp(
            device, StreamOpKind.H2D, words=int(words), pinned=bool(pinned),
        ))

    def d2h(self, device: int, words: int, pinned: bool = False) -> int:
        """Queue a D2H copy on one device; returns its op index."""
        return self._add(ShardPlanOp(
            device, StreamOpKind.D2H, words=int(words), pinned=bool(pinned),
        ))

    def kernel(self, device: int, timing: KernelTiming) -> int:
        """Queue a kernel launch on one device; returns its op index."""
        return self._add(ShardPlanOp(
            device, StreamOpKind.KERNEL, duration_s=float(timing.total_time_s),
        ))

    def host(self, device: int, duration_s: float) -> int:
        """Queue host-side work (e.g. a sync) on one device."""
        return self._add(ShardPlanOp(
            device, StreamOpKind.HOST, duration_s=float(duration_s),
        ))

    def signature(self) -> tuple:
        """Structural grouping key (device layout, stretches — not sizes)."""
        return (self.stretches,) + tuple(
            (op.device, op.kind, op.pinned) for op in self.ops
        )


def replay_shard_plans(
    plans: Sequence[ShardPlan], config: DeviceConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay symbolic shard plans; returns (makespans, serial_times).

    Per-device completion is an ordered sequential sum (all of a device's
    operations share one stream, so nothing overlaps within a device); the
    straggler fold and the uncontended serial accumulation mirror
    ``DevicePool.makespan_s`` / ``serial_time_s`` bit for bit.
    """
    makespans = np.zeros(len(plans))
    serials = np.zeros(len(plans))
    groups: Dict[tuple, List[int]] = {}
    for index, plan in enumerate(plans):
        groups.setdefault(plan.signature(), []).append(index)

    for columns in groups.values():
        width = len(columns)
        template = plans[columns[0]]
        num_devices = len(template.stretches)
        device_end = [np.zeros(width) for _ in range(num_devices)]
        serial = np.zeros(width)
        for slot, op in enumerate(template.ops):
            if op.kind in (StreamOpKind.H2D, StreamOpKind.D2H):
                words = np.array(
                    [plans[c].ops[slot].words for c in columns], dtype=np.int64
                )
                direction = (
                    TransferDirection.HOST_TO_DEVICE
                    if op.kind is StreamOpKind.H2D
                    else TransferDirection.DEVICE_TO_HOST
                )
                base = duration_grid(config, words, direction, pinned=op.pinned)
                duration = contended_duration_grid(
                    config, base, template.stretches[op.device]
                )
                serial = serial + base
            else:
                duration = np.array(
                    [plans[c].ops[slot].duration_s for c in columns]
                )
                serial = serial + duration
            device_end[op.device] = device_end[op.device] + duration
        makespan = np.zeros(width)
        for ends in device_end:
            makespan = np.maximum(makespan, ends)
        makespans[columns] = makespan
        serials[columns] = serial
    return makespans, serials


@dataclass(frozen=True)
class ShardedSweepObservation:
    """Straggler makespan / serial sum of a sharded run, per sweep size."""

    algorithm: str
    sizes: List[int]
    makespans_s: List[float]
    serial_times_s: List[float]
    device_count: int

    @property
    def sharding_speedups(self) -> List[float]:
        """Serial-over-sharded ratio per size (1.0 = no benefit)."""
        return [
            1.0 if makespan == 0 else serial / makespan
            for makespan, serial in zip(self.makespans_s, self.serial_times_s)
        ]


def simulate_sharded_sweep(
    algorithm,
    sizes: Sequence[int],
    config: Optional[DeviceConfig] = None,
    devices: int = 2,
    contention: float = 0.0,
    pinned: bool = False,
    topology=None,
) -> ShardedSweepObservation:
    """Batched twin of per-size ``observe_sharded`` (bit-for-bit parity)."""
    device_config = config or DeviceConfig.gtx650()
    plans = [
        algorithm.sim_shard_plan(
            int(n), device_config, devices=devices, contention=contention,
            pinned=pinned, topology=topology,
        )
        for n in sizes
    ]
    makespans, serials = replay_shard_plans(plans, device_config)
    device_count = len(plans[0].stretches) if plans else devices
    return ShardedSweepObservation(
        algorithm=algorithm.name,
        sizes=[int(n) for n in sizes],
        makespans_s=[float(t) for t in makespans],
        serial_times_s=[float(t) for t in serials],
        device_count=device_count,
    )
