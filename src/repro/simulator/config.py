"""Configuration of the abstract-GPU simulator.

The simulator stands in for the paper's physical testbed (an nVidia GTX 650
attached to an AMD A10-5800K host).  Its configuration therefore describes a
*physical* device — number of streaming multiprocessors, clock, memory
latency and bandwidth, host-link characteristics — rather than the abstract
machine of :mod:`repro.core.machine`.  The two are linked: the simulator's
warp width, shared-memory capacity and global-memory capacity are exactly
the ``b``, ``M`` and ``G`` of the abstract machine it realises.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping

from repro.core.machine import ATGPUMachine
from repro.utils.validation import (
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
    reject_unknown_fields,
)

#: Bytes per simulator word (the paper's kernels operate on 4-byte integers).
WORD_BYTES = 4


@dataclass(frozen=True)
class DeviceConfig:
    """Physical characteristics of the simulated GPU and its host link.

    Parameters
    ----------
    num_sms:
        Number of streaming multiprocessors (the ``k'`` of Expression 2).
    warp_width:
        Threads per warp; one thread block of the abstract model is a single
        warp (the paper's model has ``b`` cores per MP executing in lockstep).
    clock_hz:
        Core clock in Hz.
    shared_memory_words:
        Shared-memory words per SM (``M``).
    global_memory_words:
        Global-memory words on the device (``G``).
    max_blocks_per_sm:
        Hardware limit ``H`` on thread blocks resident on one SM.
    issue_cycles:
        Cycles to issue one warp-wide arithmetic/logic instruction.
    shared_latency_cycles:
        Cycles for a bank-conflict-free shared-memory access (≈4 on real HW).
    global_latency_cycles:
        Cycles for one global-memory block transaction (400–800 on real HW).
    global_bandwidth_words_per_cycle:
        Device-memory streaming throughput in words per core cycle; caps the
        aggregate rate of global transactions when many blocks are in flight.
    memory_parallelism:
        Number of outstanding global transactions a single warp can overlap
        (memory-level parallelism); divides the exposed latency per block.
    barrier_cycles:
        Cycles consumed by a block-wide barrier (``__syncthreads``).
    kernel_launch_overhead_s:
        Host-side time to launch one kernel (driver + queueing), in seconds.
    sync_overhead_s:
        Host-side time for the per-round synchronisation tasks the paper
        folds into ``σ`` (device reset, queue clearing, ...), in seconds.
    transfer_latency_s:
        Fixed per-transaction host↔device transfer overhead (the ``α`` the
        simulator realises), in seconds.
    h2d_bandwidth_bytes_per_s / d2h_bandwidth_bytes_per_s:
        Effective pageable host→device / device→host bandwidths.
    pinned_speedup:
        Multiplier applied to both link bandwidths when a transfer uses
        pinned (page-locked) host memory.
    functional_block_limit:
        Largest grid size the device will execute fully functionally; larger
        grids are executed by tracing representative blocks and applying the
        kernel's vectorised fallback for data results.
    """

    num_sms: int = 2
    warp_width: int = 32
    clock_hz: float = 1.058e9
    shared_memory_words: int = 48 * 1024 // WORD_BYTES
    global_memory_words: int = (1 << 30) // WORD_BYTES
    max_blocks_per_sm: int = 16
    issue_cycles: float = 1.0
    shared_latency_cycles: float = 4.0
    global_latency_cycles: float = 600.0
    global_bandwidth_words_per_cycle: float = 6.8
    memory_parallelism: float = 4.0
    barrier_cycles: float = 16.0
    kernel_launch_overhead_s: float = 8.0e-6
    sync_overhead_s: float = 1.2e-5
    transfer_latency_s: float = 1.5e-5
    h2d_bandwidth_bytes_per_s: float = 3.2e9
    d2h_bandwidth_bytes_per_s: float = 3.0e9
    pinned_speedup: float = 1.8
    functional_block_limit: int = 4096

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_sms, "num_sms")
        ensure_positive_int(self.warp_width, "warp_width")
        ensure_positive(self.clock_hz, "clock_hz")
        ensure_positive_int(self.shared_memory_words, "shared_memory_words")
        ensure_positive_int(self.global_memory_words, "global_memory_words")
        ensure_positive_int(self.max_blocks_per_sm, "max_blocks_per_sm")
        ensure_positive(self.issue_cycles, "issue_cycles")
        ensure_non_negative(self.shared_latency_cycles, "shared_latency_cycles")
        ensure_non_negative(self.global_latency_cycles, "global_latency_cycles")
        ensure_positive(
            self.global_bandwidth_words_per_cycle, "global_bandwidth_words_per_cycle"
        )
        ensure_positive(self.memory_parallelism, "memory_parallelism")
        ensure_non_negative(self.barrier_cycles, "barrier_cycles")
        ensure_non_negative(self.kernel_launch_overhead_s, "kernel_launch_overhead_s")
        ensure_non_negative(self.sync_overhead_s, "sync_overhead_s")
        ensure_non_negative(self.transfer_latency_s, "transfer_latency_s")
        ensure_positive(self.h2d_bandwidth_bytes_per_s, "h2d_bandwidth_bytes_per_s")
        ensure_positive(self.d2h_bandwidth_bytes_per_s, "d2h_bandwidth_bytes_per_s")
        ensure_positive(self.pinned_speedup, "pinned_speedup")
        ensure_positive_int(self.functional_block_limit, "functional_block_limit")

    # ------------------------------------------------------------------ #
    # Links to the abstract model
    # ------------------------------------------------------------------ #
    @property
    def words_per_block(self) -> int:
        """Words per global-memory block (equal to the warp width ``b``)."""
        return self.warp_width

    def abstract_machine(self) -> ATGPUMachine:
        """The ``ATGPU(p, b, M, G)`` instance this device realises."""
        return ATGPUMachine(
            p=self.num_sms * self.warp_width,
            b=self.warp_width,
            M=self.shared_memory_words,
            G=self.global_memory_words,
        )

    def with_overrides(self, **kwargs) -> "DeviceConfig":
        """Copy of the configuration with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Serialisation and hashing (used by experiment specs and caches)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """All configuration fields as a plain JSON-serialisable dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        reject_unknown_fields(
            "DeviceConfig", data, (f.name for f in fields(cls))
        )
        return cls(**dict(data))

    def config_hash(self) -> str:
        """Stable short hash of the configuration.

        Derived from the canonical JSON of every field, so two configs hash
        equal exactly when all their fields are equal — across processes and
        interpreter runs (unlike the built-in ``hash``).  Convenience for
        external stores keying on a device; experiment specs embed the full
        config dict in their own hash instead of calling this.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------ #
    # Named configurations
    # ------------------------------------------------------------------ #
    @classmethod
    def gtx650(cls) -> "DeviceConfig":
        """The paper's testbed GPU (default construction)."""
        return cls()

    @classmethod
    def gtx980(cls) -> "DeviceConfig":
        """A 16-SM Maxwell part on a PCIe 3.0 link."""
        return cls(
            num_sms=16,
            clock_hz=1.216e9,
            shared_memory_words=96 * 1024 // WORD_BYTES,
            global_memory_words=(4 << 30) // WORD_BYTES,
            max_blocks_per_sm=32,
            global_latency_cycles=400.0,
            global_bandwidth_words_per_cycle=46.0,
            memory_parallelism=6.0,
            transfer_latency_s=1.0e-5,
            h2d_bandwidth_bytes_per_s=11.0e9,
            d2h_bandwidth_bytes_per_s=10.5e9,
        )

    @classmethod
    def tesla_k40(cls) -> "DeviceConfig":
        """A 15-SM Kepler datacentre part on a PCIe 3.0 link."""
        return cls(
            num_sms=15,
            clock_hz=0.745e9,
            shared_memory_words=48 * 1024 // WORD_BYTES,
            global_memory_words=(12 << 30) // WORD_BYTES,
            max_blocks_per_sm=16,
            global_latency_cycles=500.0,
            global_bandwidth_words_per_cycle=96.0,
            memory_parallelism=6.0,
            transfer_latency_s=1.1e-5,
            h2d_bandwidth_bytes_per_s=10.0e9,
            d2h_bandwidth_bytes_per_s=9.5e9,
        )

    @classmethod
    def tiny_test_device(cls) -> "DeviceConfig":
        """A small device used by the test suite (fully functional execution)."""
        return cls(
            num_sms=2,
            warp_width=4,
            clock_hz=1.0e6,
            shared_memory_words=256,
            global_memory_words=4096,
            max_blocks_per_sm=4,
            global_latency_cycles=20.0,
            global_bandwidth_words_per_cycle=2.0,
            memory_parallelism=2.0,
            kernel_launch_overhead_s=1.0e-6,
            sync_overhead_s=1.0e-6,
            transfer_latency_s=2.0e-6,
            h2d_bandwidth_bytes_per_s=1.0e8,
            d2h_bandwidth_bytes_per_s=1.0e8,
            functional_block_limit=1 << 16,
        )
