"""Memory subsystems of the abstract-GPU simulator.

Three memory spaces mirror the abstract machine:

* :class:`HostMemory` -- named NumPy buffers living on the host.
* :class:`GlobalMemory` -- the device's off-chip memory, bounded by ``G``
  words and divided into blocks of ``b`` words; provides coalescing
  analysis (the number of block transactions needed to satisfy a warp's set
  of addresses).
* :class:`SharedMemory` -- per-MP on-chip memory of ``M`` words split into
  ``b`` banks; provides bank-conflict analysis (the serialisation degree of
  a warp access).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.simulator.errors import (
    AllocationError,
    InvalidAccessError,
    OutOfGlobalMemoryError,
    OutOfSharedMemoryError,
)


def coalesced_transactions(addresses: np.ndarray, words_per_block: int) -> int:
    """Number of global-memory block transactions for a warp's addresses.

    The model coalesces accesses that fall in the same ``b``-word block into
    a single transaction; addresses spread over ``l`` blocks need ``l``
    transactions (Section II, "Execution of Algorithms on the Model").
    """
    if words_per_block <= 0:
        raise ValueError("words_per_block must be positive")
    addrs = np.asarray(addresses)
    if addrs.size == 0:
        return 0
    if np.any(addrs < 0):
        raise InvalidAccessError("negative global-memory address in warp access")
    blocks = np.unique(addrs // words_per_block)
    return int(blocks.size)


def bank_conflict_degree(addresses: np.ndarray, num_banks: int) -> int:
    """Serialisation degree of a shared-memory warp access.

    Returns the maximum number of *distinct words* that map to the same bank
    (1 means conflict-free).  Accesses by several lanes to the *same* word
    are broadcast and do not conflict, matching CUDA semantics.
    """
    if num_banks <= 0:
        raise ValueError("num_banks must be positive")
    addrs = np.asarray(addresses)
    if addrs.size == 0:
        return 1
    if np.any(addrs < 0):
        raise InvalidAccessError("negative shared-memory address in warp access")
    distinct = np.unique(addrs)
    banks = distinct % num_banks
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max()) if counts.size else 1


class HostMemory:
    """Named host-side buffers (the CPU side of the model)."""

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def store(self, name: str, data: np.ndarray) -> np.ndarray:
        """Store (a copy of) ``data`` under ``name`` and return the copy."""
        array = np.array(data, copy=True)
        self._buffers[name] = array
        return array

    def load(self, name: str) -> np.ndarray:
        """Return the buffer stored under ``name``."""
        try:
            return self._buffers[name]
        except KeyError as exc:
            raise AllocationError(f"no host buffer named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def names(self) -> Tuple[str, ...]:
        """Names of all host buffers."""
        return tuple(self._buffers)


@dataclass
class DeviceArray:
    """A named allocation in global memory.

    The array owns its NumPy backing store (so element dtype is preserved)
    and records its base word offset inside global memory, which is what the
    coalescing analysis uses to map element indices to memory blocks.
    """

    name: str
    offset: int
    length: int
    data: np.ndarray = field(repr=False)

    def __len__(self) -> int:
        return self.length

    def global_addresses(self, indices: np.ndarray) -> np.ndarray:
        """Map element indices to absolute global-memory word addresses."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.length):
            raise InvalidAccessError(
                f"indices out of range for device array {self.name!r} "
                f"(length {self.length})"
            )
        return self.offset + idx

    def read(self, indices: np.ndarray) -> np.ndarray:
        """Gather elements at ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        self.global_addresses(idx)  # bounds check
        return self.data[idx]

    def write(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Scatter ``values`` to ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        self.global_addresses(idx)  # bounds check
        self.data[idx] = values

    def to_host(self) -> np.ndarray:
        """Copy of the whole array contents."""
        return self.data.copy()


class GlobalMemory:
    """Bounded device global memory with a first-fit allocator.

    Capacity is expressed in words (``G`` of the abstract machine).  The
    allocator is deliberately simple -- first fit over a sorted free list --
    because allocation performance is irrelevant here; what matters is the
    capacity bound and stable word offsets for coalescing analysis.
    """

    def __init__(self, capacity_words: int, words_per_block: int) -> None:
        if capacity_words <= 0:
            raise ValueError("capacity_words must be positive")
        if words_per_block <= 0:
            raise ValueError("words_per_block must be positive")
        self.capacity_words = int(capacity_words)
        self.words_per_block = int(words_per_block)
        self._arrays: Dict[str, DeviceArray] = {}
        # Free list of (offset, length) holes, kept sorted by offset.
        self._free: List[Tuple[int, int]] = [(0, self.capacity_words)]

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    @property
    def used_words(self) -> int:
        """Words currently allocated."""
        return self.capacity_words - sum(length for _, length in self._free)

    @property
    def free_words(self) -> int:
        """Words currently free."""
        return self.capacity_words - self.used_words

    def allocate(
        self, name: str, length: int, dtype: np.dtype = np.int64, fill: Optional[float] = None
    ) -> DeviceArray:
        """Allocate ``length`` words under ``name``.

        Raises :class:`OutOfGlobalMemoryError` if no hole is large enough --
        this is the simulator-side realisation of the paper's global-memory
        limit ``G``.
        """
        if name in self._arrays:
            raise AllocationError(f"device array {name!r} already allocated")
        if length <= 0:
            raise AllocationError(f"allocation length must be positive, got {length}")
        for i, (offset, hole) in enumerate(self._free):
            if hole >= length:
                data = np.zeros(length, dtype=dtype)
                if fill is not None:
                    data[:] = fill
                array = DeviceArray(name=name, offset=offset, length=length, data=data)
                remaining = hole - length
                if remaining:
                    self._free[i] = (offset + length, remaining)
                else:
                    del self._free[i]
                self._arrays[name] = array
                return array
        raise OutOfGlobalMemoryError(
            f"cannot allocate {length} words for {name!r}: "
            f"{self.free_words} of {self.capacity_words} words free "
            "(global memory limit G exceeded)"
        )

    def free(self, name: str) -> None:
        """Release the allocation named ``name`` and coalesce the free list."""
        try:
            array = self._arrays.pop(name)
        except KeyError as exc:
            raise AllocationError(f"no device array named {name!r}") from exc
        self._free.append((array.offset, array.length))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for offset, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((offset, length))
        self._free = merged

    def get(self, name: str) -> DeviceArray:
        """Look up an allocation by name."""
        try:
            return self._arrays[name]
        except KeyError as exc:
            raise AllocationError(f"no device array named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def names(self) -> Tuple[str, ...]:
        """Names of live allocations."""
        return tuple(self._arrays)

    # ------------------------------------------------------------------ #
    # Access analysis
    # ------------------------------------------------------------------ #
    def transactions_for(self, array: DeviceArray, indices: np.ndarray) -> int:
        """Block transactions needed for a warp access to ``array[indices]``."""
        addresses = array.global_addresses(np.asarray(indices, dtype=np.int64))
        return coalesced_transactions(addresses, self.words_per_block)


class SharedMemory:
    """Per-MP shared memory of ``M`` words in ``b`` banks.

    One instance is created per thread block (the abstract model runs one
    warp-wide block per MP at a time, so block-lifetime allocation is
    exactly per-MP usage).  Allocations are bump-pointer; exceeding ``M``
    raises :class:`OutOfSharedMemoryError`, mirroring the AGPU/ATGPU rule
    that such algorithms cannot run on the model.
    """

    def __init__(self, capacity_words: int, num_banks: int) -> None:
        if capacity_words <= 0:
            raise ValueError("capacity_words must be positive")
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.capacity_words = int(capacity_words)
        self.num_banks = int(num_banks)
        self._arrays: Dict[str, Tuple[int, np.ndarray]] = {}
        self._next_offset = 0

    @property
    def used_words(self) -> int:
        """Words currently allocated in this block's shared memory."""
        return self._next_offset

    def allocate(self, name: str, length: int, dtype: np.dtype = np.float64) -> np.ndarray:
        """Allocate ``length`` shared words under ``name``."""
        if name in self._arrays:
            raise AllocationError(f"shared array {name!r} already allocated")
        if length <= 0:
            raise AllocationError(f"allocation length must be positive, got {length}")
        if self._next_offset + length > self.capacity_words:
            raise OutOfSharedMemoryError(
                f"shared allocation of {length} words for {name!r} exceeds the "
                f"per-MP capacity of {self.capacity_words} words "
                f"({self._next_offset} already in use)"
            )
        data = np.zeros(length, dtype=dtype)
        self._arrays[name] = (self._next_offset, data)
        self._next_offset += length
        return data

    def get(self, name: str) -> np.ndarray:
        """Return the backing array of a shared allocation."""
        try:
            return self._arrays[name][1]
        except KeyError as exc:
            raise AllocationError(f"no shared array named {name!r}") from exc

    def offset_of(self, name: str) -> int:
        """Word offset of a shared allocation inside the MP's shared memory."""
        try:
            return self._arrays[name][0]
        except KeyError as exc:
            raise AllocationError(f"no shared array named {name!r}") from exc

    def conflict_degree(self, name: str, indices: np.ndarray) -> int:
        """Bank-conflict serialisation degree of a warp access to ``name[indices]``."""
        offset, data = self._arrays.get(name, (None, None))
        if data is None:
            raise AllocationError(f"no shared array named {name!r}")
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= data.size):
            raise InvalidAccessError(
                f"indices out of range for shared array {name!r} (length {data.size})"
            )
        return bank_conflict_degree(offset + idx, self.num_banks)
