"""The host↔device transfer engine of the simulator.

Models a PCIe-like link: every transfer pays a fixed per-transaction latency
(driver call, DMA setup, page pinning) plus a streaming time proportional to
the byte count at the link's effective bandwidth.  Pageable and pinned host
memory use different effective bandwidths, reflecting the measurements of
Fujii et al. and Van Werkhoven et al. cited by the paper.

This is the *mechanistic* counterpart of the abstract model's Boyer cost
``T = n̂·α + n·β``: the simulator produces transfer times from link
parameters, and the calibration machinery in :mod:`repro.core.calibration`
can recover ``α`` and ``β`` from those times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numbers

import numpy as np

from repro.core.transfer import TransferDirection
from repro.simulator.config import WORD_BYTES, DeviceConfig
from repro.utils.validation import ensure_non_negative


def validate_word_count(words, name: str = "words") -> int:
    """Validate a transfer word count and return it as an ``int``.

    Transfers move whole words; a fractional count would make the stored
    record (integer words) disagree with a duration computed from the raw
    value, so anything non-integral is rejected rather than truncated.
    Integral floats (e.g. ``4.0`` from size arithmetic) are accepted.
    """
    if isinstance(words, bool) or not isinstance(words, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(words).__name__}")
    as_float = float(words)
    if as_float != int(as_float):
        raise ValueError(
            f"{name} must be a whole number of words, got {words!r}"
        )
    ensure_non_negative(as_float, name)
    return int(as_float)


def duration_grid(
    config: DeviceConfig,
    words,
    direction: TransferDirection,
    pinned: bool = False,
):
    """Vectorized twin of :meth:`TransferEngine.duration` over word arrays.

    ``words`` is an integer array of per-size word counts; the result is a
    float array of durations with the same shape.  Each element follows the
    scalar path exactly: zero-word transfers are free markers, everything
    else pays ``transfer_latency_s`` plus streaming time at the direction's
    (optionally pinned-scaled) bandwidth.  ``int64 → float64`` conversion and
    the ``words * WORD_BYTES / bandwidth`` operand order match the scalar
    expression, so the durations are bit-for-bit identical.
    """
    counts = np.asarray(words)
    if not np.issubdtype(counts.dtype, np.integer):
        as_float = np.asarray(counts, dtype=float)
        if np.any(as_float != np.floor(as_float)):
            raise ValueError("words must be whole numbers of words")
        counts = as_float.astype(np.int64)
    if np.any(counts < 0):
        raise ValueError("words must be non-negative")
    if direction is TransferDirection.HOST_TO_DEVICE:
        bandwidth = config.h2d_bandwidth_bytes_per_s
    elif direction is TransferDirection.DEVICE_TO_HOST:
        bandwidth = config.d2h_bandwidth_bytes_per_s
    else:  # pragma: no cover - defensive
        raise TypeError("direction must be a TransferDirection")
    if pinned:
        bandwidth *= config.pinned_speedup
    streaming = counts * WORD_BYTES / bandwidth
    return np.where(counts == 0, 0.0, config.transfer_latency_s + streaming)


@dataclass(frozen=True)
class TransferRecord:
    """One completed host↔device transfer."""

    direction: TransferDirection
    words: int
    duration_s: float
    pinned: bool
    label: str = ""

    @property
    def bytes(self) -> int:
        """Bytes moved by the transfer."""
        return self.words * WORD_BYTES

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Achieved bandwidth including the fixed overhead."""
        if self.duration_s == 0:
            return float("inf")
        return self.bytes / self.duration_s


@dataclass
class TransferEngine:
    """Computes transfer durations and accumulates transfer statistics."""

    config: DeviceConfig
    records: List[TransferRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Timing model
    # ------------------------------------------------------------------ #
    def duration(
        self, words: int, direction: TransferDirection, pinned: bool = False
    ) -> float:
        """Duration in seconds of a transfer of ``words`` whole words.

        A zero-word transfer is a free marker — no DMA is set up and no
        latency is paid — matching the cost model's zero-word-event
        semantics (:class:`repro.core.transfer.TransferEvent`), so the
        simulator and the Boyer model agree operation for operation.
        """
        words = validate_word_count(words)
        if words == 0:
            return 0.0
        if direction is TransferDirection.HOST_TO_DEVICE:
            bandwidth = self.config.h2d_bandwidth_bytes_per_s
        elif direction is TransferDirection.DEVICE_TO_HOST:
            bandwidth = self.config.d2h_bandwidth_bytes_per_s
        else:  # pragma: no cover - defensive
            raise TypeError("direction must be a TransferDirection")
        if pinned:
            bandwidth *= self.config.pinned_speedup
        streaming = words * WORD_BYTES / bandwidth
        return self.config.transfer_latency_s + streaming

    def transfer(
        self,
        words: int,
        direction: TransferDirection,
        pinned: bool = False,
        label: str = "",
    ) -> TransferRecord:
        """Perform (account for) a transfer and append it to the record list.

        ``words`` must be a whole number (see :func:`validate_word_count`):
        the record stores an integer count, so the duration is computed from
        the same validated value to keep the recorded
        :attr:`TransferRecord.effective_bandwidth_bytes_per_s` and
        :meth:`total_words` consistent with the timing.
        """
        words = validate_word_count(words)
        duration = self.duration(words, direction, pinned=pinned)
        record = TransferRecord(
            direction=direction,
            words=words,
            duration_s=duration,
            pinned=pinned,
            label=label,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def total_time(self) -> float:
        """Total seconds spent transferring (both directions)."""
        return sum(r.duration_s for r in self.records)

    def total_words(self, direction: TransferDirection = None) -> int:
        """Total words moved, optionally restricted to one direction."""
        return sum(
            r.words for r in self.records
            if direction is None or r.direction is direction
        )

    def transaction_count(self, direction: TransferDirection = None) -> int:
        """Number of transfer transactions performed.

        Zero-word records are free markers, not transactions (matching
        :class:`repro.core.transfer.TransferEvent` and
        :class:`~repro.core.transfer.TransferPlan`), so they are excluded.
        """
        return sum(
            1 for r in self.records
            if r.words > 0 and (direction is None or r.direction is direction)
        )

    def implied_boyer_parameters(self) -> Tuple[float, float]:
        """The ``(α, β)`` this engine realises for pageable host→device copies.

        ``α`` is the configured per-transaction latency; ``β`` is the
        per-word streaming time at the pageable host→device bandwidth.  This
        is what a user should plug into :class:`repro.core.cost.CostParameters`
        to have the cost model and the simulator agree on transfer behaviour.
        """
        alpha = self.config.transfer_latency_s
        beta = WORD_BYTES / self.config.h2d_bandwidth_bytes_per_s
        return alpha, beta
