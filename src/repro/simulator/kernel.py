"""Kernel programs and the warp-level block execution context.

A :class:`KernelProgram` describes one kernel launch of the abstract model:
a grid of warp-wide thread blocks, each executing the same
:meth:`KernelProgram.run_block` body in lockstep on ``b`` lanes.  The body
manipulates data exclusively through a :class:`BlockContext`, which

* performs the actual data movement (so functional execution produces real
  results),
* records an :class:`~repro.simulator.trace.BlockTrace` of warp-level
  instructions (global/shared accesses with their coalescing / bank-conflict
  behaviour, compute instructions, barriers) for the timing engine, and
* enforces the shared-memory capacity limit ``M``.

Kernels whose grids are too large to execute block-by-block in pure Python
may additionally provide :meth:`KernelProgram.vectorised_result`, a NumPy
implementation of the same semantics used by the device to fill in the
functional results when it falls back to trace-sampling (see
:class:`repro.simulator.device.GPUDevice`).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.config import DeviceConfig
from repro.simulator.errors import LaunchError
from repro.simulator.memory import (
    DeviceArray,
    GlobalMemory,
    SharedMemory,
    bank_conflict_degree,
    coalesced_transactions,
)
from repro.simulator.trace import BlockTrace, InstructionKind, InstructionRecord


class BlockContext:
    """Execution context of one warp-wide thread block.

    All methods operate at warp granularity: index arguments are arrays with
    one entry per active lane (shorter arrays simply mean fewer active
    lanes, e.g. a ragged final block).
    """

    def __init__(
        self,
        block_index: int,
        num_blocks: int,
        config: DeviceConfig,
        global_memory: GlobalMemory,
        arrays: Dict[str, DeviceArray],
    ) -> None:
        self.block_index = block_index
        self.num_blocks = num_blocks
        self.config = config
        self._global_memory = global_memory
        self._arrays = arrays
        self._shared = SharedMemory(
            capacity_words=config.shared_memory_words,
            num_banks=config.warp_width,
        )
        self.trace = BlockTrace(block_index=block_index)

    # ------------------------------------------------------------------ #
    # Lane helpers
    # ------------------------------------------------------------------ #
    @property
    def warp_width(self) -> int:
        """Number of lanes (cores) in the block."""
        return self.config.warp_width

    @property
    def lanes(self) -> np.ndarray:
        """Lane indices ``0 .. b-1`` (the ``j`` of ``c_{i,j}`` in the paper)."""
        return np.arange(self.config.warp_width, dtype=np.int64)

    def global_thread_ids(self) -> np.ndarray:
        """Global thread indices ``block_index * b + lane``."""
        return self.block_index * self.config.warp_width + self.lanes

    # ------------------------------------------------------------------ #
    # Device array lookup
    # ------------------------------------------------------------------ #
    def array(self, name: str) -> DeviceArray:
        """Look up a kernel-argument device array by name."""
        try:
            return self._arrays[name]
        except KeyError as exc:
            raise LaunchError(
                f"kernel block referenced unknown device array {name!r}; "
                f"available arrays: {sorted(self._arrays)}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Global memory (the ``⇐`` operator)
    # ------------------------------------------------------------------ #
    def global_read(self, name: str, indices: np.ndarray) -> np.ndarray:
        """Warp-wide read of ``name[indices]`` from global memory."""
        array = self.array(name)
        idx = np.asarray(indices, dtype=np.int64)
        transactions = self._global_memory.transactions_for(array, idx)
        self.trace.append(InstructionRecord(
            kind=InstructionKind.GLOBAL_READ,
            transactions=transactions,
            words=int(idx.size),
            label=name,
        ))
        return array.read(idx)

    def global_write(self, name: str, indices: np.ndarray, values: np.ndarray) -> None:
        """Warp-wide write of ``values`` to ``name[indices]`` in global memory."""
        array = self.array(name)
        idx = np.asarray(indices, dtype=np.int64)
        transactions = self._global_memory.transactions_for(array, idx)
        self.trace.append(InstructionRecord(
            kind=InstructionKind.GLOBAL_WRITE,
            transactions=transactions,
            words=int(idx.size),
            label=name,
        ))
        array.write(idx, values)

    # ------------------------------------------------------------------ #
    # Shared memory (the ``←`` operator)
    # ------------------------------------------------------------------ #
    def shared_alloc(self, name: str, length: int, dtype: np.dtype = np.float64) -> np.ndarray:
        """Allocate a per-block shared array of ``length`` words."""
        data = self._shared.allocate(name, length, dtype=dtype)
        self.trace.shared_words_used = self._shared.used_words
        return data

    def shared_read(self, name: str, indices: np.ndarray) -> np.ndarray:
        """Warp-wide read from a shared array."""
        idx = np.asarray(indices, dtype=np.int64)
        degree = self._shared.conflict_degree(name, idx)
        self.trace.append(InstructionRecord(
            kind=InstructionKind.SHARED_READ,
            words=int(idx.size),
            conflict_degree=degree,
            label=name,
        ))
        return self._shared.get(name)[idx]

    def shared_write(self, name: str, indices: np.ndarray, values: np.ndarray) -> None:
        """Warp-wide write to a shared array."""
        idx = np.asarray(indices, dtype=np.int64)
        degree = self._shared.conflict_degree(name, idx)
        self.trace.append(InstructionRecord(
            kind=InstructionKind.SHARED_WRITE,
            words=int(idx.size),
            conflict_degree=degree,
            label=name,
        ))
        self._shared.get(name)[idx] = values

    # ------------------------------------------------------------------ #
    # Compute, divergence and synchronisation
    # ------------------------------------------------------------------ #
    def compute(self, operations: float = 1.0, label: str = "") -> None:
        """Charge ``operations`` warp-wide arithmetic/control instructions."""
        if operations < 0:
            raise ValueError("operations must be >= 0")
        self.trace.append(InstructionRecord(
            kind=InstructionKind.COMPUTE, operations=float(operations), label=label,
        ))

    def diverge(self, path_operations: Sequence[float], label: str = "divergent branch") -> None:
        """Charge a divergent branch: *all* paths are executed (Section II).

        ``path_operations`` gives the warp-instruction count of each branch
        path; the charge is their sum, reflecting the model's rule that when
        execution paths diverge every path is executed by the lockstep warp.
        """
        total = float(sum(path_operations))
        if total < 0:
            raise ValueError("path operation counts must be >= 0")
        self.compute(total, label=label)

    def barrier(self) -> None:
        """Block-wide barrier (warps of the block synchronise)."""
        self.trace.append(InstructionRecord(kind=InstructionKind.BARRIER))

    @property
    def shared_words_used(self) -> int:
        """Shared-memory words currently allocated by this block."""
        return self._shared.used_words


class KernelProgram(abc.ABC):
    """One kernel launch of the abstract model.

    Subclasses describe a concrete kernel: its grid size, the device arrays
    it expects, its per-block body, and (optionally) a vectorised NumPy
    fallback for large grids.
    """

    #: Human-readable kernel name, used in timelines and reports.
    name: str = "kernel"

    @abc.abstractmethod
    def grid_size(self) -> int:
        """Number of thread blocks launched."""

    @abc.abstractmethod
    def array_names(self) -> Tuple[str, ...]:
        """Names of the device arrays the kernel body references."""

    @abc.abstractmethod
    def run_block(self, ctx: BlockContext) -> None:
        """Execute one block's work through ``ctx`` (lockstep warp semantics)."""

    # ------------------------------------------------------------------ #
    # Optional hooks
    # ------------------------------------------------------------------ #
    def shared_words_per_block(self) -> int:
        """Shared-memory words each block allocates (for occupancy).

        The default traces nothing and returns 0; kernels that allocate
        shared memory should override (or rely on the traced value, which the
        device uses when available).
        """
        return 0

    def representative_blocks(self) -> Sequence[Tuple[int, int]]:
        """Blocks to trace when the grid is too large for full execution.

        Returns ``(block_index, multiplicity)`` pairs covering the whole
        grid.  The default assumes a structurally uniform grid and traces the
        first and last blocks (the last block may be ragged).
        """
        grid = self.grid_size()
        if grid <= 2:
            return [(i, 1) for i in range(grid)]
        return [(0, grid - 1), (grid - 1, 1)]

    def vectorised_result(self, arrays: Dict[str, DeviceArray]) -> None:
        """Apply the kernel's semantics to the device arrays with NumPy.

        Used by the device when it skips full functional execution for very
        large grids.  The default raises, forcing small-grid execution.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} provides no vectorised fallback; "
            "reduce the grid size or raise functional_block_limit"
        )

    def validate(self, global_memory: GlobalMemory) -> None:
        """Check the launch is well-formed against the device's global memory."""
        if self.grid_size() <= 0:
            raise LaunchError(f"kernel {self.name!r} launched with an empty grid")
        missing = [n for n in self.array_names() if n not in global_memory]
        if missing:
            raise LaunchError(
                f"kernel {self.name!r} requires device arrays {missing} "
                "which are not allocated"
            )
