"""A pool of simulated devices sharing one host interconnect.

:class:`DevicePool` is the simulator counterpart of
:class:`repro.core.sharding.ShardedCostModel`: it instantiates one
:class:`~repro.simulator.streams.StreamTimeline` per device — each with its
own copy and compute engines, so devices proceed concurrently — over a
single host link whose transfer parameters come from one shared
:class:`~repro.simulator.transfer_engine.TransferEngine`.

Interconnect contention is modelled the same way the analytic model prices
it: a ``contention`` factor in ``[0, 1]`` stretches the *streaming* portion
of every transfer by ``1 + contention·(P - 1)`` (the fixed DMA-setup latency
is per-device and does not stretch).  With equal shards this charge equals
the model's interpolation between fully parallel per-device links
(``contention=0``) and one fully serialised shared link (``contention=1``).

The pool's **makespan** is the completion time of the slowest device
(straggler), to be compared against :attr:`serial_time_s`, the back-to-back
cost of the very same operations on one device.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.topology import Topology, contention_stretch
from repro.core.transfer import TransferDirection
from repro.simulator.config import DeviceConfig
from repro.simulator.streams import Stream, StreamOp, StreamOpKind, StreamTimeline
from repro.simulator.timing import KernelTiming
from repro.simulator.transfer_engine import TransferEngine, TransferRecord
from repro.utils.validation import ensure_in_range, ensure_positive_int


def contended_duration_grid(config: DeviceConfig, base_durations, stretch: float):
    """Vectorized twin of :meth:`DevicePool.transfer_duration` over durations.

    Takes the *uncontended* per-size durations (from
    :func:`~repro.simulator.transfer_engine.duration_grid`) and one device's
    link stretch, and applies the pool's contention formula elementwise:
    zero-duration markers stay free, everything else keeps its fixed DMA
    latency and stretches only the streaming portion.  Same float operand
    order as the scalar method, so results are bit-for-bit equal.
    """
    base = np.asarray(base_durations, dtype=float)
    if stretch == 1.0:
        return base
    streaming = base - config.transfer_latency_s
    return np.where(
        base == 0.0,
        base,
        config.transfer_latency_s + streaming * stretch,
    )


class DevicePool:
    """``P`` stream timelines over one (or, with a topology, several) host links.

    Parameters
    ----------
    devices:
        Number of simulated devices in the pool.  Optional when
        ``topology`` is given (it then defaults to the topology's device
        count; both may be passed if they agree).
    config:
        The per-device configuration (all devices are identical); defaults
        to the GTX-650-like device.
    contention:
        Interconnect-contention factor in ``[0, 1]`` (see module docs).
        Ignored when ``topology`` is given — each device then stretches by
        its *own socket's* host-link contention over the devices sharing
        that socket.
    topology:
        Optional :class:`~repro.core.topology.Topology`.  Devices on a
        socket with ``n`` peers and host-link contention ``c`` stretch
        their streaming time by :func:`~repro.core.topology.contention_stretch`
        ``(n, c)``; devices on different sockets do not contend with each
        other, so heterogeneous fleets get per-device link stretch from
        the same description the analytic model prices.
    """

    def __init__(
        self,
        devices: Optional[int] = None,
        config: Optional[DeviceConfig] = None,
        contention: float = 0.0,
        topology: Optional[Topology] = None,
    ) -> None:
        if topology is not None:
            if not isinstance(topology, Topology):
                raise TypeError(
                    "topology must be a Topology, got "
                    f"{type(topology).__name__}"
                )
            if devices is not None and devices != topology.num_devices:
                raise ValueError(
                    f"devices={devices} disagrees with the topology's "
                    f"{topology.num_devices} devices"
                )
            devices = topology.num_devices
        elif devices is None:
            raise ValueError("a device pool needs devices or a topology")
        self.num_devices = ensure_positive_int(devices, "devices")
        self.config = config or DeviceConfig.gtx650()
        self.contention = ensure_in_range(contention, "contention", 0.0, 1.0)
        self.topology = topology
        if topology is None:
            stretch = contention_stretch(self.num_devices, self.contention)
            self._stretches: Tuple[float, ...] = (
                stretch,
            ) * self.num_devices
        else:
            stretches = []
            for device in topology.devices:
                link = topology.host_link(device.socket)
                peers = len(topology.devices_on_socket(device.socket))
                stretches.append(
                    contention_stretch(peers, link.contention)
                )
            self._stretches = tuple(stretches)
        self.transfer_engine = TransferEngine(self.config)
        self.timelines: List[StreamTimeline] = [
            StreamTimeline() for _ in range(self.num_devices)
        ]
        self._serial_time_s = 0.0

    # ------------------------------------------------------------------ #
    # Link model
    # ------------------------------------------------------------------ #
    @property
    def link_stretch(self) -> float:
        """Streaming-time multiplier, ``1 + c·(P-1)``, worst link first.

        Without a topology every device shares one link so this is *the*
        stretch; with one it is the most-contended socket's (use
        :meth:`device_stretch` for a specific device).
        """
        return max(self._stretches)

    def device_stretch(self, device: int) -> float:
        """Streaming-time multiplier on one device's host link."""
        if not 0 <= device < self.num_devices:
            raise IndexError(
                f"device index {device} outside pool of {self.num_devices}"
            )
        return self._stretches[device]

    def transfer_duration(
        self,
        words: int,
        direction: TransferDirection,
        pinned: bool = False,
        device: Optional[int] = None,
    ) -> float:
        """Seconds one device spends moving ``words`` words over its link.

        ``device`` selects the per-device stretch under a topology; when
        omitted the pool-wide (worst-link) stretch applies, which matches
        the pre-topology behaviour for homogeneous pools.
        """
        base = self.transfer_engine.duration(words, direction, pinned=pinned)
        stretch = (
            self.link_stretch
            if device is None
            else self.device_stretch(device)
        )
        if base == 0.0 or stretch == 1.0:
            return base
        streaming = base - self.config.transfer_latency_s
        return self.config.transfer_latency_s + streaming * stretch

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def timeline(self, device: int) -> StreamTimeline:
        """The stream timeline of one device (0-indexed)."""
        if not 0 <= device < self.num_devices:
            raise IndexError(
                f"device index {device} outside pool of {self.num_devices}"
            )
        return self.timelines[device]

    def add_transfer(
        self,
        device: int,
        words: int,
        direction: TransferDirection,
        stream: "Stream | str" = "main",
        pinned: bool = False,
        label: str = "",
        wait: Sequence[StreamOp] = (),
    ) -> StreamOp:
        """Schedule a (possibly contended) copy on one device's timeline.

        The transfer is also appended to the pool's shared
        :class:`TransferEngine` record list with its *stretched* duration, so
        link statistics reflect what the pool actually charged.
        """
        timeline = self.timeline(device)
        self._serial_time_s += self.transfer_engine.duration(
            words, direction, pinned=pinned
        )
        duration = self.transfer_duration(
            words, direction, pinned=pinned, device=device
        )
        record = TransferRecord(
            direction=direction,
            words=int(words),
            duration_s=duration,
            pinned=pinned,
            label=label,
        )
        self.transfer_engine.records.append(record)
        kind = (
            StreamOpKind.H2D
            if direction is TransferDirection.HOST_TO_DEVICE
            else StreamOpKind.D2H
        )
        return timeline.submit(
            stream,
            kind,
            duration,
            name=f"{kind.value} {label}".strip(),
            wait=wait,
            details=f"{int(words)} words",
        )

    def add_kernel(
        self,
        device: int,
        timing: KernelTiming,
        stream: "Stream | str" = "main",
        wait: Sequence[StreamOp] = (),
    ) -> StreamOp:
        """Schedule a kernel launch on one device's timeline."""
        timeline = self.timeline(device)
        self._serial_time_s += timing.total_time_s
        return timeline.add_kernel(stream, timing, wait=wait)

    def add_host(
        self,
        device: int,
        duration_s: float,
        name: str = "host",
        stream: "Stream | str" = "main",
        wait: Sequence[StreamOp] = (),
    ) -> StreamOp:
        """Schedule host-side work (e.g. a sync) on one device's timeline."""
        timeline = self.timeline(device)
        self._serial_time_s += float(duration_s)
        return timeline.submit(
            stream, StreamOpKind.HOST, duration_s, name=name, wait=wait
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def makespan_s(self) -> float:
        """Completion time of the slowest device — the pool's total time."""
        return max(t.makespan_s for t in self.timelines)

    def device_makespans(self) -> Tuple[float, ...]:
        """Per-device completion times (the spread shows the imbalance)."""
        return tuple(t.makespan_s for t in self.timelines)

    @property
    def straggler(self) -> int:
        """Index of the device finishing last."""
        spans = self.device_makespans()
        return spans.index(max(spans))

    @property
    def serial_time_s(self) -> float:
        """The same operations executed back to back on one device.

        A single device has the link to itself, so transfers count at their
        *uncontended* durations here (the stretched durations are what the
        pool's timelines were charged); comparing against :attr:`makespan_s`
        therefore prices sharding and contention together, matching
        :meth:`repro.core.sharding.ShardedCostModel.scaling_speedup`.  Only
        operations submitted through the pool's own ``add_*`` methods are
        counted.
        """
        return self._serial_time_s

    @property
    def sharding_speedup(self) -> float:
        """Serial-over-pool time ratio (1.0 = no benefit from sharding)."""
        if self.makespan_s == 0:
            return 1.0
        return self.serial_time_s / self.makespan_s

    def engine_busy_times(self) -> Dict[str, float]:
        """Busy seconds per engine, summed across devices."""
        out: Dict[str, float] = {}
        for timeline in self.timelines:
            for engine, busy in timeline.engine_busy_times().items():
                out[engine] = out.get(engine, 0.0) + busy
        return out

    def render(self) -> str:
        """Profiler-style rendering: one section per device."""
        if self.topology is None:
            header = (
                f"Pool: {self.num_devices} devices, contention "
                f"{self.contention:g} (link stretch {self.link_stretch:g}x), "
                f"makespan {self.makespan_s * 1e3:.4f} ms"
            )
        else:
            header = (
                f"Pool: {self.num_devices} devices over "
                f"{len(self.topology.sockets)} socket(s) (worst link "
                f"stretch {self.link_stretch:g}x), "
                f"makespan {self.makespan_s * 1e3:.4f} ms"
            )
        sections = [header]
        for index, timeline in enumerate(self.timelines):
            sections.append(
                f"-- device {index} "
                f"(makespan {timeline.makespan_s * 1e3:.4f} ms)"
            )
            sections.append(timeline.render())
        return "\n".join(sections)
