"""An executable simulator of the abstract GPU (the paper's testbed substitute).

The simulator realises the ATGPU architecture as a machine that actually
runs kernels: warp-lockstep thread blocks, banked shared memory with
bank-conflict detection, block-granular global memory with coalescing, a
block scheduler with the occupancy rule of Expression (2), a cycle-accounting
timing engine with latency hiding and bandwidth limits, a PCIe-like
host↔device transfer engine, and asynchronous streams with dedicated
copy/compute engines for modelling compute/copy overlap.  It produces the
"observed" kernel and total
running times against which the analytical ATGPU/SWGPU predictions are
compared, playing the role of the GTX 650 in the paper's evaluation.
"""

from repro.simulator.config import WORD_BYTES, DeviceConfig
from repro.simulator.device import GPUDevice, LaunchRecord
from repro.simulator.device_pool import DevicePool
from repro.simulator.errors import (
    AllocationError,
    InvalidAccessError,
    LaunchError,
    OutOfGlobalMemoryError,
    OutOfSharedMemoryError,
    SimulatorError,
)
from repro.simulator.functional import FunctionalEngine
from repro.simulator.kernel import BlockContext, KernelProgram
from repro.simulator.memory import (
    DeviceArray,
    GlobalMemory,
    HostMemory,
    SharedMemory,
    bank_conflict_degree,
    coalesced_transactions,
)
from repro.simulator.scheduler import BlockScheduler, SchedulePlan
from repro.simulator.streams import (
    Stream,
    StreamOp,
    StreamOpKind,
    StreamTimeline,
    pipeline_makespan,
)
from repro.simulator.timing import KernelTiming, TimingEngine
from repro.simulator.trace import (
    BlockTrace,
    EventKind,
    InstructionKind,
    InstructionRecord,
    KernelCounters,
    Timeline,
    TimelineEvent,
)
from repro.simulator.transfer_engine import TransferEngine, TransferRecord

__all__ = [
    "WORD_BYTES",
    "DeviceConfig",
    "GPUDevice",
    "LaunchRecord",
    "DevicePool",
    "AllocationError",
    "InvalidAccessError",
    "LaunchError",
    "OutOfGlobalMemoryError",
    "OutOfSharedMemoryError",
    "SimulatorError",
    "FunctionalEngine",
    "BlockContext",
    "KernelProgram",
    "DeviceArray",
    "GlobalMemory",
    "HostMemory",
    "SharedMemory",
    "bank_conflict_degree",
    "coalesced_transactions",
    "BlockScheduler",
    "SchedulePlan",
    "Stream",
    "StreamOp",
    "StreamOpKind",
    "StreamTimeline",
    "pipeline_makespan",
    "KernelTiming",
    "TimingEngine",
    "BlockTrace",
    "EventKind",
    "InstructionKind",
    "InstructionRecord",
    "KernelCounters",
    "Timeline",
    "TimelineEvent",
    "TransferEngine",
    "TransferRecord",
]
