"""The figure/table regeneration harness for the paper's evaluation."""

from repro.experiments.figures import (
    FigureSeries,
    all_figures,
    figure3,
    figure4,
    figure5,
    figure6,
)
from repro.experiments.report import (
    render_comparison_summary,
    render_figure,
    render_figures,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import (
    AlgorithmSummary,
    PAPER_REPORTED,
    render_summary,
    summarise,
    summary_statistics,
    table1,
)

__all__ = [
    "FigureSeries",
    "all_figures",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "render_comparison_summary",
    "render_figure",
    "render_figures",
    "ExperimentRunner",
    "AlgorithmSummary",
    "PAPER_REPORTED",
    "render_summary",
    "summarise",
    "summary_statistics",
    "table1",
]
