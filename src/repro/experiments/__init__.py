"""The experiment layer: declarative specs, sessions, figures and tables.

The modern entry point is the :class:`Session` façade executing
:class:`ExperimentSpec` objects into :class:`Result` / :class:`ResultSet`
objects; :class:`ExperimentRunner` remains as a deprecation shim over it.
"""

from repro.experiments.figures import (
    FigureSeries,
    all_figures,
    figure3,
    figure4,
    figure5,
    figure6,
    figure_chunk_sweep,
    figure_overlap,
    figure_scaling,
    figure_shard_sweep,
)
from repro.experiments.report import (
    render_comparison_summary,
    render_figure,
    render_figures,
)
from repro.experiments.results import (
    Result,
    ResultSet,
    as_comparison,
    as_comparisons,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.session import (
    ENGINES,
    BatchCache,
    EngineError,
    ExecutionEngine,
    ProcessPoolEngine,
    SerialEngine,
    Session,
    execute_group,
    execute_spec,
    execute_specs,
    mergeable,
    plan_groups,
    predict_group,
    resolve_engine,
)
from repro.experiments.spec import ExperimentSpec, paper_specs
from repro.experiments.tables import (
    AlgorithmSummary,
    OverlapSummary,
    PAPER_REPORTED,
    ScalingSummary,
    overlap_summary,
    render_overlap_summary,
    render_scaling_summary,
    render_summary,
    scaling_summary,
    summarise,
    summary_statistics,
    table1,
)

__all__ = [
    "FigureSeries",
    "all_figures",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure_chunk_sweep",
    "figure_overlap",
    "figure_scaling",
    "figure_shard_sweep",
    "render_comparison_summary",
    "render_figure",
    "render_figures",
    "Result",
    "ResultSet",
    "as_comparison",
    "as_comparisons",
    "ExperimentRunner",
    "ENGINES",
    "BatchCache",
    "EngineError",
    "ExecutionEngine",
    "ProcessPoolEngine",
    "SerialEngine",
    "Session",
    "execute_group",
    "execute_spec",
    "execute_specs",
    "mergeable",
    "plan_groups",
    "predict_group",
    "resolve_engine",
    "ExperimentSpec",
    "paper_specs",
    "AlgorithmSummary",
    "OverlapSummary",
    "PAPER_REPORTED",
    "ScalingSummary",
    "overlap_summary",
    "render_overlap_summary",
    "render_scaling_summary",
    "render_summary",
    "scaling_summary",
    "summarise",
    "summary_statistics",
    "table1",
]
