"""First-class experiment results.

A :class:`Result` is everything one executed :class:`~repro.experiments.spec.ExperimentSpec`
produced: the per-backend predicted cost series, the predicted transfer
proportions ``ΔT``, and the observed total / kernel / transfer times.  It
serialises to JSON (the on-disk cache format of
:class:`~repro.experiments.session.Session`) and reconstructs the
:class:`~repro.core.prediction.PredictionComparison` from which every figure
and Section IV statistic is derived.

A :class:`ResultSet` is an ordered batch of results — what
:meth:`Session.run_many` returns — with convenience views keyed by
algorithm so the figure and table builders can consume it directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.prediction import (
    PredictionComparison,
    SweepObservation,
    SweepPrediction,
)
from repro.experiments.spec import ExperimentSpec
from repro.utils.validation import reject_unknown_fields


@dataclass
class Result:
    """The outcome of executing one experiment spec.

    Everything is stored as plain lists of floats so a result round-trips
    through JSON without loss; the richer comparison object is rebuilt (and
    memoised) on demand.
    """

    spec: ExperimentSpec
    sizes: List[int]
    #: Predicted cost series per backend name, aligned with ``sizes``.
    predicted: Dict[str, List[float]]
    #: Predicted transfer proportions ``ΔT`` per size.
    predicted_transfer_proportions: List[float]
    observed_totals: List[float]
    observed_kernels: List[float]
    observed_transfers: List[float]
    _comparison: Optional[PredictionComparison] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = len(self.sizes)
        aligned = [self.predicted_transfer_proportions, self.observed_totals,
                   self.observed_kernels, self.observed_transfers,
                   *self.predicted.values()]
        if any(len(series) != n for series in aligned):
            raise ValueError("every result series must align with the sizes")
        if not self.predicted:
            raise ValueError("a result needs at least one predicted series")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sweeps(
        cls,
        spec: ExperimentSpec,
        prediction: SweepPrediction,
        observation: SweepObservation,
    ) -> "Result":
        """Capture the sweeps an execution produced into a result.

        Besides the spec's requested backends, the built-in trio is always
        stored (the analysis computes it anyway): the Section IV statistics
        and the figure builders need the ``atgpu`` / ``swgpu`` series, so
        this keeps results reloaded from the JSON cache behaving exactly
        like fresh ones even for specs that requested other backends.
        """
        stored = dict.fromkeys((*spec.backends, "atgpu", "swgpu", "perfect"))
        result = cls(
            spec=spec,
            sizes=list(prediction.sizes),
            predicted={
                name: [float(v) for v in prediction.series_for(name)]
                for name in stored
            },
            predicted_transfer_proportions=[
                float(v) for v in prediction.predicted_transfer_proportions
            ],
            observed_totals=[float(v) for v in observation.totals],
            observed_kernels=[float(v) for v in observation.kernels],
            observed_transfers=[float(v) for v in observation.transfers],
        )
        result._comparison = PredictionComparison(
            prediction=prediction, observation=observation
        )
        return result

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def algorithm(self) -> str:
        """Registry name of the algorithm this result is for."""
        return self.spec.algorithm

    def backend_series(self, name: str) -> np.ndarray:
        """Predicted cost series of one backend as an array."""
        try:
            return np.asarray(self.predicted[name], dtype=float)
        except KeyError as exc:
            known = ", ".join(sorted(self.predicted))
            raise KeyError(
                f"result carries no series for backend {name!r}; "
                f"available: {known}"
            ) from exc

    def comparison(self) -> PredictionComparison:
        """The prediction-vs-observation comparison (memoised).

        Results fresh from an execution keep the original comparison with
        its per-size analysis reports; results deserialised from JSON
        rebuild an equivalent comparison from the stored series.
        """
        if self._comparison is None:
            prediction = SweepPrediction(
                algorithm=self.spec.algorithm,
                sizes=list(self.sizes),
                series={
                    name: np.asarray(values, dtype=float)
                    for name, values in self.predicted.items()
                },
                proportions=list(self.predicted_transfer_proportions),
            )
            observation = SweepObservation(
                algorithm=self.spec.algorithm,
                sizes=list(self.sizes),
                total_times=list(self.observed_totals),
                kernel_times=list(self.observed_kernels),
                transfer_times=list(self.observed_transfers),
            )
            self._comparison = PredictionComparison(
                prediction=prediction, observation=observation
            )
        return self._comparison

    def summary(self) -> Dict[str, float]:
        """The Section IV-D statistics of this experiment."""
        return self.comparison().summary()

    def shape_scores(self) -> Dict[str, float]:
        """Growth-shape score of every evaluated backend vs the total time."""
        return self.comparison().shape_scores(self.spec.backends)

    def statistics(self) -> Dict[str, float]:
        """All Section IV statistics, including per-backend shape scores."""
        stats = self.summary()
        for name, score in self.shape_scores().items():
            stats[f"{name}_shape_score"] = score
        return stats

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The result (spec included) as a JSON-serialisable dictionary."""
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.spec_hash(),
            "sizes": list(self.sizes),
            "predicted": {k: list(v) for k, v in self.predicted.items()},
            "predicted_transfer_proportions": list(
                self.predicted_transfer_proportions
            ),
            "observed_totals": list(self.observed_totals),
            "observed_kernels": list(self.observed_kernels),
            "observed_transfers": list(self.observed_transfers),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Result":
        """Rebuild a result from :meth:`to_dict` output.

        ``spec_hash`` is accepted (``to_dict`` emits it as a convenience
        for external consumers) but recomputed from the spec, never
        trusted; any other unknown key is rejected.
        """
        known = [f.name for f in fields(cls)] + ["spec_hash"]
        reject_unknown_fields("Result", data, known)
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            sizes=[int(n) for n in data["sizes"]],
            predicted={
                str(k): [float(x) for x in v]
                for k, v in data["predicted"].items()
            },
            predicted_transfer_proportions=[
                float(x) for x in data["predicted_transfer_proportions"]
            ],
            observed_totals=[float(x) for x in data["observed_totals"]],
            observed_kernels=[float(x) for x in data["observed_kernels"]],
            observed_transfers=[float(x) for x in data["observed_transfers"]],
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """The result as JSON (the session's on-disk cache format)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Result":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclass
class ResultSet:
    """An ordered batch of results, as returned by ``Session.run_many``."""

    results: List[Result]

    def __iter__(self) -> Iterator[Result]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Result:
        return self.results[index]

    def get(self, algorithm: str) -> Result:
        """The first result for an algorithm name."""
        for result in self.results:
            if result.algorithm == algorithm:
                return result
        known = ", ".join(dict.fromkeys(r.algorithm for r in self.results))
        raise KeyError(
            f"no result for algorithm {algorithm!r}; result set covers: {known}"
        )

    def by_algorithm(self) -> Dict[str, Result]:
        """Results keyed by algorithm name (first occurrence wins)."""
        out: Dict[str, Result] = {}
        for result in self.results:
            out.setdefault(result.algorithm, result)
        return out

    def comparisons(self) -> Dict[str, PredictionComparison]:
        """Comparison objects keyed by algorithm — the figure builders' input."""
        return {
            name: result.comparison()
            for name, result in self.by_algorithm().items()
        }

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Section IV-D statistics per algorithm."""
        return {
            name: result.summary()
            for name, result in self.by_algorithm().items()
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The whole batch as a JSON-serialisable dictionary."""
        return {"results": [result.to_dict() for result in self.results]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultSet":
        """Rebuild a batch from :meth:`to_dict` output."""
        reject_unknown_fields("ResultSet", data, ("results",))
        return cls(results=[Result.from_dict(r) for r in data["results"]])

    def to_json(self, indent: Optional[int] = None) -> str:
        """The batch as JSON."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a batch from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------- #
# Coercion helpers shared by the figure and table builders
# --------------------------------------------------------------------- #
def as_comparison(obj) -> PredictionComparison:
    """Coerce a :class:`PredictionComparison` or :class:`Result` to the former."""
    if isinstance(obj, PredictionComparison):
        return obj
    if isinstance(obj, Result):
        return obj.comparison()
    raise TypeError(
        "expected a PredictionComparison or Result, got "
        f"{type(obj).__name__}"
    )


def as_comparisons(obj) -> Dict[str, PredictionComparison]:
    """Coerce a ``{name: comparison-or-result}`` mapping or a :class:`ResultSet`."""
    if isinstance(obj, ResultSet):
        return obj.comparisons()
    if isinstance(obj, Mapping):
        return {name: as_comparison(value) for name, value in obj.items()}
    raise TypeError(
        "expected a ResultSet or a mapping of comparisons/results, got "
        f"{type(obj).__name__}"
    )
