"""Tables and summary statistics of the paper's evaluation.

* :func:`table1` reproduces Table I (the model feature comparison).
* :func:`summary_statistics` reproduces the prose statistics of Section IV-D:
  the average share of time spent on data transfer per algorithm, the mean
  absolute gap between the predicted and observed transfer proportions, and
  the share of the actual running time captured by the kernel-only (SWGPU)
  view.  The paper's reported values are attached so that benchmark output
  shows paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.comparison import model_feature_table, render_feature_table
from repro.core.prediction import PredictionComparison
from repro.experiments.results import as_comparison, as_comparisons
from repro.utils.stats import speedup_series

#: The values the paper reports in Section IV-D, for side-by-side comparison.
PAPER_REPORTED = {
    "vector_addition": {
        "observed_transfer_share": 0.84,
        "delta_accuracy": 0.015,
        "swgpu_capture_fraction": 0.16,
    },
    "reduction": {
        "observed_transfer_share": 0.35,
        "delta_accuracy": 0.0549,
        "swgpu_capture_fraction": 0.58,
    },
    "matrix_multiplication": {
        # The paper reports "little difference between kernel and total time"
        # and an 89 % capture; the average Δ of Fig. 6c is roughly 10 %.
        "observed_transfer_share": 0.11,
        "delta_accuracy": 0.0076,
        "swgpu_capture_fraction": 0.89,
    },
}


def table1(rendered: bool = False):
    """Table I of the paper.

    Returns the feature matrix (``{feature: {model: bool}}``), or its aligned
    text rendering when ``rendered=True``.
    """
    if rendered:
        return render_feature_table(include_counts=True)
    return model_feature_table()


@dataclass
class AlgorithmSummary:
    """Section IV-D statistics for one algorithm, measured vs paper."""

    algorithm: str
    measured_transfer_share: float
    measured_predicted_transfer_share: float
    measured_delta_accuracy: float
    measured_swgpu_capture: float
    atgpu_shape_score: float
    swgpu_shape_score: float
    paper_transfer_share: Optional[float] = None
    paper_delta_accuracy: Optional[float] = None
    paper_swgpu_capture: Optional[float] = None

    @property
    def atgpu_tracks_total_better(self) -> bool:
        """The headline claim: the ATGPU growth shape is at least as close."""
        return self.atgpu_shape_score >= self.swgpu_shape_score


def summarise(name: str, comparison) -> AlgorithmSummary:
    """Build the Section IV-D summary of one algorithm's experiment.

    ``comparison`` may be a :class:`PredictionComparison` or a
    :class:`~repro.experiments.results.Result`.
    """
    comparison = as_comparison(comparison)
    paper = PAPER_REPORTED.get(name, {})
    return AlgorithmSummary(
        algorithm=name,
        measured_transfer_share=comparison.average_observed_transfer_share(),
        measured_predicted_transfer_share=comparison.average_predicted_transfer_share(),
        measured_delta_accuracy=comparison.delta_accuracy(),
        measured_swgpu_capture=comparison.swgpu_capture_fraction(),
        atgpu_shape_score=comparison.atgpu_shape_score(),
        swgpu_shape_score=comparison.swgpu_shape_score(),
        paper_transfer_share=paper.get("observed_transfer_share"),
        paper_delta_accuracy=paper.get("delta_accuracy"),
        paper_swgpu_capture=paper.get("swgpu_capture_fraction"),
    )


def summary_statistics(comparisons) -> Dict[str, AlgorithmSummary]:
    """Section IV-D statistics for every algorithm in ``comparisons``.

    Accepts a ``{name: comparison-or-result}`` mapping or a
    :class:`~repro.experiments.results.ResultSet`.
    """
    return {name: summarise(name, comparison)
            for name, comparison in as_comparisons(comparisons).items()}


@dataclass
class OverlapSummary:
    """Predicted benefit of compute/copy overlap for one algorithm's sweep."""

    algorithm: str
    serial_cost: float
    overlapped_cost: float
    mean_speedup: float
    max_speedup: float

    @property
    def saving_share(self) -> float:
        """Fraction of the serial cost recovered by overlap, aggregated."""
        if self.serial_cost == 0:
            return 0.0
        return 1.0 - self.overlapped_cost / self.serial_cost


def overlap_summary(
    comparisons,
    serial_backend: str = "atgpu",
    async_backend: str = "atgpu-async",
) -> Dict[str, OverlapSummary]:
    """Overlap speedup Δ relative to the serial model, per algorithm.

    Every comparison must carry prediction series for both backends (run its
    specs with ``backends`` including ``atgpu-async``).  ``serial_cost`` and
    ``overlapped_cost`` are sums over the sweep; the speedups are per-size
    serial/overlapped ratios.
    """
    out: Dict[str, OverlapSummary] = {}
    for name, comparison in as_comparisons(comparisons).items():
        serial = comparison.prediction.series_for(serial_backend)
        overlapped = comparison.prediction.series_for(async_backend)
        speedups = speedup_series(serial, overlapped)
        out[name] = OverlapSummary(
            algorithm=name,
            serial_cost=float(serial.sum()),
            overlapped_cost=float(overlapped.sum()),
            mean_speedup=float(speedups.mean()),
            max_speedup=float(speedups.max()),
        )
    return out


@dataclass
class ScalingSummary:
    """Predicted benefit of multi-GPU sharding for one algorithm's sweep."""

    algorithm: str
    serial_cost: float
    sharded_cost: float
    mean_speedup: float
    max_speedup: float

    @property
    def saving_share(self) -> float:
        """Fraction of the serial cost removed by sharding, aggregated."""
        if self.serial_cost == 0:
            return 0.0
        return 1.0 - self.sharded_cost / self.serial_cost


def scaling_summary(
    comparisons,
    serial_backend: str = "atgpu",
    sharded_backend: str = "atgpu-multi",
) -> Dict[str, ScalingSummary]:
    """Sharding speedup Δ relative to the serial model, per algorithm.

    Every comparison must carry prediction series for both backends (run its
    specs with ``backends`` including ``atgpu-multi`` or a
    :func:`~repro.core.backends.make_sharded_backend` variant).
    ``serial_cost`` and ``sharded_cost`` are sums over the sweep; the
    speedups are per-size serial/straggler ratios.
    """
    out: Dict[str, ScalingSummary] = {}
    for name, comparison in as_comparisons(comparisons).items():
        serial = comparison.prediction.series_for(serial_backend)
        sharded = comparison.prediction.series_for(sharded_backend)
        speedups = speedup_series(serial, sharded)
        out[name] = ScalingSummary(
            algorithm=name,
            serial_cost=float(serial.sum()),
            sharded_cost=float(sharded.sum()),
            mean_speedup=float(speedups.mean()),
            max_speedup=float(speedups.max()),
        )
    return out


def _render_table(rows) -> str:
    """Align a header+rows list of string cells into a text table."""
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    )


def render_overlap_summary(summaries: Dict[str, OverlapSummary]) -> str:
    """Aligned text table of the overlap-speedup summary."""
    rows = [[
        "algorithm", "serial cost", "async cost", "mean Δ", "max Δ",
        "saving share",
    ]]
    for name, s in summaries.items():
        rows.append([
            name,
            f"{s.serial_cost:.4g}",
            f"{s.overlapped_cost:.4g}",
            f"{s.mean_speedup:.3f}",
            f"{s.max_speedup:.3f}",
            f"{s.saving_share:.1%}",
        ])
    return _render_table(rows)


def render_scaling_summary(summaries: Dict[str, ScalingSummary]) -> str:
    """Aligned text table of the sharding-speedup summary."""
    rows = [[
        "algorithm", "serial cost", "sharded cost", "mean Δ", "max Δ",
        "saving share",
    ]]
    for name, s in summaries.items():
        rows.append([
            name,
            f"{s.serial_cost:.4g}",
            f"{s.sharded_cost:.4g}",
            f"{s.mean_speedup:.3f}",
            f"{s.max_speedup:.3f}",
            f"{s.saving_share:.1%}",
        ])
    return _render_table(rows)


def render_summary(summaries: Dict[str, AlgorithmSummary]) -> str:
    """Aligned text table of measured-vs-paper summary statistics."""
    header = [
        "algorithm", "ΔE avg (meas)", "ΔE avg (paper)", "ΔT avg (meas)",
        "|ΔT-ΔE| (meas)", "|ΔT-ΔE| (paper)", "kernel share (meas)",
        "kernel share (paper)", "ATGPU tracks better",
    ]
    rows = [header]
    for name, s in summaries.items():
        rows.append([
            name,
            f"{s.measured_transfer_share:.3f}",
            "-" if s.paper_transfer_share is None else f"{s.paper_transfer_share:.3f}",
            f"{s.measured_predicted_transfer_share:.3f}",
            f"{s.measured_delta_accuracy:.3f}",
            "-" if s.paper_delta_accuracy is None else f"{s.paper_delta_accuracy:.4f}",
            f"{s.measured_swgpu_capture:.3f}",
            "-" if s.paper_swgpu_capture is None else f"{s.paper_swgpu_capture:.2f}",
            "yes" if s.atgpu_tracks_total_better else "no",
        ])
    return _render_table(rows)
