"""The experiment runner: prediction vs observation for one algorithm sweep.

One "experiment" in the sense of Section IV is: pick an algorithm and a
sweep of input sizes; for every size evaluate the ATGPU GPU-cost and the
SWGPU cost (prediction) and run the algorithm on the simulated GPU measuring
total / kernel / transfer time (observation); then compare.  The runner
packages that loop and returns the
:class:`~repro.core.prediction.PredictionComparison` from which every figure
and summary statistic of the paper is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import GPUAlgorithm
from repro.algorithms.registry import create, paper_algorithm_names
from repro.core.prediction import PredictionComparison
from repro.core.presets import DEFAULT_PRESET, GPUPreset
from repro.simulator.config import DeviceConfig
from repro.workloads.sweeps import sweep_for


@dataclass
class ExperimentRunner:
    """Runs prediction-vs-observation experiments on one GPU configuration.

    Parameters
    ----------
    preset:
        Cost-model parameters and abstract machine used for the predictions.
    device_config:
        Simulator configuration used for the observations.  The default is
        the GTX-650-like device matching the default preset.
    scale:
        ``"paper"`` to use the exact sweep sizes of Section IV, ``"small"``
        for the reduced sweeps (used by tests and quick benchmark runs).
    seed:
        Seed for the workload generators.
    """

    preset: GPUPreset = DEFAULT_PRESET
    device_config: Optional[DeviceConfig] = None
    scale: str = "paper"
    seed: int = 0
    _cache: Dict[str, PredictionComparison] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.device_config is None:
            self.device_config = DeviceConfig.gtx650()
        if self.scale not in ("paper", "small"):
            raise ValueError(f"scale must be 'paper' or 'small', got {self.scale!r}")

    # ------------------------------------------------------------------ #
    # Single-algorithm experiments
    # ------------------------------------------------------------------ #
    def sizes_for(self, algorithm: GPUAlgorithm) -> List[int]:
        """The sweep sizes used for ``algorithm`` at the runner's scale."""
        try:
            return list(sweep_for(algorithm.name, scale=self.scale).sizes)
        except KeyError:
            sizes = algorithm.default_sizes()
            if self.scale == "small":
                sizes = sizes[: max(3, len(sizes) // 3)]
            return sizes

    def run_algorithm(
        self,
        algorithm: GPUAlgorithm,
        sizes: Optional[Sequence[int]] = None,
        use_cache: bool = True,
    ) -> PredictionComparison:
        """Run the full prediction-vs-observation experiment for one algorithm."""
        cache_key = f"{algorithm.name}:{self.scale}:{tuple(sizes) if sizes else 'default'}"
        if use_cache and cache_key in self._cache:
            return self._cache[cache_key]
        sweep_sizes = list(sizes) if sizes is not None else self.sizes_for(algorithm)
        prediction = algorithm.predict_sweep(sweep_sizes, preset=self.preset)
        observation = algorithm.observe_sweep(
            sweep_sizes, config=self.device_config, seed=self.seed
        )
        comparison = PredictionComparison(prediction=prediction, observation=observation)
        if use_cache:
            self._cache[cache_key] = comparison
        return comparison

    def run_by_name(self, name: str, sizes: Optional[Sequence[int]] = None
                    ) -> PredictionComparison:
        """Run the experiment for a registered algorithm name."""
        return self.run_algorithm(create(name), sizes=sizes)

    # ------------------------------------------------------------------ #
    # The paper's full evaluation
    # ------------------------------------------------------------------ #
    def run_paper_evaluation(self) -> Dict[str, PredictionComparison]:
        """Run the three experiments of Section IV and return them by name."""
        return {name: self.run_by_name(name) for name in paper_algorithm_names()}
