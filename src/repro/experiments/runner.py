"""Legacy experiment runner — a deprecation shim over :class:`Session`.

One "experiment" in the sense of Section IV is: pick an algorithm and a
sweep of input sizes; for every size evaluate each cost-model backend
(prediction) and run the algorithm on the simulated GPU measuring total /
kernel / transfer time (observation); then compare.  That loop now lives in
:mod:`repro.experiments.session`; :class:`ExperimentRunner` remains as a
thin adapter so existing call sites keep working, translating its mutable
fields into frozen :class:`~repro.experiments.spec.ExperimentSpec` objects
on every call.

Because the cache key is now the full spec hash (algorithm, sizes, scale,
preset, device configuration, seed and backends), mutating a runner field
after construction correctly misses the cache instead of silently returning
a stale comparison — the legacy runner keyed only on name, scale and sizes.

New code should use :class:`~repro.experiments.session.Session` directly.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import GPUAlgorithm
from repro.algorithms.registry import create, paper_algorithm_names
from repro.core.prediction import PredictionComparison
from repro.core.presets import DEFAULT_PRESET, GPUPreset, PRESETS, register_preset
from repro.experiments.session import Session
from repro.experiments.spec import ExperimentSpec
from repro.simulator.config import DeviceConfig


@dataclass
class ExperimentRunner:
    """Runs prediction-vs-observation experiments on one GPU configuration.

    .. deprecated::
        Build :class:`~repro.experiments.spec.ExperimentSpec` objects and run
        them through a :class:`~repro.experiments.session.Session` instead;
        this class is a compatibility adapter over that path.

    Parameters
    ----------
    preset:
        Cost-model parameters and abstract machine used for the predictions.
    device_config:
        Simulator configuration used for the observations.  The default is
        the GTX-650-like device matching the default preset.
    scale:
        ``"paper"`` to use the exact sweep sizes of Section IV, ``"small"``
        for the reduced sweeps (used by tests and quick benchmark runs).
    seed:
        Seed for the workload generators.
    session:
        The :class:`Session` executing and caching the experiments; a fresh
        serial session by default.
    """

    preset: GPUPreset = DEFAULT_PRESET
    device_config: Optional[DeviceConfig] = None
    scale: str = "paper"
    seed: int = 0
    session: Session = field(default_factory=Session, repr=False)

    def __post_init__(self) -> None:
        if self.device_config is None:
            self.device_config = DeviceConfig.gtx650()
        if self.scale not in ("paper", "small"):
            raise ValueError(f"scale must be 'paper' or 'small', got {self.scale!r}")
        warnings.warn(
            "ExperimentRunner is deprecated; use repro.experiments.Session "
            "with ExperimentSpec objects instead",
            DeprecationWarning,
            stacklevel=2,
        )

    # ------------------------------------------------------------------ #
    # Spec translation
    # ------------------------------------------------------------------ #
    def _preset_name(self) -> str:
        """The registry name of the runner's preset, registering it if needed.

        The legacy runner accepted any preset object, including customised
        copies that keep a registered name (e.g. ``replace(GTX_650, ...)``);
        those are registered under a content-addressed alias so the spec can
        still refer to them by name without colliding with the original.
        """
        name = self.preset.name
        registered = PRESETS.get(name.lower())
        if registered is None:
            register_preset(self.preset)
            return name
        if registered == self.preset:
            return name
        digest = hashlib.sha256(repr(self.preset).encode("utf-8")).hexdigest()[:8]
        alias = f"{name}-{digest}"
        if alias.lower() not in PRESETS:
            register_preset(replace(self.preset, name=alias))
        return alias

    def spec_for(
        self, algorithm: str, sizes: Optional[Sequence[int]] = None
    ) -> ExperimentSpec:
        """The :class:`ExperimentSpec` describing one run with current fields."""
        return ExperimentSpec(
            algorithm=algorithm,
            sizes=tuple(int(n) for n in sizes) if sizes is not None else None,
            scale=self.scale,
            preset=self._preset_name(),
            device_config=self.device_config,
            seed=self.seed,
        )

    # ------------------------------------------------------------------ #
    # Single-algorithm experiments
    # ------------------------------------------------------------------ #
    def sizes_for(self, algorithm: GPUAlgorithm) -> List[int]:
        """The sweep sizes used for ``algorithm`` at the runner's scale."""
        return self.spec_for(algorithm.name).resolved_sizes(algorithm)

    def run_algorithm(
        self,
        algorithm: GPUAlgorithm,
        sizes: Optional[Sequence[int]] = None,
        use_cache: bool = True,
    ) -> PredictionComparison:
        """Run the full prediction-vs-observation experiment for one algorithm."""
        spec = self.spec_for(algorithm.name, sizes=sizes)
        result = self.session.run(spec, use_cache=use_cache, algorithm=algorithm)
        return result.comparison()

    def run_by_name(self, name: str, sizes: Optional[Sequence[int]] = None
                    ) -> PredictionComparison:
        """Run the experiment for a registered algorithm name."""
        return self.run_algorithm(create(name), sizes=sizes)

    # ------------------------------------------------------------------ #
    # The paper's full evaluation
    # ------------------------------------------------------------------ #
    def run_paper_evaluation(self) -> Dict[str, PredictionComparison]:
        """Run the three experiments of Section IV and return them by name."""
        specs = [self.spec_for(name) for name in paper_algorithm_names()]
        results = self.session.run_many(specs)
        return {
            result.algorithm: result.comparison() for result in results
        }
