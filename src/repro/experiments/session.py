"""The Session façade: batched, cached execution of experiment specs.

A :class:`Session` turns declarative :class:`~repro.experiments.spec.ExperimentSpec`
objects into :class:`~repro.experiments.results.Result` objects through a
pluggable execution engine:

* :class:`SerialEngine` executes specs one after another in-process,
* :class:`ProcessPoolEngine` fans a batch out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Every executed spec is cached under its
:meth:`~repro.experiments.spec.ExperimentSpec.spec_hash` — in memory always,
and additionally as one JSON file per spec when the session is given a
``cache_dir``.  Repeated runs of the same spec (same algorithm, sizes,
preset, device configuration, seed and backends) are served from the cache;
the ``cache_hits`` / ``cache_misses`` counters expose that behaviour.

Quick use::

    from repro.experiments import ExperimentSpec, Session, paper_specs

    session = Session()
    result = session.run(ExperimentSpec("vector_addition", scale="small"))
    print(result.summary())

    evaluation = session.run_many(paper_specs(scale="small"))
    print(evaluation.summaries())
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Union

from repro.algorithms.base import GPUAlgorithm
from repro.algorithms.registry import create
from repro.core.backends import all_backends_support_batch
from repro.core.batch import MetricsBatch
from repro.core.prediction import SweepPrediction, predict_sweep_batch
from repro.experiments.results import Result, ResultSet
from repro.experiments.spec import ExperimentSpec, paper_specs


def _rename_series(
    prediction: SweepPrediction,
    requested: Sequence[str],
    resolved: Sequence[str],
) -> SweepPrediction:
    """Key series computed under resolved backend names by the requested ones.

    Topology placeholder resolution evaluates under auto-registered names
    (``atgpu-topo-<hash>``); callers asked for the names in their spec
    (``atgpu-topo``), so the series dictionary is re-keyed before the
    prediction is returned.  A no-op when nothing was resolved.
    """
    if tuple(requested) == tuple(resolved):
        return prediction
    mapping = {
        res: req for req, res in zip(requested, resolved) if res != req
    }
    return replace(
        prediction,
        series={
            mapping.get(name, name): values
            for name, values in prediction.series.items()
        },
    )


class EngineError(RuntimeError):
    """A spec batch failed inside an execution engine.

    Raised where the engine itself (not the spec's model evaluation) is the
    problem — e.g. the process pool's workers died twice in a row.  The
    offending spec, when identifiable, is attached as :attr:`spec` and named
    in the message.
    """

    def __init__(self, message: str, spec: Optional[ExperimentSpec] = None):
        super().__init__(message)
        self.spec = spec


class BatchCache:
    """Memoizes compiled metrics batches and per-backend sweep predictions.

    Both maps key on ``(algorithm, preset, sizes)`` — predictions
    additionally on the requested backends — which is exactly the data a
    batched prediction depends on: cost-model evaluation is a pure function
    of those, so repeated :meth:`Session.run_many` calls over the same
    sweeps (different seeds, different device configurations) skip both the
    metrics compilation and the per-backend :class:`BatchBreakdown`
    evaluation.  ``hits`` / ``misses`` count lookups across both maps.

    The cache is thread-safe: serving-layer workers share one instance
    across threads.  A lookup racing a build may compile the same entry
    twice (both threads count a miss; evaluation is pure, so the values are
    identical); the first store wins and every caller receives that one
    shared object.
    """

    def __init__(self) -> None:
        self._batches: Dict[tuple, MetricsBatch] = {}
        self._predictions: Dict[tuple, SweepPrediction] = {}
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()

    @property
    def size(self) -> int:
        """Number of cached batches plus cached predictions."""
        with self._lock:
            return len(self._batches) + len(self._predictions)

    def clear(self) -> None:
        """Drop every cached batch and prediction (counters are kept)."""
        with self._lock:
            self._batches.clear()
            self._predictions.clear()

    def _get(self, store: Dict[tuple, object], key: tuple, build):
        with self._lock:
            value = store.get(key)
            if value is not None:
                self.hits += 1
                return value
            self.misses += 1
        value = build()
        with self._lock:
            return store.setdefault(key, value)

    def batch(self, key: tuple, build) -> MetricsBatch:
        """The compiled batch under ``key``, building it on first use."""
        return self._get(self._batches, key, build)

    def prediction(self, key: tuple, build) -> SweepPrediction:
        """The evaluated prediction under ``key``, building it on first use.

        Cached predictions are shared between results; callers must treat
        them as read-only.
        """
        return self._get(self._predictions, key, build)

    def seed_prediction(self, key: tuple, prediction: SweepPrediction) -> None:
        """Store an externally computed prediction without counting a lookup.

        This is how process-pool results flow back into the parent-side
        memo: the pool worker already paid for the evaluation, so the entry
        is planted for later in-process lookups to hit.  An existing entry
        is kept (evaluation is pure; the values are interchangeable).
        """
        with self._lock:
            self._predictions.setdefault(key, prediction)


def execute_spec(
    spec: ExperimentSpec, algorithm: Optional[GPUAlgorithm] = None
) -> Result:
    """Execute one spec: predict, observe, and package the result.

    This is the single execution path behind every engine (it is a
    module-level function so process-pool workers can pickle it).
    ``algorithm`` optionally supplies a pre-built instance — useful for
    algorithm objects that are not in the registry.
    """
    if algorithm is None:
        algorithm = create(spec.algorithm)
    elif algorithm.name != spec.algorithm:
        raise ValueError(
            f"algorithm instance {algorithm.name!r} does not match the spec's "
            f"{spec.algorithm!r}"
        )
    sizes = spec.resolved_sizes(algorithm)
    preset = spec.resolved_preset()
    resolved = spec.resolved_backends()
    prediction = _rename_series(
        algorithm.predict_sweep(sizes, preset=preset, backends=resolved),
        spec.backends,
        resolved,
    )
    observation = algorithm.observe_sweep(
        sizes, config=spec.resolved_device_config(), seed=spec.seed
    )
    return Result.from_sweeps(spec, prediction, observation)


def mergeable(spec: ExperimentSpec, other: ExperimentSpec) -> bool:
    """Whether two specs may share one coalesced prediction group.

    Specs merge when they name the same algorithm and topology and their
    presets resolve to the **same abstract machine**: the compiled
    :class:`MetricsBatch` is a pure function of ``(algorithm, sizes,
    machine)``, so such specs share one union compile even under different
    preset names.  Backend evaluation stays clustered per ``(preset,
    backends)`` inside :func:`predict_group` — presets with one machine may
    still differ in parameters or occupancy — which keeps every spec's
    prediction bit-for-bit equal to evaluating it alone.
    """
    if spec.algorithm != other.algorithm:
        return False
    if spec.topology_key() != other.topology_key():
        return False
    if spec.preset == other.preset:
        return True
    return spec.resolved_preset().machine == other.resolved_preset().machine


def plan_groups(specs: Sequence[ExperimentSpec]) -> List[List[int]]:
    """Greedy first-fit plan of coalescing groups over a spec batch.

    Returns lists of indices into ``specs``; each spec joins the first
    group whose representative (the group's first member) it is
    :func:`mergeable` with, else opens a new group.  Exact
    ``(algorithm, preset, topology)`` repeats short-circuit through a key
    map, so the quadratic representative scan only pays per *distinct*
    key.  Concatenating the groups visits every index exactly once; order
    within a group follows batch order.
    """
    groups: List[List[int]] = []
    representatives: List[ExperimentSpec] = []
    exact: Dict[Tuple[str, str, str], int] = {}
    for index, spec in enumerate(specs):
        key = (spec.algorithm, spec.preset, spec.topology_key())
        slot = exact.get(key)
        if slot is None:
            for candidate, representative in enumerate(representatives):
                if mergeable(spec, representative):
                    slot = candidate
                    break
        if slot is None:
            exact[key] = len(groups)
            groups.append([index])
            representatives.append(spec)
        else:
            exact.setdefault(key, slot)
            groups[slot].append(index)
    return groups


def predict_group(
    specs: Sequence[ExperimentSpec],
    batch_cache: Optional[BatchCache] = None,
    algorithm: Optional[GPUAlgorithm] = None,
) -> List[SweepPrediction]:
    """Coalesced predictions for a group of :func:`mergeable` specs.

    This is the coalescing core shared by :func:`execute_specs` and the
    serving layer (:mod:`repro.serving`).  All specs must be
    :func:`mergeable` — same algorithm and topology, presets resolving to
    one abstract machine — so the whole group is served by **one**
    :class:`MetricsBatch` compiled over the union of its sweep sizes and
    **one** backend evaluation per distinct ``(preset, backends)`` cluster;
    each spec's prediction is scattered back out by selecting its size
    columns (:meth:`~repro.core.prediction.SweepPrediction.select`),
    bit-for-bit equal to evaluating that spec alone.  Specs whose backends
    lack batch support keep the per-spec scalar path (reports included).

    A :class:`BatchCache` (when supplied) memoizes the compiled batch
    (keyed by machine, so equal-machine presets share entries) and the
    cluster-level predictions across calls; the union prediction is looked
    up first, so a fully warmed cache serves the group without compiling
    anything.  Order is preserved.
    """
    specs = list(specs)
    if not specs:
        return []
    first = specs[0]
    for spec in specs[1:]:
        if not mergeable(spec, first):
            raise ValueError(
                "predict_group coalesces mergeable specs (one algorithm "
                "and topology, presets resolving to one machine); got "
                f"({first.algorithm!r}, {first.preset!r}, "
                f"{first.topology_key()!r}) and ({spec.algorithm!r}, "
                f"{spec.preset!r}, {spec.topology_key()!r})"
            )
    if algorithm is None:
        algorithm = create(first.algorithm)
    preset_for = [spec.resolved_preset() for spec in specs]
    machine = preset_for[0].machine
    sizes_for = [spec.resolved_sizes(algorithm) for spec in specs]
    resolved_for = [spec.resolved_backends() for spec in specs]
    batchable = [
        all_backends_support_batch(resolved) for resolved in resolved_for
    ]
    union = sorted({
        n for index, ok in enumerate(batchable) if ok
        for n in sizes_for[index]
    })
    column = {n: j for j, n in enumerate(union)}
    batch: Optional[MetricsBatch] = None

    def union_batch() -> MetricsBatch:
        # Compiled lazily: when every union prediction is already cached
        # (or seeded from pool results), the batch is never needed.
        nonlocal batch
        if batch is None:
            def compile_union() -> MetricsBatch:
                return algorithm.compile_batch(union, preset=preset_for[0])

            if batch_cache is not None:
                batch = batch_cache.batch(
                    (algorithm.name, machine, tuple(union)),
                    compile_union,
                )
            else:
                batch = compile_union()
        return batch

    shared: Dict[tuple, SweepPrediction] = {}
    predictions: List[Optional[SweepPrediction]] = [None] * len(specs)
    for index, spec in enumerate(specs):
        sizes = sizes_for[index]
        resolved = resolved_for[index]
        preset = preset_for[index]
        if not batchable[index]:
            predictions[index] = _rename_series(
                algorithm.predict_sweep(
                    sizes, preset=preset, backends=resolved
                ),
                spec.backends,
                resolved,
            )
            continue
        cluster = (spec.preset, resolved)
        union_prediction = shared.get(cluster)
        if union_prediction is None:
            def evaluate(preset=preset, resolved=resolved) -> SweepPrediction:
                return predict_sweep_batch(
                    algorithm.name, union_batch(), preset.machine,
                    preset.parameters, preset.occupancy,
                    backends=resolved,
                )

            if batch_cache is not None:
                union_prediction = batch_cache.prediction(
                    (
                        algorithm.name, spec.preset, tuple(union),
                        resolved, spec.topology_key(),
                    ),
                    evaluate,
                )
            else:
                union_prediction = evaluate()
            shared[cluster] = union_prediction
        if sizes == union:
            prediction = union_prediction
        else:
            prediction = union_prediction.select(
                [column[n] for n in sizes]
            )
        predictions[index] = _rename_series(
            prediction, spec.backends, resolved
        )
    return [p for p in predictions if p is not None]


def execute_group(
    specs: Sequence[ExperimentSpec],
    batch_cache: Optional[BatchCache] = None,
    algorithm: Optional[GPUAlgorithm] = None,
) -> List[Result]:
    """Execute one group of :func:`mergeable` specs, coalesced.

    Predictions come from :func:`predict_group` (one union compile, one
    evaluation per distinct ``(preset, backends)`` cluster); observations
    are simulated per spec as always.  Order is preserved.
    """
    specs = list(specs)
    if not specs:
        return []
    if algorithm is None:
        algorithm = create(specs[0].algorithm)
    predictions = predict_group(
        specs, batch_cache=batch_cache, algorithm=algorithm
    )
    results: List[Result] = []
    for spec, prediction in zip(specs, predictions):
        observation = algorithm.observe_sweep(
            spec.resolved_sizes(algorithm),
            config=spec.resolved_device_config(),
            seed=spec.seed,
        )
        results.append(Result.from_sweeps(spec, prediction, observation))
    return results


def execute_specs(
    specs: Sequence[ExperimentSpec],
    batch_cache: Optional[BatchCache] = None,
) -> List[Result]:
    """Execute a batch of specs, sharing compiled metrics within groups.

    :func:`mergeable` specs — same algorithm and topology, presets
    resolving to one abstract machine — coalesce into one
    :func:`execute_group` call (grouping planned greedily by
    :func:`plan_groups`): one :class:`MetricsBatch` compiled over the union
    of the group's sweep sizes and one backend evaluation per distinct
    ``(preset, backends)`` cluster serve every spec's prediction.
    Compilation goes through the algorithm's array-native
    :meth:`~repro.algorithms.base.GPUAlgorithm.metrics_batch` factory, and a
    :class:`BatchCache` (when supplied) memoizes both the compiled batches
    and the evaluated union predictions across calls.  Observations are
    simulated per spec as before.  Order is preserved.
    """
    results: List[Optional[Result]] = [None] * len(specs)
    for indices in plan_groups(specs):
        group_results = execute_group(
            [specs[index] for index in indices], batch_cache=batch_cache
        )
        for index, result in zip(indices, group_results):
            results[index] = result
    return [result for result in results if result is not None]


class ExecutionEngine(Protocol):
    """What a session requires of an execution engine."""

    name: str

    def map(self, specs: Sequence[ExperimentSpec]) -> List[Result]:
        """Execute every spec, preserving order."""
        ...


class SerialEngine:
    """Execute specs one after another in the current process.

    Batches route through :func:`execute_specs`, so specs sharing an
    ``(algorithm, preset)`` pair also share one compiled
    :class:`~repro.core.batch.MetricsBatch` for their predictions.  A
    :class:`Session` additionally passes its :class:`BatchCache` through
    :meth:`map_with_cache`, carrying those compiled batches and evaluated
    predictions across calls.
    """

    name = "serial"

    def map(self, specs: Sequence[ExperimentSpec]) -> List[Result]:
        return execute_specs(specs)

    def map_with_cache(
        self, specs: Sequence[ExperimentSpec], batch_cache: BatchCache
    ) -> List[Result]:
        """Like :meth:`map`, memoizing batches/predictions in ``batch_cache``."""
        return execute_specs(specs, batch_cache=batch_cache)


class ProcessPoolEngine:
    """Execute a batch of specs across a pool of worker processes.

    Falls back to in-process execution for batches of one (a pool buys
    nothing there).  ``max_workers`` defaults to the CPU count.  The pool is
    created lazily on the first multi-spec batch and **reused across
    batches** — spawning workers costs tens of milliseconds per process, so
    a per-batch pool would dominate short sweeps.  Call :meth:`close` (or
    use the owning :class:`Session` as a context manager) to shut the
    workers down.

    A batch that dies with :class:`BrokenProcessPool` (a worker crashed or
    was killed) is retried **once** on a fresh pool; if that retry breaks
    too, the engine raises a typed :class:`EngineError` naming the offending
    spec instead of surfacing the raw executor crash.

    .. note::
        Specs naming backends or presets registered at runtime (via
        :func:`repro.core.backends.register_backend` /
        :func:`repro.core.presets.register_preset`) resolve in workers under
        the ``fork`` start method (the Linux default), which inherits the
        parent's registries.  Under ``spawn`` (macOS / Windows default)
        workers re-import the package and only see the built-ins — register
        custom entries at import time of a module the workers load, or use
        the serial engine for such specs.  A reused pool additionally
        snapshots the registries as of its first batch under ``fork``.

        Worker processes cannot *read* the session's in-process
        :class:`BatchCache`, but their results flow back through it:
        :meth:`map_with_cache` seeds the parent-side memo with each
        returned prediction, so later in-process evaluations of the same
        sweeps (serial batches, the serving layer) hit without recompiling.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        # Guards pool creation/teardown when sessions are shared across
        # serving-layer worker threads.
        self._lock = threading.Lock()

    @property
    def pool(self) -> Optional[ProcessPoolExecutor]:
        """The live executor, or ``None`` before first use / after close."""
        with self._lock:
            return self._pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers or os.cpu_count() or 1
                )
            return self._pool

    def map(self, specs: Sequence[ExperimentSpec]) -> List[Result]:
        if len(specs) <= 1:
            return [execute_spec(spec) for spec in specs]
        try:
            return list(self._ensure_pool().map(execute_spec, specs))
        except BrokenProcessPool:
            # A dead worker poisons the whole executor; drop it and retry
            # the batch once on a healthy pool (the old per-batch pool
            # recovered implicitly).
            self.close()
            return self._retry_once(specs)

    def _retry_once(self, specs: Sequence[ExperimentSpec]) -> List[Result]:
        """Re-run a broken batch on a fresh pool, spec by spec.

        Per-spec futures make the second failure attributable: the first
        future to die names the spec that was in flight when the worker
        crashed, and the raised :class:`EngineError` carries it.
        """
        futures = [
            self._ensure_pool().submit(execute_spec, spec) for spec in specs
        ]
        results: List[Result] = []
        for spec, future in zip(specs, futures):
            try:
                results.append(future.result())
            except BrokenProcessPool as exc:
                self.close()
                raise EngineError(
                    "process pool broke twice in a row; the retry crashed "
                    f"while executing algorithm {spec.algorithm!r} "
                    f"(spec {spec.spec_hash()})",
                    spec=spec,
                ) from exc
        return results

    def map_with_cache(
        self, specs: Sequence[ExperimentSpec], batch_cache: BatchCache
    ) -> List[Result]:
        """Like :meth:`map`, seeding ``batch_cache`` from the pool's results.

        Workers cannot share the parent's memo, but each result carries the
        prediction its worker evaluated; planting those under the same keys
        :func:`predict_group` looks up closes the loop — a later in-process
        pass over the same ``(algorithm, preset, sizes, backends)`` is
        served from the memo without compiling or evaluating anything.
        """
        results = self.map(specs)
        for spec, result in zip(specs, results):
            resolved = spec.resolved_backends()
            if not all_backends_support_batch(resolved):
                continue
            batch_cache.seed_prediction(
                (
                    spec.algorithm, spec.preset, tuple(result.sizes),
                    resolved, spec.topology_key(),
                ),
                result.comparison().prediction,
            )
        return results

    def close(self) -> None:
        """Shut down the worker pool (a later batch re-creates it)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Engine factories by name, for ``Session(engine="...")``.
ENGINES = {
    SerialEngine.name: SerialEngine,
    ProcessPoolEngine.name: ProcessPoolEngine,
}


def resolve_engine(engine: Union[str, ExecutionEngine]) -> ExecutionEngine:
    """Turn an engine name or instance into an engine instance."""
    if isinstance(engine, str):
        try:
            factory = ENGINES[engine]
        except KeyError as exc:
            known = ", ".join(sorted(ENGINES))
            raise KeyError(
                f"unknown execution engine {engine!r}; known engines: {known}"
            ) from exc
        return factory()
    return engine


class Session:
    """Executes experiment specs with transparent caching and batching.

    Parameters
    ----------
    engine:
        An engine name (``"serial"`` or ``"process"``) or any object
        satisfying :class:`ExecutionEngine`.
    cache_dir:
        Optional directory for the on-disk JSON result store (one
        ``<spec_hash>.json`` file per result).  Results found there survive
        across sessions and processes.

    One session is safe to share across threads (the serving layer's
    workers all execute through a single instance): the result cache, the
    hit/miss counters and the batch memo are lock-guarded, and disk-store
    writes are atomic (temp file + rename).  Two threads racing on the same
    uncached spec may both execute it — execution is deterministic, so both
    produce identical results and the store stays consistent.
    """

    def __init__(
        self,
        engine: Union[str, ExecutionEngine] = "serial",
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.engine = resolve_engine(engine)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, Result] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._lock = threading.RLock()
        #: Memoized compiled metrics batches and per-backend predictions,
        #: shared with engines that support ``map_with_cache``.
        self.batch_cache = BatchCache()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release engine resources (e.g. a persistent worker pool).

        The session stays usable afterwards — an engine with a lazy pool
        simply re-creates it on the next batch.
        """
        close = getattr(self.engine, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    @property
    def cache_size(self) -> int:
        """Number of results held in the in-memory cache."""
        with self._lock:
            return len(self._memory)

    @property
    def batch_cache_hits(self) -> int:
        """Lookups served from the compiled-batch/prediction memo."""
        return self.batch_cache.hits

    @property
    def batch_cache_misses(self) -> int:
        """Batch/prediction compilations the memo could not avoid."""
        return self.batch_cache.misses

    def clear_cache(self, disk: bool = False) -> None:
        """Drop the in-memory caches (and the on-disk store with ``disk=True``).

        Clears both the spec-hash result cache and the compiled-batch /
        prediction memo.
        """
        with self._lock:
            self._memory.clear()
        self.batch_cache.clear()
        if disk and self.cache_dir is not None:
            for path in self.cache_dir.glob("*.json"):
                path.unlink()

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def lookup(
        self, spec: ExperimentSpec, key: Optional[str] = None
    ) -> Optional[Result]:
        """Cached result for a spec, or ``None`` (does not touch counters).

        ``key`` optionally supplies the pre-computed ``spec_hash`` so batch
        callers hash each spec exactly once per call.
        """
        key = key if key is not None else spec.spec_hash()
        with self._lock:
            result = self._memory.get(key)
        if result is not None:
            return result
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                result = Result.from_json(path.read_text(encoding="utf-8"))
            except (ValueError, KeyError, TypeError, OSError):
                # A truncated or corrupted store entry is a miss, not a
                # crash: drop it and let the spec re-execute.
                path.unlink(missing_ok=True)
                return None
            with self._lock:
                self._memory[key] = result
            return result
        return None

    def _store(
        self, spec: ExperimentSpec, result: Result, key: Optional[str] = None
    ) -> None:
        key = key if key is not None else spec.spec_hash()
        with self._lock:
            self._memory[key] = result
        path = self._disk_path(key)
        if path is not None:
            # Write-then-rename keeps concurrent writers of the same key
            # from interleaving into a torn store entry.
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            tmp.write_text(result.to_json(), encoding="utf-8")
            os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        spec: ExperimentSpec,
        use_cache: bool = True,
        algorithm: Optional[GPUAlgorithm] = None,
    ) -> Result:
        """Execute one spec (serially), serving repeats from the cache.

        With ``use_cache=False`` the spec executes unconditionally, nothing
        is stored, and the hit/miss counters are left untouched (matching
        :meth:`run_many`).
        """
        if not use_cache:
            return execute_spec(spec, algorithm=algorithm)
        key = spec.spec_hash()
        cached = self.lookup(spec, key=key)
        if cached is not None:
            with self._lock:
                self.cache_hits += 1
            return cached
        with self._lock:
            self.cache_misses += 1
        result = execute_spec(spec, algorithm=algorithm)
        self._store(spec, result, key=key)
        return result

    def run_many(
        self, specs: Sequence[ExperimentSpec], use_cache: bool = True
    ) -> ResultSet:
        """Execute a batch of specs through the engine, preserving order.

        Cached specs are answered immediately; only the misses go to the
        engine.  Duplicate specs within one batch are executed once: the
        first occurrence counts as a miss, the repeats as hits (they are
        served from that one execution), so ``cache_misses`` always equals
        the number of actual executions.

        With ``use_cache=False`` caching is disabled entirely: every spec —
        duplicates included — is executed, nothing is stored, neither the
        batch memo nor the hit/miss counters are touched.
        """
        specs = list(specs)
        if not use_cache:
            return ResultSet(results=self.engine.map(specs))
        slots: List[Optional[Result]] = [None] * len(specs)
        pending: Dict[str, List[int]] = {}
        for index, spec in enumerate(specs):
            key = spec.spec_hash()
            cached = self.lookup(spec, key=key)
            if cached is not None:
                with self._lock:
                    self.cache_hits += 1
                slots[index] = cached
            else:
                with self._lock:
                    if key in pending:
                        self.cache_hits += 1
                    else:
                        self.cache_misses += 1
                pending.setdefault(key, []).append(index)
        if pending:
            to_run = [specs[indices[0]] for indices in pending.values()]
            mapper = getattr(self.engine, "map_with_cache", None)
            if callable(mapper):
                fresh = mapper(to_run, self.batch_cache)
            else:
                fresh = self.engine.map(to_run)
            for key, result, indices in zip(
                pending, fresh, pending.values()
            ):
                self._store(specs[indices[0]], result, key=key)
                for index in indices:
                    slots[index] = result
        return ResultSet(results=[slot for slot in slots if slot is not None])

    # ------------------------------------------------------------------ #
    # The paper's evaluation
    # ------------------------------------------------------------------ #
    def run_paper_evaluation(
        self, scale: str = "paper", use_cache: bool = True, **spec_kwargs
    ) -> ResultSet:
        """Run the three Section IV experiments as one batch.

        ``spec_kwargs`` forward to :func:`repro.experiments.spec.paper_specs`
        (``preset``, ``device_config``, ``seed``, ``backends``).
        """
        return self.run_many(
            paper_specs(scale=scale, **spec_kwargs), use_cache=use_cache
        )
