"""Series builders for every figure of the paper's evaluation section.

Each ``figure*`` function returns one or more :class:`FigureSeries` objects:
a named set of curves over the sweep's input sizes, which is exactly the
data plotted in the corresponding subfigure of the paper.  The benchmark
harness prints these series; plotting them (with any tool) reproduces the
figures.

===========  ==========================================================
Figure 3     vector addition: (a) predicted ATGPU/SWGPU cost,
             (b) observed total/kernel time, (c) all four normalised
Figure 4     reduction, same three subfigures
Figure 5     matrix multiplication: (a) predicted, (b) observed
Figure 6     transfer proportions Δ (observed ΔE vs predicted ΔT) for
             (a) vector addition, (b) reduction, (c) matrix multiplication
===========  ==========================================================

Every ``figure*`` builder accepts either the classic
:class:`~repro.core.prediction.PredictionComparison` objects or the
:class:`~repro.experiments.results.Result` /
:class:`~repro.experiments.results.ResultSet` objects produced by a
:class:`~repro.experiments.session.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.prediction import PredictionComparison
from repro.experiments.results import as_comparison, as_comparisons
from repro.utils.stats import speedup_series


@dataclass
class FigureSeries:
    """The data behind one subfigure: named curves over the input sizes."""

    figure: str
    title: str
    x_label: str
    y_label: str
    sizes: List[int]
    series: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.sizes):
                raise ValueError(
                    f"series {name!r} of {self.figure} has {len(values)} points "
                    f"but the sweep has {len(self.sizes)}"
                )

    def as_rows(self) -> List[List[float]]:
        """Rows of ``[size, curve1, curve2, ...]`` in series order."""
        names = list(self.series)
        rows = []
        for index, size in enumerate(self.sizes):
            rows.append([float(size)] + [float(self.series[n][index]) for n in names])
        return rows

    def column_names(self) -> List[str]:
        """Column headers matching :meth:`as_rows`."""
        return [self.x_label] + list(self.series)


def _predicted(comparison: PredictionComparison, figure: str, title: str,
               x_label: str) -> FigureSeries:
    return FigureSeries(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label="cost",
        sizes=comparison.sizes,
        series={
            "ATGPU": comparison.prediction.atgpu_costs,
            "SWGPU": comparison.prediction.swgpu_costs,
        },
    )


def _observed(comparison: PredictionComparison, figure: str, title: str,
              x_label: str) -> FigureSeries:
    return FigureSeries(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label="time (s)",
        sizes=comparison.sizes,
        series={
            "Total": comparison.observation.totals,
            "Kernel": comparison.observation.kernels,
        },
    )


def _normalised(comparison: PredictionComparison, figure: str, title: str,
                x_label: str) -> FigureSeries:
    return FigureSeries(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label="cost / time (normalised)",
        sizes=comparison.sizes,
        series=comparison.normalised_curves(),
    )


def _delta(comparison: PredictionComparison, figure: str, title: str,
           x_label: str) -> FigureSeries:
    deltas = comparison.delta_curves()
    return FigureSeries(
        figure=figure,
        title=title,
        x_label=x_label,
        y_label="Δ (transfer proportion)",
        sizes=comparison.sizes,
        series={
            "ΔE (Observed)": deltas["observed"],
            "ΔT (Predicted)": deltas["predicted"],
        },
    )


# --------------------------------------------------------------------- #
# Figures 3-6
# --------------------------------------------------------------------- #
def figure3(comparison) -> Dict[str, FigureSeries]:
    """Figure 3 (vector addition): predicted, observed and normalised series."""
    comparison = as_comparison(comparison)
    x = "n"
    return {
        "3a": _predicted(comparison, "Figure 3a", "Vector addition: predicted results", x),
        "3b": _observed(comparison, "Figure 3b", "Vector addition: observed results", x),
        "3c": _normalised(comparison, "Figure 3c", "Vector addition: normalised results", x),
    }


def figure4(comparison) -> Dict[str, FigureSeries]:
    """Figure 4 (reduction): predicted, observed and normalised series."""
    comparison = as_comparison(comparison)
    x = "n"
    return {
        "4a": _predicted(comparison, "Figure 4a", "Reduction: predicted results", x),
        "4b": _observed(comparison, "Figure 4b", "Reduction: observed results", x),
        "4c": _normalised(comparison, "Figure 4c", "Reduction: normalised results", x),
    }


def figure5(comparison) -> Dict[str, FigureSeries]:
    """Figure 5 (matrix multiplication): predicted and observed series."""
    comparison = as_comparison(comparison)
    x = "n"
    return {
        "5a": _predicted(comparison, "Figure 5a",
                         "Matrix multiplication: predicted results", x),
        "5b": _observed(comparison, "Figure 5b",
                        "Matrix multiplication: observed results", x),
    }


def figure6(comparisons) -> Dict[str, FigureSeries]:
    """Figure 6: transfer proportions Δ for the three paper algorithms.

    ``comparisons`` maps the registry names (``vector_addition``,
    ``reduction``, ``matrix_multiplication``) to their comparison (or
    result) objects, or is a :class:`ResultSet` covering them.
    """
    comparisons = as_comparisons(comparisons)
    labels = {
        "vector_addition": ("6a", "Vector addition"),
        "reduction": ("6b", "Reduction"),
        "matrix_multiplication": ("6c", "Matrix multiplication"),
    }
    out: Dict[str, FigureSeries] = {}
    for name, (key, title) in labels.items():
        if name not in comparisons:
            raise KeyError(f"figure6 needs a comparison for {name!r}")
        out[key] = _delta(comparisons[name], f"Figure {key}",
                          f"{title}: proportion of time/cost for data transfer", "n")
    return out


# --------------------------------------------------------------------- #
# Overlap (async-stream) figures — beyond the paper's evaluation
# --------------------------------------------------------------------- #
def figure_overlap(
    comparison,
    serial_backend: str = "atgpu",
    async_backend: str = "atgpu-async",
    title: str = "Compute/copy overlap: serial vs async predicted cost",
) -> FigureSeries:
    """Serial vs overlapped predicted cost and the speedup Δ over a sweep.

    ``comparison`` must carry prediction series for both backends, i.e. its
    spec ran with e.g. ``backends=("atgpu", "swgpu", "perfect",
    "atgpu-async")``.  The ``Speedup Δ`` curve is the per-size ratio of the
    serial to the overlapped cost (≥ 1; how much the async pipeline wins).
    """
    comparison = as_comparison(comparison)
    serial = comparison.prediction.series_for(serial_backend)
    overlapped = comparison.prediction.series_for(async_backend)
    return FigureSeries(
        figure="Overlap",
        title=title,
        x_label="n",
        y_label="cost / speedup",
        sizes=comparison.sizes,
        series={
            "Serial": serial,
            "Async": overlapped,
            "Speedup Δ": speedup_series(serial, overlapped),
        },
    )


def figure_chunk_sweep(
    algorithm,
    n: int,
    preset=None,
    chunk_counts: Sequence[int] = (),
) -> FigureSeries:
    """Overlapped cost and speedup at one input size across chunk counts.

    Evaluates the overlapped cost model directly (no registered backend per
    chunk count needed); the x-axis is the chunk count, with 1 the serial
    baseline.  ``chunk_counts`` defaults to
    :data:`repro.workloads.sweeps.STREAM_CHUNK_SWEEP`.
    """
    from repro.core.backends import overlapped_cost
    from repro.core.presets import DEFAULT_PRESET
    from repro.workloads.sweeps import STREAM_CHUNK_SWEEP

    if isinstance(algorithm, str):
        from repro.algorithms.registry import create

        algorithm = create(algorithm)
    preset = preset or DEFAULT_PRESET
    counts = list(chunk_counts) or list(STREAM_CHUNK_SWEEP.sizes)
    metrics = algorithm.metrics(int(n), preset.machine)
    costs = np.array([
        overlapped_cost(
            metrics, preset.machine, preset.parameters, preset.occupancy,
            chunks=int(c),
        )
        for c in counts
    ])
    serial = overlapped_cost(
        metrics, preset.machine, preset.parameters, preset.occupancy, chunks=1
    )
    return FigureSeries(
        figure="Overlap-chunks",
        title=(
            f"{algorithm.name}: overlapped cost vs chunk count at n={int(n)}"
        ),
        x_label="chunks",
        y_label="cost / speedup",
        sizes=[int(c) for c in counts],
        series={"Async": costs, "Speedup Δ": serial / costs},
    )


# --------------------------------------------------------------------- #
# Multi-GPU sharding (scaling) figures — beyond the paper's evaluation
# --------------------------------------------------------------------- #
def figure_scaling(
    comparison,
    serial_backend: str = "atgpu",
    sharded_backend: str = "atgpu-multi",
    title: str = "Multi-GPU sharding: serial vs sharded predicted cost",
) -> FigureSeries:
    """Serial vs sharded predicted cost and the scaling speedup over a sweep.

    ``comparison`` may be a :class:`~repro.experiments.results.Result` (or a
    :class:`PredictionComparison`) carrying prediction series for both
    backends, i.e. its spec ran with e.g. ``backends=("atgpu", "swgpu",
    "perfect", "atgpu-multi")``.  The ``Speedup Δ`` curve is the per-size
    ratio of the serial to the sharded (straggler) cost.
    """
    comparison = as_comparison(comparison)
    serial = comparison.prediction.series_for(serial_backend)
    sharded = comparison.prediction.series_for(sharded_backend)
    return FigureSeries(
        figure="Scaling",
        title=title,
        x_label="n",
        y_label="cost / speedup",
        sizes=comparison.sizes,
        series={
            "Serial": serial,
            "Sharded": sharded,
            "Speedup Δ": speedup_series(serial, sharded),
        },
    )


def figure_shard_sweep(
    algorithm,
    n: int,
    preset=None,
    device_counts: Sequence[int] = (),
    contention: float = 0.0,
) -> FigureSeries:
    """Sharded cost and speedup at one input size across device counts.

    Evaluates the sharded cost model directly (no registered backend per
    device count needed); the x-axis is the pool size, with 1 the serial
    baseline.  ``device_counts`` defaults to
    :data:`repro.workloads.sweeps.SHARD_COUNT_SWEEP`.
    """
    from repro.core.presets import DEFAULT_PRESET
    from repro.core.sharding import sharded_gpu_cost
    from repro.workloads.sweeps import SHARD_COUNT_SWEEP

    if isinstance(algorithm, str):
        from repro.algorithms.registry import create

        algorithm = create(algorithm)
    preset = preset or DEFAULT_PRESET
    counts = list(device_counts) or list(SHARD_COUNT_SWEEP.sizes)
    metrics = algorithm.metrics(int(n), preset.machine)
    costs = np.array([
        sharded_gpu_cost(
            metrics, preset.machine, preset.parameters, preset.occupancy,
            devices=int(p), contention=contention,
        )
        for p in counts
    ])
    serial = sharded_gpu_cost(
        metrics, preset.machine, preset.parameters, preset.occupancy,
        devices=1,
    )
    return FigureSeries(
        figure="Scaling-devices",
        title=(
            f"{algorithm.name}: sharded cost vs device count at n={int(n)} "
            f"(contention {contention:g})"
        ),
        x_label="devices",
        y_label="cost / speedup",
        sizes=[int(p) for p in counts],
        series={
            "Sharded": costs,
            "Speedup Δ": speedup_series(np.full(len(costs), serial), costs),
        },
    )


def all_figures(comparisons) -> Dict[str, FigureSeries]:
    """Every subfigure of the evaluation, keyed ``3a`` ... ``6c``.

    Accepts a ``{name: comparison}`` mapping or a :class:`ResultSet`.
    """
    comparisons = as_comparisons(comparisons)
    out: Dict[str, FigureSeries] = {}
    out.update(figure3(comparisons["vector_addition"]))
    out.update(figure4(comparisons["reduction"]))
    out.update(figure5(comparisons["matrix_multiplication"]))
    out.update(figure6(comparisons))
    return out
