"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the complete, immutable description of one
prediction-vs-observation experiment: which algorithm, which input sizes (an
explicit tuple or a named sweep scale), which GPU preset drives the
prediction, which simulated device produces the observation, which seed
feeds the workload generators, and which cost-model backends are evaluated.

Specs are frozen and hashable, round-trip through plain dictionaries and
JSON, and expose a :meth:`~ExperimentSpec.spec_hash` derived from their
canonical JSON — the one cache key used everywhere (it therefore includes
the seed, preset and device configuration, unlike the legacy runner's
name-and-sizes key).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.backends import (
    DEFAULT_BACKENDS,
    TOPOLOGY_BACKEND,
    ensure_topology_backend,
)
from repro.core.presets import DEFAULT_PRESET, GPUPreset, get_preset
from repro.core.topology import Topology
from repro.simulator.config import DeviceConfig
from repro.utils.validation import reject_unknown_fields
from repro.workloads.sweeps import sweep_for

#: The scales a spec may name instead of explicit sizes.
SCALES: Tuple[str, ...] = ("paper", "small")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, fully described and hashable.

    Parameters
    ----------
    algorithm:
        Registry name of the algorithm (see :mod:`repro.algorithms.registry`).
    sizes:
        Explicit sweep sizes.  When ``None`` the named sweep for
        ``algorithm`` at ``scale`` is used (falling back to the algorithm's
        default sizes).
    scale:
        ``"paper"`` for the exact Section IV sweeps, ``"small"`` for the
        reduced variants.  Ignored when ``sizes`` is given.
    preset:
        Name of the GPU preset driving the prediction (see
        :func:`repro.core.presets.get_preset`).
    device_config:
        Simulator configuration for the observation side; defaults to the
        GTX-650-like device matching the default preset.
    seed:
        Seed for the workload generators.
    backends:
        Names of the cost-model backends to evaluate
        (:mod:`repro.core.backends`).  The placeholder name
        ``"atgpu-topo"`` means "the spec's own topology" and requires
        ``topology`` to be set; see :meth:`resolved_backends`.
    topology:
        Optional :class:`~repro.core.topology.Topology` describing the
        device fleet topology-aware backends evaluate against (a plain
        mapping is coerced).  Included in the spec hash and in every
        caching/coalescing key derived from it.
    """

    algorithm: str
    sizes: Optional[Tuple[int, ...]] = None
    scale: str = "paper"
    preset: str = DEFAULT_PRESET.name
    device_config: Optional[DeviceConfig] = None
    seed: int = 0
    backends: Tuple[str, ...] = DEFAULT_BACKENDS
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        if not self.algorithm:
            raise ValueError("an experiment spec needs an algorithm name")
        if self.scale not in SCALES:
            raise ValueError(
                f"scale must be one of {', '.join(SCALES)}; got {self.scale!r}"
            )
        if self.sizes is not None:
            sizes = tuple(int(n) for n in self.sizes)
            if not sizes:
                raise ValueError("sizes must not be empty when given")
            if any(n <= 0 for n in sizes):
                raise ValueError("sweep sizes must be positive")
            object.__setattr__(self, "sizes", sizes)
        backends = tuple(str(name) for name in self.backends)
        if not backends:
            raise ValueError("an experiment spec needs at least one backend")
        object.__setattr__(self, "backends", backends)
        object.__setattr__(self, "seed", int(self.seed))
        if self.topology is not None and not isinstance(
            self.topology, Topology
        ):
            if isinstance(self.topology, Mapping):
                object.__setattr__(
                    self, "topology", Topology.from_dict(self.topology)
                )
            else:
                raise TypeError(
                    "topology must be a Topology (or its to_dict mapping), "
                    f"got {type(self.topology).__name__}"
                )
        if TOPOLOGY_BACKEND in self.backends and self.topology is None:
            raise ValueError(
                f"the {TOPOLOGY_BACKEND!r} backend placeholder requires the "
                "spec to carry a topology"
            )

    # ------------------------------------------------------------------ #
    # Resolution against the registries
    # ------------------------------------------------------------------ #
    def resolved_sizes(self, algorithm=None) -> List[int]:
        """The concrete sweep sizes this spec describes.

        ``algorithm`` optionally supplies an already-constructed
        :class:`~repro.algorithms.base.GPUAlgorithm` instance for the
        default-sizes fallback (avoids a registry lookup, and supports
        unregistered algorithm objects).
        """
        if self.sizes is not None:
            return list(self.sizes)
        try:
            return list(sweep_for(self.algorithm, scale=self.scale).sizes)
        except KeyError:
            pass
        if algorithm is None:
            from repro.algorithms.registry import create

            algorithm = create(self.algorithm)
        sizes = list(algorithm.default_sizes())
        if self.scale == "small":
            sizes = sizes[: max(3, len(sizes) // 3)]
        return sizes

    def resolved_preset(self) -> GPUPreset:
        """The :class:`~repro.core.presets.GPUPreset` this spec names."""
        return get_preset(self.preset)

    def resolved_device_config(self) -> DeviceConfig:
        """The simulator configuration (default: the GTX-650 device)."""
        return self.device_config or DeviceConfig.gtx650()

    def topology_key(self) -> str:
        """Topology discriminator for caching/coalescing keys.

        The topology's stable hash, or ``""`` for specs without one —
        cheap to compute (memoised on the topology) and safe to embed in
        any tuple key.
        """
        return "" if self.topology is None else self.topology.topology_hash()

    def resolved_backends(self) -> Tuple[str, ...]:
        """The concrete backend names this spec evaluates.

        Occurrences of the ``"atgpu-topo"`` placeholder are replaced by
        the auto-registered backend for this spec's topology
        (:func:`~repro.core.backends.ensure_topology_backend`); all other
        names pass through unchanged.  Series computed under the resolved
        names are renamed back to the requested names by the session
        layer, so callers always see the names they asked for.
        """
        if TOPOLOGY_BACKEND not in self.backends:
            return self.backends
        resolved = ensure_topology_backend(self.topology)
        return tuple(
            resolved if name == TOPOLOGY_BACKEND else name
            for name in self.backends
        )

    def with_overrides(self, **kwargs) -> "ExperimentSpec":
        """Copy of the spec with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Serialisation and hashing
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The spec as a plain JSON-serialisable dictionary."""
        return {
            "algorithm": self.algorithm,
            "sizes": list(self.sizes) if self.sizes is not None else None,
            "scale": self.scale,
            "preset": self.preset,
            "device_config": (
                self.device_config.to_dict()
                if self.device_config is not None
                else None
            ),
            "seed": self.seed,
            "backends": list(self.backends),
            "topology": (
                self.topology.to_dict()
                if self.topology is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys raise a typed
        :class:`~repro.utils.validation.UnknownFieldError` naming the
        offending field, so e.g. a ``"topolgy"`` typo fails loudly
        instead of silently producing a homogeneous spec.
        """
        reject_unknown_fields(
            "ExperimentSpec", data, (f.name for f in fields(cls))
        )
        payload = dict(data)
        device = payload.get("device_config")
        if device is not None and not isinstance(device, DeviceConfig):
            payload["device_config"] = DeviceConfig.from_dict(device)
        sizes = payload.get("sizes")
        if sizes is not None:
            payload["sizes"] = tuple(sizes)
        backends = payload.get("backends")
        if backends is not None:
            payload["backends"] = tuple(backends)
        topology = payload.get("topology")
        if topology is not None and not isinstance(topology, Topology):
            payload["topology"] = Topology.from_dict(topology)
        return cls(**payload)

    def to_json(self) -> str:
        """The spec as canonical (sorted-key) JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable short hash of the full spec — the universal cache key.

        Computed over the canonical JSON, so it covers *every* field
        (including seed, preset and device configuration) and is identical
        across processes and interpreter runs.  The spec is frozen, so the
        hash is computed once and memoised on the instance — cache lookups
        no longer re-serialise the spec on every call.
        """
        cached = self.__dict__.get("_spec_hash")
        if cached is None:
            cached = hashlib.sha256(
                self.to_json().encode("utf-8")
            ).hexdigest()[:16]
            # repro-lint: disable=FRZ001 -- write-once memo derived from frozen fields
            object.__setattr__(self, "_spec_hash", cached)
        return cached


def paper_specs(
    scale: str = "paper",
    preset: str = DEFAULT_PRESET.name,
    device_config: Optional[DeviceConfig] = None,
    seed: int = 0,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> List[ExperimentSpec]:
    """Specs for the three experiments of Section IV, in the paper's order."""
    from repro.algorithms.registry import paper_algorithm_names

    return [
        ExperimentSpec(
            algorithm=name,
            scale=scale,
            preset=preset,
            device_config=device_config,
            seed=seed,
            backends=tuple(backends),
        )
        for name in paper_algorithm_names()
    ]
