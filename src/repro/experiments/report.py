"""Text rendering of experiment results (what the benchmark harness prints)."""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures import FigureSeries


def render_figure(series: FigureSeries, precision: int = 6) -> str:
    """Render one subfigure's series as an aligned text table."""
    headers = series.column_names()
    rows = [headers]
    for row in series.as_rows():
        rendered = [f"{row[0]:.0f}"]
        rendered.extend(f"{value:.{precision}g}" for value in row[1:])
        rows.append(rendered)
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    lines = [f"{series.figure}: {series.title}"]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_figures(figures: Dict[str, FigureSeries], precision: int = 6) -> str:
    """Render several subfigures separated by blank lines."""
    return "\n\n".join(
        render_figure(figures[key], precision=precision) for key in sorted(figures)
    )


def render_comparison_summary(title: str, summary: Dict[str, float]) -> str:
    """Render a flat metric dictionary under a title line."""
    lines = [title]
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        lines.append(f"  {key.ljust(width)} : {value:.4f}")
    return "\n".join(lines)
