"""Workload generators and the paper's parameter sweeps."""

from repro.workloads.generators import (
    random_binary_vector,
    random_csr_matrix,
    random_int_vector,
    random_square_matrix,
    transfer_size_sweep,
)
from repro.workloads.sweeps import (
    MATRIX_MULTIPLICATION_SMALL,
    MATRIX_MULTIPLICATION_SWEEP,
    PAPER_SWEEPS,
    REDUCTION_SMALL,
    REDUCTION_SWEEP,
    SHARD_COUNT_SWEEP,
    SMALL_SWEEPS,
    STREAM_CHUNK_SWEEP,
    Sweep,
    VECTOR_ADDITION_SMALL,
    VECTOR_ADDITION_SWEEP,
    dense_sweep,
    sweep_for,
)

__all__ = [
    "random_binary_vector",
    "random_csr_matrix",
    "random_int_vector",
    "random_square_matrix",
    "transfer_size_sweep",
    "MATRIX_MULTIPLICATION_SMALL",
    "MATRIX_MULTIPLICATION_SWEEP",
    "PAPER_SWEEPS",
    "REDUCTION_SMALL",
    "REDUCTION_SWEEP",
    "SHARD_COUNT_SWEEP",
    "SMALL_SWEEPS",
    "STREAM_CHUNK_SWEEP",
    "Sweep",
    "VECTOR_ADDITION_SMALL",
    "VECTOR_ADDITION_SWEEP",
    "dense_sweep",
    "sweep_for",
]
