"""Seeded workload generators.

The paper runs every kernel "on randomly generated data sets"; these helpers
generate the same kinds of inputs reproducibly (NumPy ``default_rng`` with an
explicit seed), so that every experiment and test in this repository is
deterministic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.validation import ensure_non_negative_int, ensure_positive_int


def random_int_vector(n: int, seed: int = 0, low: int = 0, high: int = 1 << 20) -> np.ndarray:
    """Random integer vector (the vector-addition inputs)."""
    ensure_positive_int(n, "n")
    if high <= low:
        raise ValueError(f"high ({high}) must exceed low ({low})")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=n, dtype=np.int64)


def random_binary_vector(n: int, seed: int = 0) -> np.ndarray:
    """Random 0/1 vector (the reduction inputs of Section IV-B)."""
    ensure_positive_int(n, "n")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=n, dtype=np.int64)


def random_square_matrix(n: int, seed: int = 0, low: int = 0, high: int = 64) -> np.ndarray:
    """Random square integer matrix (the matrix-multiplication inputs)."""
    ensure_positive_int(n, "n")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=(n, n)).astype(np.float64)


def random_csr_matrix(n: int, nnz_per_row: int, seed: int = 0) -> Dict[str, np.ndarray]:
    """Random CSR matrix with a fixed number of nonzeros per row."""
    ensure_positive_int(n, "n")
    ensure_positive_int(nnz_per_row, "nnz_per_row")
    rng = np.random.default_rng(seed)
    return {
        "values": rng.normal(size=n * nnz_per_row),
        "colidx": rng.integers(0, n, size=n * nnz_per_row).astype(np.int64),
        "rowptr": np.arange(0, (n + 1) * nnz_per_row, nnz_per_row, dtype=np.int64),
    }


def transfer_size_sweep(min_words: int = 1 << 10, max_words: int = 1 << 24,
                        points: int = 12, seed: int = 0) -> np.ndarray:
    """Geometric sweep of transfer sizes for calibrating the Boyer model."""
    ensure_positive_int(min_words, "min_words")
    ensure_positive_int(max_words, "max_words")
    ensure_positive_int(points, "points")
    if max_words <= min_words:
        raise ValueError("max_words must exceed min_words")
    sizes = np.geomspace(min_words, max_words, points)
    return np.unique(sizes.astype(np.int64))
