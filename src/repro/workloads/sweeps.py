"""The parameter sweeps of the paper's evaluation section.

Each figure of Section IV is generated over a specific sweep of input sizes;
this module records those sweeps in one place (and provides scaled-down
variants used by the test suite and quick benchmark runs, which keep the
same spacing structure but at sizes that execute quickly in pure Python).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Sweep:
    """A named sweep of input sizes."""

    name: str
    sizes: List[int]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("a sweep needs at least one size")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sweep sizes must be positive")
        if list(self.sizes) != sorted(self.sizes):
            raise ValueError("sweep sizes must be increasing")


#: Figure 3: vector addition, n = 1,000,000 ... 10,000,000.
VECTOR_ADDITION_SWEEP = Sweep(
    name="vector_addition_paper",
    sizes=[i * 1_000_000 for i in range(1, 11)],
    description="Fig. 3: n = 1e6 .. 1e7 in steps of 1e6",
)

#: Figure 4: reduction, n = 2^16 ... 2^26.
REDUCTION_SWEEP = Sweep(
    name="reduction_paper",
    sizes=[1 << e for e in range(16, 27)],
    description="Fig. 4: n = 2^16 .. 2^26",
)

#: Figure 5: matrix multiplication, n = 32 ... 1024.
MATRIX_MULTIPLICATION_SWEEP = Sweep(
    name="matrix_multiplication_paper",
    sizes=[32, 64, 128, 256, 384, 512, 640, 768, 896, 1024],
    description="Fig. 5: square matrices of side 32 .. 1024",
)

#: Scaled-down sweeps with the same shape, for fast CI / test runs.
VECTOR_ADDITION_SMALL = Sweep(
    name="vector_addition_small",
    sizes=[i * 100_000 for i in range(1, 6)],
    description="reduced vector-addition sweep for quick runs",
)

REDUCTION_SMALL = Sweep(
    name="reduction_small",
    sizes=[1 << e for e in range(14, 20)],
    description="reduced reduction sweep for quick runs",
)

MATRIX_MULTIPLICATION_SMALL = Sweep(
    name="matrix_multiplication_small",
    sizes=[32, 64, 128, 256],
    description="reduced matrix-multiplication sweep for quick runs",
)

#: Chunk counts explored by the compute/copy-overlap experiments: 1 is the
#: serial baseline, 2 the classic double buffer, larger values deepen the
#: pipeline (diminishing returns once the bottleneck stage dominates).
STREAM_CHUNK_SWEEP = Sweep(
    name="stream_chunks",
    sizes=[1, 2, 4, 8, 16],
    description="chunk counts for the async-stream overlap experiments",
)

#: Device counts explored by the multi-GPU sharding experiments: 1 is the
#: serial baseline, then doubling pool sizes.  Scaling flattens once the
#: per-device shard no longer amortises the fixed per-transfer overheads or
#: the interconnect contention dominates.
SHARD_COUNT_SWEEP = Sweep(
    name="shard_counts",
    sizes=[1, 2, 4, 8],
    description="device counts for the multi-GPU sharding experiments",
)

def dense_sweep(
    points: int = 256,
    lo: int = 100_000,
    hi: int = 10_000_000,
    name: str = "",
) -> Sweep:
    """An evenly spaced ``points``-size sweep for throughput benchmarks.

    The paper's figures use ~10 sizes; serving sweeps at traffic scale means
    evaluating hundreds of points per request, which is what the vectorized
    batch engine is benchmarked on (``benchmarks/bench_sweep.py``).  Sizes
    are strictly increasing, so ``points`` must fit in ``[lo, hi]``.
    """
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points!r}")
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < lo <= hi, got lo={lo!r}, hi={hi!r}")
    if points > hi - lo + 1:
        raise ValueError(
            f"cannot fit {points} distinct sizes between {lo} and {hi}"
        )
    if points == 1:
        sizes = [lo]
    else:
        step = (hi - lo) / (points - 1)
        sizes = sorted({int(round(lo + i * step)) for i in range(points)})
    return Sweep(
        name=name or f"dense_{points}",
        sizes=sizes,
        description=f"{points} evenly spaced sizes in [{lo}, {hi}] "
                    "for batch-throughput benchmarks",
    )


#: Sweeps keyed by the algorithm registry name, paper-scale and reduced.
PAPER_SWEEPS = {
    "vector_addition": VECTOR_ADDITION_SWEEP,
    "reduction": REDUCTION_SWEEP,
    "matrix_multiplication": MATRIX_MULTIPLICATION_SWEEP,
}

SMALL_SWEEPS = {
    "vector_addition": VECTOR_ADDITION_SMALL,
    "reduction": REDUCTION_SMALL,
    "matrix_multiplication": MATRIX_MULTIPLICATION_SMALL,
}


def sweep_for(algorithm: str, scale: str = "paper") -> Sweep:
    """Look up the sweep of one of the paper's algorithms.

    ``scale`` is ``"paper"`` for the exact sizes of Section IV or ``"small"``
    for the reduced variants.
    """
    table = PAPER_SWEEPS if scale == "paper" else SMALL_SWEEPS
    if scale not in ("paper", "small"):
        raise ValueError(f"scale must be 'paper' or 'small', got {scale!r}")
    try:
        return table[algorithm]
    except KeyError as exc:
        known = ", ".join(sorted(table))
        raise KeyError(
            f"no sweep registered for {algorithm!r}; known: {known}"
        ) from exc
