"""Common scaffolding for the classical parallel-model substrate.

Section I-B of the paper positions ATGPU relative to the classical abstract
parallel models: PRAM, BSP, BSPRAM and PEM.  Each of those models is
implemented here as a small analysable machine with a cost function, so that
the reproduction can make the same qualitative comparisons the paper makes
(which architectural features each model does or does not capture) and so
that example algorithms can be costed on more than one model.

Every model exposes:

* a machine description (a frozen dataclass),
* a :class:`ModelFeatures` flag set describing which GPU-relevant features it
  captures (feeding the extended Table I in :mod:`repro.models.features`),
* a cost function over a model-specific *program* abstraction.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import FrozenSet


class ModelFeature(enum.Enum):
    """Architectural / analysis features relevant to modelling a GPU."""

    SHARED_MEMORY = "shared memory accessible to all processors"
    PRIVATE_MEMORY = "per-processor private memory"
    MEMORY_HIERARCHY = "explicit memory hierarchy"
    BLOCK_TRANSFERS = "block-granular memory transfers"
    LOCKSTEP_GROUPS = "lockstep (warp-like) processor groups"
    SYNCHRONISATION = "explicit synchronisation rounds"
    COST_FUNCTION = "quantitative cost function"
    PSEUDOCODE = "pseudocode notation"
    SPACE_COMPLEXITY = "space complexity analysis"
    SHARED_MEMORY_LIMIT = "bounded fast/shared memory"
    GLOBAL_MEMORY_LIMIT = "bounded global memory"
    HOST_DEVICE_TRANSFER = "host/device data transfer"


@dataclass(frozen=True)
class ModelDescription:
    """Name, citation and feature set of an abstract parallel model."""

    name: str
    citation: str
    features: FrozenSet[ModelFeature]

    def supports(self, feature: ModelFeature) -> bool:
        """Whether the model captures ``feature``."""
        return feature in self.features

    def missing(self, reference: FrozenSet[ModelFeature]) -> FrozenSet[ModelFeature]:
        """Features present in ``reference`` but absent from this model."""
        return frozenset(reference - self.features)


class AbstractParallelModel(abc.ABC):
    """Base class for the classical parallel machine models."""

    @property
    @abc.abstractmethod
    def description(self) -> ModelDescription:
        """Static description (name, citation, feature flags)."""

    @property
    def name(self) -> str:
        """The model's conventional name (PRAM, BSP, ...)."""
        return self.description.name

    def supports(self, feature: ModelFeature) -> bool:
        """Whether this model captures ``feature``."""
        return self.description.supports(feature)

    def suitability_for_gpu(self) -> float:
        """Crude suitability score: fraction of GPU-relevant features captured.

        The paper argues each classical model "misses important components
        needed for modelling or analysing GPU computation"; this score makes
        that argument quantitative for the comparison table.
        """
        relevant = frozenset(ModelFeature)
        return len(self.description.features & relevant) / len(relevant)
