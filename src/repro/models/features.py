"""Extended model-comparison matrix over classical and GPU abstract models.

Table I of the paper compares only the GPU abstract models (AGPU, SWGPU,
ATGPU).  Section I-B, however, also discusses why the classical models
(PRAM, BSP, BSPRAM, PEM) are unsuitable.  This module builds an extended
comparison matrix covering all seven models over the
:class:`~repro.models.base.ModelFeature` flags, and provides the exact
Table I subset through :func:`paper_table_view` (which delegates the flags
of the three GPU models to :mod:`repro.core.comparison` so the two tables
cannot drift apart).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.comparison import (
    FEATURE_ROWS,
    MODEL_COLUMNS,
    model_feature_table,
)
from repro.models.base import ModelDescription, ModelFeature
from repro.models.bsp import BSPMachine
from repro.models.bspram import BSPRAM
from repro.models.pem import PEMMachine
from repro.models.pram import PRAM

#: Feature flags of the three GPU abstract models discussed by the paper.
AGPU_DESCRIPTION = ModelDescription(
    name="AGPU",
    citation="Koike & Sadakane, IPDPSW 2014",
    features=frozenset({
        ModelFeature.SHARED_MEMORY,
        ModelFeature.MEMORY_HIERARCHY,
        ModelFeature.BLOCK_TRANSFERS,
        ModelFeature.LOCKSTEP_GROUPS,
        ModelFeature.PSEUDOCODE,
        ModelFeature.SPACE_COMPLEXITY,
        ModelFeature.SHARED_MEMORY_LIMIT,
    }),
)

SWGPU_DESCRIPTION = ModelDescription(
    name="SWGPU",
    citation="Sitchinava & Weichert, arXiv 2013",
    features=frozenset({
        ModelFeature.SHARED_MEMORY,
        ModelFeature.MEMORY_HIERARCHY,
        ModelFeature.BLOCK_TRANSFERS,
        ModelFeature.LOCKSTEP_GROUPS,
        ModelFeature.SYNCHRONISATION,
        ModelFeature.COST_FUNCTION,
    }),
)

ATGPU_DESCRIPTION = ModelDescription(
    name="ATGPU",
    citation="Carroll & Wong, ICPP Workshops 2017",
    features=frozenset({
        ModelFeature.SHARED_MEMORY,
        ModelFeature.MEMORY_HIERARCHY,
        ModelFeature.BLOCK_TRANSFERS,
        ModelFeature.LOCKSTEP_GROUPS,
        ModelFeature.SYNCHRONISATION,
        ModelFeature.COST_FUNCTION,
        ModelFeature.PSEUDOCODE,
        ModelFeature.SPACE_COMPLEXITY,
        ModelFeature.SHARED_MEMORY_LIMIT,
        ModelFeature.GLOBAL_MEMORY_LIMIT,
        ModelFeature.HOST_DEVICE_TRANSFER,
    }),
)


def classical_model_descriptions() -> Tuple[ModelDescription, ...]:
    """Descriptions of the four classical models with default parameters."""
    return (
        PRAM(processors=1024).description,
        BSPMachine(processors=64, g=4.0, L=100.0).description,
        BSPRAM(processors=64, g=4.0, L=100.0).description,
        PEMMachine(processors=64, cache_words=4096, block_words=32).description,
    )


def all_model_descriptions() -> Tuple[ModelDescription, ...]:
    """Classical models followed by the three GPU abstract models."""
    return classical_model_descriptions() + (
        AGPU_DESCRIPTION,
        SWGPU_DESCRIPTION,
        ATGPU_DESCRIPTION,
    )


def extended_feature_matrix() -> Dict[str, Dict[str, bool]]:
    """``{feature value: {model name: supported}}`` over all seven models."""
    descriptions = all_model_descriptions()
    matrix: Dict[str, Dict[str, bool]] = {}
    for feature in ModelFeature:
        matrix[feature.value] = {
            description.name: description.supports(feature)
            for description in descriptions
        }
    return matrix


def paper_table_view() -> Dict[str, Dict[str, bool]]:
    """The exact Table I of the paper (AGPU / SWGPU / ATGPU rows only)."""
    return model_feature_table()


def gpu_suitability_ranking() -> List[Tuple[str, float]]:
    """Models ranked by fraction of GPU-relevant features captured.

    The ranking makes the narrative of Section I concrete: the classical
    models trail the GPU abstract models, and ATGPU captures the most
    features of all.
    """
    scores = []
    total = len(ModelFeature)
    for description in all_model_descriptions():
        scores.append((description.name, len(description.features) / total))
    return sorted(scores, key=lambda item: item[1], reverse=True)


def render_extended_table(models: Sequence[str] = ()) -> str:
    """Render the extended feature matrix as an aligned text table."""
    matrix = extended_feature_matrix()
    names = [d.name for d in all_model_descriptions()]
    if models:
        unknown = set(models) - set(names)
        if unknown:
            raise KeyError(f"unknown models requested: {sorted(unknown)}")
        names = [n for n in names if n in set(models)]
    header = ["Feature"] + names
    rows = [header]
    for feature, row in matrix.items():
        rows.append([feature] + ["x" if row[name] else "-" for name in names])
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    )


def consistency_with_paper_table() -> bool:
    """Check the extended matrix agrees with Table I on the shared entries.

    Guards against the two feature tables drifting apart; exercised by the
    test suite.
    """
    paper = paper_table_view()
    by_name = {d.name: d for d in all_model_descriptions()}
    feature_map = {
        "Pseudocode": ModelFeature.PSEUDOCODE,
        "Space Complexity": ModelFeature.SPACE_COMPLEXITY,
        "Shared Memory Limit": ModelFeature.SHARED_MEMORY_LIMIT,
        "Synchronisation": ModelFeature.SYNCHRONISATION,
        "Cost Function": ModelFeature.COST_FUNCTION,
        "Global Memory Limit": ModelFeature.GLOBAL_MEMORY_LIMIT,
        "Host/Device Data Transfer": ModelFeature.HOST_DEVICE_TRANSFER,
    }
    for row_name, feature in feature_map.items():
        for model in MODEL_COLUMNS:
            if paper[row_name][model] != by_name[model].supports(feature):
                return False
    return True
