"""Classical abstract parallel models (PRAM, BSP, BSPRAM, PEM).

These are the models the paper surveys in Section I-B to motivate why a
GPU-specific abstract model is needed.  Each is implemented as a small
analysable machine with a cost function, and
:mod:`repro.models.features` provides the extended feature-comparison matrix
that generalises Table I of the paper.
"""

from repro.models.base import (
    AbstractParallelModel,
    ModelDescription,
    ModelFeature,
)
from repro.models.bsp import BSPCost, BSPMachine, Superstep
from repro.models.bspram import BSPRAM, BSPRAMCost, BSPRAMSuperstep
from repro.models.features import (
    AGPU_DESCRIPTION,
    ATGPU_DESCRIPTION,
    SWGPU_DESCRIPTION,
    all_model_descriptions,
    classical_model_descriptions,
    consistency_with_paper_table,
    extended_feature_matrix,
    gpu_suitability_ranking,
    paper_table_view,
    render_extended_table,
)
from repro.models.pem import PEMComplexity, PEMMachine
from repro.models.pram import PRAM, PRAMCost, PRAMStep, PRAMVariant

__all__ = [
    "AbstractParallelModel",
    "ModelDescription",
    "ModelFeature",
    "BSPCost",
    "BSPMachine",
    "Superstep",
    "BSPRAM",
    "BSPRAMCost",
    "BSPRAMSuperstep",
    "AGPU_DESCRIPTION",
    "ATGPU_DESCRIPTION",
    "SWGPU_DESCRIPTION",
    "all_model_descriptions",
    "classical_model_descriptions",
    "consistency_with_paper_table",
    "extended_feature_matrix",
    "gpu_suitability_ranking",
    "paper_table_view",
    "render_extended_table",
    "PEMComplexity",
    "PEMMachine",
    "PRAM",
    "PRAMCost",
    "PRAMStep",
    "PRAMVariant",
]
