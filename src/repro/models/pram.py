"""The Parallel Random Access Machine (PRAM).

Fortune & Wyllie's PRAM consists of an unbounded number of synchronous
processors sharing a flat random-access memory with unit-cost access.  It has
no memory hierarchy, no notion of a warp and no communication cost -- which
is exactly why the paper dismisses it as insufficient for GPU modelling.

The implementation provides the standard PRAM variants (EREW / CREW / CRCW),
a work/span style cost function, and a conflict checker that validates a set
of concurrent accesses against the chosen variant's rules.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.models.base import (
    AbstractParallelModel,
    ModelDescription,
    ModelFeature,
)
from repro.utils.validation import ensure_non_negative, ensure_positive_int


class PRAMVariant(enum.Enum):
    """Concurrent-access disciplines of the PRAM."""

    EREW = "exclusive read, exclusive write"
    CREW = "concurrent read, exclusive write"
    CRCW = "concurrent read, concurrent write"


@dataclass(frozen=True)
class PRAMStep:
    """One synchronous PRAM step: per-processor reads, computes and writes."""

    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    operations: int = 1

    def __post_init__(self) -> None:
        ensure_non_negative(self.operations, "operations")


@dataclass(frozen=True)
class PRAMCost:
    """Work/span cost of a PRAM computation."""

    steps: int
    work: float

    @property
    def span(self) -> int:
        """The parallel time (number of synchronous steps)."""
        return self.steps


class PRAM(AbstractParallelModel):
    """A ``p``-processor PRAM of a given access variant."""

    def __init__(self, processors: int, variant: PRAMVariant = PRAMVariant.CREW) -> None:
        self.processors = ensure_positive_int(processors, "processors")
        if not isinstance(variant, PRAMVariant):
            raise TypeError("variant must be a PRAMVariant")
        self.variant = variant

    @property
    def description(self) -> ModelDescription:
        return ModelDescription(
            name="PRAM",
            citation="Fortune & Wyllie, STOC 1978",
            features=frozenset({ModelFeature.SHARED_MEMORY,
                                ModelFeature.COST_FUNCTION}),
        )

    # ------------------------------------------------------------------ #
    # Access-conflict rules
    # ------------------------------------------------------------------ #
    def check_step(self, step: PRAMStep) -> None:
        """Raise :class:`ValueError` if ``step`` violates the access variant."""
        if self.variant in (PRAMVariant.EREW,):
            self._ensure_exclusive(step.reads, "read")
        if self.variant in (PRAMVariant.EREW, PRAMVariant.CREW):
            self._ensure_exclusive(step.writes, "write")

    @staticmethod
    def _ensure_exclusive(addresses: Iterable[int], kind: str) -> None:
        seen: Dict[int, int] = {}
        for address in addresses:
            seen[address] = seen.get(address, 0) + 1
        conflicts = {a: c for a, c in seen.items() if c > 1}
        if conflicts:
            raise ValueError(
                f"exclusive-{kind} violation at addresses {sorted(conflicts)}"
            )

    # ------------------------------------------------------------------ #
    # Cost function
    # ------------------------------------------------------------------ #
    def cost(self, steps: Sequence[PRAMStep]) -> PRAMCost:
        """Cost of a sequence of synchronous steps on this PRAM.

        Every step takes unit time regardless of memory behaviour (the PRAM
        has no memory hierarchy); the work is ``p`` times the per-step
        operation count.
        """
        total_work = 0.0
        for step in steps:
            self.check_step(step)
            total_work += self.processors * step.operations
        return PRAMCost(steps=len(steps), work=total_work)

    def brent_time(self, work: float, span: float) -> float:
        """Brent's theorem bound ``T_p <= work/p + span``.

        Used to schedule an idealised PRAM algorithm onto the model's ``p``
        processors when the algorithm was designed for more.
        """
        ensure_non_negative(work, "work")
        ensure_non_negative(span, "span")
        return work / self.processors + span

    def reduction_span(self, n: int) -> int:
        """Span of a balanced binary-tree reduction of ``n`` values."""
        ensure_positive_int(n, "n")
        return max(1, math.ceil(math.log2(n))) if n > 1 else 0
