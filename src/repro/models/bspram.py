"""Tiskin's Bulk-Synchronous Parallel Random Access Machine (BSPRAM).

The BSPRAM keeps BSP's superstep structure and ``(p, g, L)`` parameters but
replaces point-to-point messaging with a shared main memory: processors have
fast private memory and communicate by reading/writing the shared memory
during the communication phase of a superstep.  The paper notes this is
closer to a GPU than PRAM or BSP, but still lacks the notion of a warp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.models.base import (
    AbstractParallelModel,
    ModelDescription,
    ModelFeature,
)
from repro.utils.validation import ensure_non_negative, ensure_positive_int


@dataclass(frozen=True)
class BSPRAMSuperstep:
    """One BSPRAM superstep.

    Parameters
    ----------
    local_work:
        Maximum operations executed by any processor on its private memory.
    shared_reads / shared_writes:
        Maximum number of words any processor reads from / writes to the
        shared memory during the communication phase.
    """

    local_work: float
    shared_reads: float = 0.0
    shared_writes: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.local_work, "local_work")
        ensure_non_negative(self.shared_reads, "shared_reads")
        ensure_non_negative(self.shared_writes, "shared_writes")

    @property
    def shared_traffic(self) -> float:
        """Total shared-memory words moved by the busiest processor."""
        return self.shared_reads + self.shared_writes


@dataclass(frozen=True)
class BSPRAMCost:
    """Aggregate BSPRAM cost."""

    computation: float
    communication: float
    synchronisation: float

    @property
    def total(self) -> float:
        """``Σ (w_s + g·h_s + L)`` with ``h_s`` the shared-memory traffic."""
        return self.computation + self.communication + self.synchronisation


class BSPRAM(AbstractParallelModel):
    """A BSPRAM machine ``(p, g, L)`` with private + shared memory."""

    def __init__(
        self,
        processors: int,
        g: float,
        L: float,
        private_memory_words: int = 1 << 20,
    ) -> None:
        self.processors = ensure_positive_int(processors, "processors")
        self.g = ensure_non_negative(g, "g")
        self.L = ensure_non_negative(L, "L")
        self.private_memory_words = ensure_positive_int(
            private_memory_words, "private_memory_words"
        )

    @property
    def description(self) -> ModelDescription:
        return ModelDescription(
            name="BSPRAM",
            citation="Tiskin, TCS 1998",
            features=frozenset({
                ModelFeature.PRIVATE_MEMORY,
                ModelFeature.SHARED_MEMORY,
                ModelFeature.MEMORY_HIERARCHY,
                ModelFeature.SYNCHRONISATION,
                ModelFeature.COST_FUNCTION,
                ModelFeature.SHARED_MEMORY_LIMIT,
            }),
        )

    def superstep_cost(self, superstep: BSPRAMSuperstep) -> float:
        """Cost of one superstep."""
        return (
            superstep.local_work
            + self.g * superstep.shared_traffic
            + self.L
        )

    def cost(self, supersteps: Sequence[BSPRAMSuperstep]) -> BSPRAMCost:
        """Itemised cost of a BSPRAM program."""
        computation = sum(s.local_work for s in supersteps)
        communication = sum(self.g * s.shared_traffic for s in supersteps)
        synchronisation = self.L * len(supersteps)
        return BSPRAMCost(
            computation=computation,
            communication=communication,
            synchronisation=synchronisation,
        )

    def validate_private_footprint(self, words: float) -> None:
        """Raise if a processor's working set exceeds its private memory."""
        ensure_non_negative(words, "words")
        if words > self.private_memory_words:
            raise ValueError(
                f"private working set of {words} words exceeds the private "
                f"memory of {self.private_memory_words} words"
            )

    def matrix_multiply_cost(self, n: int) -> BSPRAMCost:
        """Cost of Tiskin-style blocked matrix multiplication of two n×n matrices.

        Each processor computes an ``n/√p × n/√p`` block of the product,
        streaming the required row/column panels through shared memory.  This
        is used as a worked example in the documentation and tests.
        """
        ensure_positive_int(n, "n")
        blocks = max(1, int(round(self.processors ** 0.5)))
        tile = -(-n // blocks)
        work = float(tile * tile * n)          # multiply-adds per processor
        traffic = float(2 * tile * n + tile * tile)
        self.validate_private_footprint(2 * tile * n)
        superstep = BSPRAMSuperstep(
            local_work=work, shared_reads=2 * tile * n, shared_writes=tile * tile
        )
        assert abs(superstep.shared_traffic - traffic) < 1e-9
        return self.cost([superstep])
