"""The Bulk Synchronous Parallel (BSP) model.

Valiant's BSP machine consists of ``p`` processors with private memory,
connected by a network characterised by a per-word communication cost ``g``
and a barrier synchronisation cost ``L``.  A computation is a sequence of
*supersteps*; superstep ``s`` with maximum local work ``w_s`` and maximum
per-processor message volume ``h_s`` (an ``h``-relation) costs

    ``w_s + g·h_s + L``.

The paper notes that the lack of shared memory and the pairwise communication
pattern make BSP a poor fit for GPUs, but its superstep/cost-function
structure is the direct ancestor of the SWGPU and ATGPU round structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.models.base import (
    AbstractParallelModel,
    ModelDescription,
    ModelFeature,
)
from repro.utils.validation import (
    ensure_non_negative,
    ensure_positive_int,
)


@dataclass(frozen=True)
class Superstep:
    """One BSP superstep.

    Parameters
    ----------
    local_work:
        ``w_s`` -- the maximum number of local operations performed by any
        processor during the superstep.
    h_relation:
        ``h_s`` -- the maximum number of words sent or received by any
        processor during the communication phase.
    """

    local_work: float
    h_relation: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.local_work, "local_work")
        ensure_non_negative(self.h_relation, "h_relation")


@dataclass(frozen=True)
class BSPCost:
    """Aggregate cost of a BSP program."""

    computation: float
    communication: float
    synchronisation: float

    @property
    def total(self) -> float:
        """Total BSP cost ``Σ (w_s + g·h_s + L)``."""
        return self.computation + self.communication + self.synchronisation


class BSPMachine(AbstractParallelModel):
    """A BSP machine ``(p, g, L)``."""

    def __init__(self, processors: int, g: float, L: float) -> None:
        self.processors = ensure_positive_int(processors, "processors")
        self.g = ensure_non_negative(g, "g")
        self.L = ensure_non_negative(L, "L")

    @property
    def description(self) -> ModelDescription:
        return ModelDescription(
            name="BSP",
            citation="Valiant, CACM 1990",
            features=frozenset({
                ModelFeature.PRIVATE_MEMORY,
                ModelFeature.SYNCHRONISATION,
                ModelFeature.COST_FUNCTION,
            }),
        )

    def superstep_cost(self, superstep: Superstep) -> float:
        """Cost of one superstep, ``w + g·h + L``."""
        return superstep.local_work + self.g * superstep.h_relation + self.L

    def cost(self, supersteps: Sequence[Superstep]) -> BSPCost:
        """Itemised cost of a sequence of supersteps."""
        computation = sum(s.local_work for s in supersteps)
        communication = sum(self.g * s.h_relation for s in supersteps)
        synchronisation = self.L * len(supersteps)
        return BSPCost(
            computation=computation,
            communication=communication,
            synchronisation=synchronisation,
        )

    # ------------------------------------------------------------------ #
    # Canonical example costings (used in tests and docs)
    # ------------------------------------------------------------------ #
    def broadcast_cost(self, words: int) -> BSPCost:
        """Cost of a one-to-all broadcast of ``words`` words (two-phase)."""
        ensure_non_negative(words, "words")
        scatter = Superstep(local_work=0.0,
                            h_relation=words)
        allgather = Superstep(local_work=0.0,
                              h_relation=words)
        return self.cost([scatter, allgather])

    def reduction_cost(self, n: int, flop_per_item: float = 1.0) -> BSPCost:
        """Cost of reducing ``n`` values: local reduce then gather to one node."""
        ensure_positive_int(n, "n")
        ensure_non_negative(flop_per_item, "flop_per_item")
        per_processor = -(-n // self.processors)  # ceil division
        local = Superstep(local_work=per_processor * flop_per_item,
                          h_relation=1.0)
        combine = Superstep(local_work=self.processors * flop_per_item,
                            h_relation=float(self.processors))
        return self.cost([local, combine])
