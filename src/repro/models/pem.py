"""The Parallel External Memory (PEM) model.

Arge, Goodrich, Nelson & Sitchinava's PEM model has ``P`` processors, each
with a private cache of ``M`` words, sharing an external main memory.  Both
memories are partitioned into blocks of ``B`` words and data moves between
them only in whole blocks; algorithms are analysed by the number of parallel
block transfers (I/Os).  The paper highlights PEM's block-granular transfers
as the feature ATGPU inherits for global memory, while noting PEM lacks
warps and per-group shared memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.base import (
    AbstractParallelModel,
    ModelDescription,
    ModelFeature,
)
from repro.utils.validation import ensure_positive_int


@dataclass(frozen=True)
class PEMComplexity:
    """I/O and computation complexity of a PEM algorithm instance."""

    parallel_io: float
    parallel_computation: float


class PEMMachine(AbstractParallelModel):
    """A PEM machine with ``P`` processors, cache size ``M`` and block size ``B``."""

    def __init__(self, processors: int, cache_words: int, block_words: int) -> None:
        self.processors = ensure_positive_int(processors, "processors")
        self.cache_words = ensure_positive_int(cache_words, "cache_words")
        self.block_words = ensure_positive_int(block_words, "block_words")
        if self.cache_words < self.block_words:
            raise ValueError(
                "the cache must hold at least one block "
                f"(M={cache_words} < B={block_words})"
            )

    @property
    def description(self) -> ModelDescription:
        return ModelDescription(
            name="PEM",
            citation="Arge, Goodrich, Nelson & Sitchinava, SPAA 2008",
            features=frozenset({
                ModelFeature.PRIVATE_MEMORY,
                ModelFeature.MEMORY_HIERARCHY,
                ModelFeature.BLOCK_TRANSFERS,
                ModelFeature.COST_FUNCTION,
                ModelFeature.SPACE_COMPLEXITY,
                ModelFeature.SHARED_MEMORY_LIMIT,
            }),
        )

    # ------------------------------------------------------------------ #
    # Canonical PEM complexities (used for comparison and in tests)
    # ------------------------------------------------------------------ #
    def blocks(self, n: int) -> int:
        """Number of blocks spanned by ``n`` contiguous words."""
        ensure_positive_int(n, "n")
        return math.ceil(n / self.block_words)

    def scan_io(self, n: int) -> float:
        """Parallel I/Os of a scan/map over ``n`` items: ``Θ(n / (P·B))``."""
        return math.ceil(self.blocks(n) / self.processors)

    def reduction_complexity(self, n: int) -> PEMComplexity:
        """PEM complexity of reducing ``n`` values.

        Each processor reduces its ``n/P`` share with ``n/(P·B)`` I/Os, then a
        logarithmic combine over processors completes the result.
        """
        ensure_positive_int(n, "n")
        local_io = math.ceil(self.blocks(n) / self.processors)
        combine_io = max(1, math.ceil(math.log2(self.processors))) if self.processors > 1 else 0
        local_work = math.ceil(n / self.processors)
        combine_work = combine_io
        return PEMComplexity(
            parallel_io=float(local_io + combine_io),
            parallel_computation=float(local_work + combine_work),
        )

    def sort_io(self, n: int) -> float:
        """Parallel I/Os of PEM mergesort: ``Θ((n/(P·B))·log_{M/B}(n/B))``."""
        ensure_positive_int(n, "n")
        n_over_pb = self.blocks(n) / self.processors
        base = self.cache_words / self.block_words
        if base <= 1:
            raise ValueError("cache must exceed one block for the sort bound")
        log_term = max(1.0, math.log(max(self.blocks(n), 2), base))
        return math.ceil(n_over_pb * log_term)

    def matrix_multiply_io(self, n: int) -> float:
        """Parallel I/Os of blocked matrix multiply: ``Θ(n^3/(P·B·√M))``."""
        ensure_positive_int(n, "n")
        return math.ceil(
            n ** 3 / (self.processors * self.block_words * math.sqrt(self.cache_words))
        )
