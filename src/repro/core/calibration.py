"""Calibration of the ATGPU cost parameters from observed timings.

The paper sets ``γ, λ, σ, α, β`` "to a value corresponding to a particular
GPU".  In practice those values are obtained by fitting the cost function to
measured running times; this module performs that fit.

The GPU-cost of one algorithm instance is linear in a transformed parameter
vector: with per-instance aggregate features

    ``x = (Σ transactions, Σ transferred words, Σ waves_i·t_i, Σ q_i, R)``

the cost is ``x · (α, β, 1/γ, λ/γ, σ)``.  Fitting observed total times
against these features by non-negative least squares recovers a physically
meaningful parameter set (all parameters are non-negative by construction).
A transfer-only variant fits ``α`` and ``β`` from a sweep of transfer sizes,
matching how Boyer et al. calibrate their transfer model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost import CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics
from repro.core.occupancy import OccupancyModel


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a cost-parameter fit."""

    parameters: CostParameters
    residual_norm: float
    r_squared: float
    feature_names: Tuple[str, ...]
    coefficients: Tuple[float, ...]

    def predict(self, features: Sequence[float]) -> float:
        """Predict a running time from a raw feature vector."""
        feats = np.asarray(features, dtype=float)
        coefs = np.asarray(self.coefficients, dtype=float)
        if feats.shape != coefs.shape:
            raise ValueError(
                f"expected {coefs.shape[0]} features, got {feats.shape[0]}"
            )
        return float(feats @ coefs)


def _active_set_nnls(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """SciPy-free non-negative least squares by active-set refitting.

    Merely clamping negative unconstrained-lstsq coefficients to zero leaves
    the *remaining* coefficients fitted as if the clamped ones still carried
    their negative weight, biasing every parameter.  Instead, repeatedly drop
    the most-negative coefficient from the active set and refit the
    least-squares problem on the surviving columns until every active
    coefficient is non-negative (the deletion half of Lawson–Hanson NNLS,
    which is exact whenever the dropped columns do not belong in the optimal
    support — the case for the well-conditioned physical fits here).
    """
    columns = design.shape[1]
    active = list(range(columns))
    solution = np.zeros(columns)
    while active:
        sub, *_ = np.linalg.lstsq(design[:, active], target, rcond=None)
        most_negative = int(np.argmin(sub))
        if sub[most_negative] >= 0.0:
            solution[active] = sub
            break
        active.pop(most_negative)
    return np.clip(solution, 0.0, None)


def _nnls(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Non-negative least squares with a SciPy fallback to active-set lstsq."""
    try:
        from scipy.optimize import nnls as scipy_nnls

        solution, _ = scipy_nnls(design, target)
        return solution
    except Exception:
        return _active_set_nnls(design, target)


def _r_squared(target: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination, defined for zero-variance targets.

    A constant target has no variance to explain: the ratio ``ss_res/ss_tot``
    would divide by zero (or, for a *nearly* constant target, blow up on
    rounding noise), so such targets score 1.0 when reproduced exactly and
    0.0 otherwise.  The variance floor is the squared representation noise
    of the target's magnitude (``n·(eps·max|target|)²``) — any genuinely
    varying target sits far above it.
    """
    ss_res = float(np.sum((target - predicted) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    scale = float(np.max(np.abs(target))) if target.size else 0.0
    noise = target.size * (np.finfo(float).eps * scale) ** 2
    if ss_tot <= noise:
        return 1.0 if ss_res <= noise else 0.0
    return 1.0 - ss_res / ss_tot


def feature_vector(
    metrics: AlgorithmMetrics,
    machine: ATGPUMachine,
    occupancy: OccupancyModel,
) -> np.ndarray:
    """Aggregate cost-function features of one algorithm instance.

    Returns ``(Σ transactions, Σ words, Σ waves·t, Σ q, R)`` — the quantities
    the GPU-cost (Expression 2) multiplies by ``α, β, 1/γ, λ/γ, σ``
    respectively.
    """
    transactions = float(metrics.total_transfer_transactions)
    words = float(metrics.total_transfer_words)
    scaled_time = 0.0
    io_blocks = 0.0
    for round_metrics in metrics:
        waves = occupancy.waves(
            thread_blocks=round_metrics.thread_blocks,
            shared_memory_capacity=machine.M,
            shared_words_per_block=round_metrics.shared_words_per_mp,
        )
        scaled_time += waves * round_metrics.time
        io_blocks += round_metrics.io_blocks
    rounds = float(metrics.num_rounds)
    return np.array([transactions, words, scaled_time, io_blocks, rounds])


FEATURE_NAMES: Tuple[str, ...] = (
    "transfer_transactions",
    "transfer_words",
    "occupancy_scaled_time",
    "io_blocks",
    "rounds",
)


def calibrate_cost_parameters(
    metrics_list: Sequence[AlgorithmMetrics],
    observed_total_times: Sequence[float],
    machine: ATGPUMachine,
    occupancy: OccupancyModel,
    nominal: Optional[CostParameters] = None,
) -> CalibrationResult:
    """Fit ``α, β, γ, λ, σ`` from observed total running times.

    Parameters
    ----------
    metrics_list:
        One :class:`AlgorithmMetrics` per observation (typically the same
        algorithm at different input sizes, or a mix of algorithms).
    observed_total_times:
        Observed total running times, one per metrics entry, in the unit the
        resulting parameters should express costs in (seconds in this
        reproduction).
    machine, occupancy:
        Used to compute the occupancy-scaled time feature.
    nominal:
        Optional fallback parameters: whenever a fitted coefficient is zero
        (the observations carried no signal for it, e.g. a sweep where every
        run has the same number of rounds), the corresponding nominal value
        is substituted so the returned :class:`CostParameters` stays usable.
    """
    if len(metrics_list) != len(observed_total_times):
        raise ValueError("metrics_list and observed_total_times must align")
    if len(metrics_list) < 2:
        raise ValueError("calibration needs at least two observations")
    times = np.asarray(observed_total_times, dtype=float)
    if np.any(times <= 0):
        raise ValueError("observed times must all be positive")

    design = np.vstack(
        [feature_vector(m, machine, occupancy) for m in metrics_list]
    )
    coefficients = _nnls(design, times)
    predicted = design @ coefficients
    residual_norm = float(np.linalg.norm(times - predicted))
    r2 = _r_squared(times, predicted)

    alpha, beta, inv_gamma, lam_over_gamma, sigma = (float(c) for c in coefficients)
    if inv_gamma > 0:
        gamma = 1.0 / inv_gamma
        lam = lam_over_gamma * gamma
    elif lam_over_gamma > 0:
        # Operations carried no signal but I/O did: peg gamma to the nominal
        # (or a unit rate) and express the I/O coefficient through lambda.
        gamma = nominal.gamma if nominal is not None else 1.0
        lam = lam_over_gamma * gamma
    else:
        gamma = nominal.gamma if nominal is not None else 1.0
        lam = nominal.lam if nominal is not None else 0.0
    if nominal is not None:
        if alpha == 0.0:
            alpha = nominal.alpha
        if beta == 0.0:
            beta = nominal.beta
        if sigma == 0.0:
            sigma = nominal.sigma

    parameters = CostParameters(
        gamma=gamma, lam=lam, sigma=sigma, alpha=alpha, beta=beta
    )
    return CalibrationResult(
        parameters=parameters,
        residual_norm=residual_norm,
        r_squared=r2,
        feature_names=FEATURE_NAMES,
        coefficients=tuple(float(c) for c in coefficients),
    )


@dataclass(frozen=True)
class TransferCalibrationResult:
    """Result of fitting the Boyer transfer model alone."""

    alpha: float
    beta: float
    r_squared: float

    def cost(self, words: float, transactions: int = 1) -> float:
        """Predicted transfer time for ``words`` words in ``transactions``."""
        return transactions * self.alpha + words * self.beta


def calibrate_transfer_model(
    words: Sequence[float],
    transactions: Sequence[int],
    observed_times: Sequence[float],
) -> TransferCalibrationResult:
    """Fit ``α`` and ``β`` from a sweep of measured transfer times.

    This mirrors the calibration methodology of Boyer et al.: time a set of
    host↔device copies of varying size and regress the observed latency on
    (transaction count, word count).
    """
    w = np.asarray(words, dtype=float)
    tx = np.asarray(transactions, dtype=float)
    t = np.asarray(observed_times, dtype=float)
    if not (w.shape == tx.shape == t.shape):
        raise ValueError("words, transactions and observed_times must align")
    if w.size < 2:
        raise ValueError("transfer calibration needs at least two observations")
    if np.any(t <= 0):
        raise ValueError("observed times must all be positive")
    design = np.column_stack([tx, w])
    coefficients = _nnls(design, t)
    predicted = design @ coefficients
    return TransferCalibrationResult(
        alpha=float(coefficients[0]),
        beta=float(coefficients[1]),
        r_squared=_r_squared(t, predicted),
    )
