"""Pluggable cost-model backends and the backend registry.

The paper's evaluation compares exactly two curves — the ATGPU GPU-cost
(Expression 2) and the kernel-only SWGPU cost — but the machinery that
produces them is generic: every model variant maps the per-round metrics of
an algorithm to a scalar cost on a machine.  This module names that mapping
(the :class:`CostModel` protocol) and keeps a registry of implementations so
that analysis, sweep prediction and experiment sessions can compute
*per-backend* cost series without special-casing any particular pair of
curves.

Built-in backends (registered on import):

==============  ========================================================
``atgpu``         the GPU-cost of Expression (2) — the paper's headline
                  curve
``swgpu``         the same expression with the transfer terms removed
                  (``α = β = 0``), i.e. the kernel-only comparison cost
``perfect``       the perfect-GPU cost of Expression (1) (no occupancy
                  term)
``agpu``          the AGPU asymptotic time view: AGPU has no cost
                  function, so this backend reports the raw device-step
                  count from which AGPU's time complexity is read
                  (unit-less)
``atgpu-async``   Expression (2) with each round's transfers double
                  buffered and overlapped with its kernel (the
                  :class:`~repro.core.transfer.OverlappedTransferModel`
                  pipeline makespan); :func:`make_async_backend` builds
                  variants with other chunk counts
``atgpu-multi``   Expression (2) sharded across several devices: each
                  round's words and thread blocks partition over ``P``
                  GPUs and the round is charged the straggler device
                  time (the :class:`~repro.core.sharding.ShardedCostModel`);
                  :func:`make_sharded_backend` builds variants with other
                  device counts and interconnect-contention factors
``atgpu-topo``    placeholder resolved per spec: Expression (2) over an
                  arbitrary :class:`~repro.core.topology.Topology`
                  (heterogeneous presets, per-socket links, P2P shuffle)
                  via :func:`make_topology_backend` /
                  :func:`ensure_topology_backend`
==============  ========================================================

New backends register through :func:`register_backend`; a convenient way to
build one is :func:`make_backend` with any callable of signature
``(metrics, machine, parameters, occupancy) -> float``.

Every built-in backend also carries a **vectorized whole-sweep evaluator**
(see :mod:`repro.core.batch`): given a :class:`~repro.core.batch.MetricsBatch`
it prices an entire sweep of input sizes as one NumPy array program.
:func:`evaluate_backends_batch` is the sweep-level analogue of
:func:`evaluate_backends`; custom backends without a batch evaluator fall
back to their scalar ``cost`` per size automatically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.batch import (
    MetricsBatch,
    agpu_time_batch,
    gpu_cost_batch,
    overlapped_cost_batch,
    perfect_cost_batch,
    swgpu_cost_batch,
)
from repro.core.comparison import AGPUAnalysis, SWGPUCostModel
from repro.core.cost import ATGPUCostModel, CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics
from repro.core.occupancy import OccupancyModel
from repro.core.sharding import (
    topology_cost_batch,
    topology_gpu_cost,
)
from repro.core.topology import Topology
from repro.core.transfer import OverlappedTransferModel

#: Signature of a backend's evaluation function.
CostFunction = Callable[
    [AlgorithmMetrics, ATGPUMachine, CostParameters, Optional[OccupancyModel]],
    float,
]

#: Signature of a backend's vectorized (whole-sweep) evaluation function.
BatchCostFunction = Callable[
    [MetricsBatch, ATGPUMachine, CostParameters, Optional[OccupancyModel]],
    np.ndarray,
]


@runtime_checkable
class CostModel(Protocol):
    """What analysis and sessions require of a cost-model backend.

    A backend has a registry ``name``, a display ``label`` (used as the
    curve key in normalised figures) and a :meth:`cost` that evaluates one
    algorithm's metrics on one machine.
    """

    name: str
    label: str

    def cost(
        self,
        metrics: AlgorithmMetrics,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: Optional[OccupancyModel] = None,
    ) -> float:
        """Scalar cost of ``metrics`` under this model."""
        ...


@dataclass(frozen=True)
class FunctionBackend:
    """A :class:`CostModel` wrapping a plain evaluation function.

    A backend may additionally carry a vectorized whole-sweep evaluator
    (``evaluate_batch``); backends without one are transparently served by
    the scalar path when a batch evaluation is requested (see
    :func:`evaluate_backends_batch`).
    """

    name: str
    label: str
    evaluate: CostFunction = field(repr=False)
    description: str = ""
    evaluate_batch: Optional[BatchCostFunction] = field(
        default=None, repr=False, compare=False
    )

    def cost(
        self,
        metrics: AlgorithmMetrics,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: Optional[OccupancyModel] = None,
    ) -> float:
        return float(self.evaluate(metrics, machine, parameters, occupancy))

    @property
    def supports_batch(self) -> bool:
        """Whether this backend has a vectorized whole-sweep evaluator."""
        return self.evaluate_batch is not None

    def batch_cost(
        self,
        batch: MetricsBatch,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: Optional[OccupancyModel] = None,
    ) -> np.ndarray:
        """Cost per sweep point, evaluated as one array program."""
        if self.evaluate_batch is None:
            raise ValueError(
                f"backend {self.name!r} has no batch evaluation; use "
                "evaluate_backends_batch for the automatic scalar fallback"
            )
        values = np.asarray(
            self.evaluate_batch(batch, machine, parameters, occupancy),
            dtype=float,
        )
        if values.shape != (batch.num_sizes,):
            raise ValueError(
                f"batch evaluation of backend {self.name!r} returned shape "
                f"{values.shape}, expected ({batch.num_sizes},)"
            )
        return values


def make_backend(
    name: str,
    label: str,
    evaluate: CostFunction,
    description: str = "",
    evaluate_batch: Optional[BatchCostFunction] = None,
) -> FunctionBackend:
    """Build a backend from an evaluation function (does not register it).

    ``evaluate_batch`` optionally supplies the vectorized whole-sweep
    evaluator; leave it ``None`` for custom backends and the sweep machinery
    falls back to calling ``evaluate`` once per size.
    """
    if not name:
        raise ValueError("a cost-model backend needs a non-empty name")
    return FunctionBackend(
        name=name, label=label or name, evaluate=evaluate,
        description=description, evaluate_batch=evaluate_batch,
    )


def backend_supports_batch(backend: CostModel) -> bool:
    """Whether a backend object offers vectorized whole-sweep evaluation."""
    return bool(getattr(backend, "supports_batch", False)) and callable(
        getattr(backend, "batch_cost", None)
    )


def all_backends_support_batch(names: Sequence[str]) -> bool:
    """Whether every named registered backend has a batch evaluator.

    Unknown names yield ``False`` so callers route through the scalar path,
    which raises its usual descriptive :class:`KeyError`.
    """
    try:
        return all(backend_supports_batch(get_backend(name)) for name in names)
    except KeyError:
        return False


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_REGISTRY: Dict[str, CostModel] = {}
#: Serialises registry mutation: serving-layer worker threads resolve
#: backends while benchmark harnesses register/unregister sweep variants,
#: and a torn check-then-set would corrupt the shared table.
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: CostModel, overwrite: bool = False) -> CostModel:
    """Register a backend under its :attr:`~CostModel.name`.

    Registering a second backend under an existing name raises
    :class:`ValueError` unless ``overwrite=True``.  Registration is
    thread-safe; concurrent registrations of the same name resolve to
    exactly one winner (the others raise).
    """
    with _REGISTRY_LOCK:
        if backend.name in _REGISTRY and not overwrite:
            raise ValueError(
                f"a cost-model backend named {backend.name!r} is already "
                "registered; pass overwrite=True to replace it"
            )
        _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op if absent)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def get_backend(name: str) -> CostModel:
    """Look up a registered backend by name.

    Raises :class:`KeyError` listing the registered names when unknown.
    """
    with _REGISTRY_LOCK:
        try:
            return _REGISTRY[name]
        except KeyError as exc:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(
                f"unknown cost-model backend {name!r}; "
                f"registered backends: {known}"
            ) from exc


def backend_names() -> Tuple[str, ...]:
    """Names of every registered backend, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def backend_label(name: str) -> str:
    """Display label for a backend name (the name itself when unregistered)."""
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    return backend.label if backend is not None else name


def evaluate_backends(
    names: Sequence[str],
    metrics: AlgorithmMetrics,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel] = None,
) -> Dict[str, float]:
    """Evaluate several backends on the same metrics, keyed by name."""
    return {
        name: get_backend(name).cost(metrics, machine, parameters, occupancy)
        for name in names
    }


def evaluate_backends_batch(
    names: Sequence[str],
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel] = None,
) -> Dict[str, np.ndarray]:
    """Evaluate several backends over a whole sweep, keyed by name.

    Backends with a vectorized evaluator run as one array program; backends
    without one (custom registrations) fall back to their scalar ``cost``
    once per size, using the per-size metrics the batch retains — or, for
    batches compiled through an array-native factory, metrics materialised
    from the grid on demand.  Either way the result is one
    ``(len(batch.sizes),)`` array per backend.
    """
    out: Dict[str, np.ndarray] = {}
    fallback_metrics = None
    for name in names:
        backend = get_backend(name)
        if backend_supports_batch(backend):
            out[name] = backend.batch_cost(batch, machine, parameters, occupancy)
            continue
        if fallback_metrics is None:
            fallback_metrics = batch.materialized_metrics()
        if not fallback_metrics:
            raise ValueError(
                f"backend {name!r} has no batch evaluation and the batch "
                "retains no per-size metrics for the scalar fallback; "
                "compile the batch from metrics objects"
            )
        out[name] = np.array(
            [
                backend.cost(metrics, machine, parameters, occupancy)
                for metrics in fallback_metrics
            ],
            dtype=float,
        )
    return out


# --------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------- #
def _atgpu_cost(metrics, machine, parameters, occupancy) -> float:
    return ATGPUCostModel(machine, parameters, occupancy).gpu_cost(metrics)


def _swgpu_cost(metrics, machine, parameters, occupancy) -> float:
    return SWGPUCostModel(machine, parameters, occupancy).gpu_cost(metrics)


def _perfect_cost(metrics, machine, parameters, occupancy) -> float:
    return ATGPUCostModel(machine, parameters, occupancy).perfect_cost(metrics)


def _agpu_time(metrics, machine, parameters, occupancy) -> float:
    return AGPUAnalysis.from_metrics(metrics).time


#: Chunk count of the default asynchronous backend (classic double buffer).
DEFAULT_ASYNC_CHUNKS = 2


def overlapped_cost(
    metrics: AlgorithmMetrics,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel],
    chunks: int = DEFAULT_ASYNC_CHUNKS,
) -> float:
    """Expression (2) with per-round compute/copy overlap.

    Every round keeps its kernel-side cost (occupancy-scaled compute + I/O)
    and synchronisation ``σ`` from the serial model, but its transfers may
    be split into ``chunks`` pieces and pipelined against the kernel through
    an :class:`~repro.core.transfer.OverlappedTransferModel`.  Chunking pays
    the per-transaction ``α`` once per chunk, so rounds with little to hide
    (e.g. a reduction's single-word result copy) can lose more to that
    overhead than overlap recovers; like a real scheduler, the backend
    streams a round only when it wins, charging each round the cheaper of
    its serial and pipelined costs.  The cost is therefore never above the
    serial ``atgpu`` cost, and with ``chunks=1`` it is exactly equal.
    """
    model = ATGPUCostModel(machine, parameters, occupancy)
    overlap = OverlappedTransferModel(
        alpha=parameters.alpha, beta=parameters.beta, chunks=chunks
    )
    metrics.validate_against(machine)
    total = 0.0
    for round_metrics in metrics:
        breakdown = model.round_breakdown(round_metrics, use_occupancy=True)
        kernel = breakdown.compute + breakdown.io
        pipelined = overlap.round_cost(round_metrics, kernel)
        serial = breakdown.transfer + kernel
        total += min(pipelined, serial) + breakdown.synchronisation
    return total


def make_async_backend(
    chunks: int = DEFAULT_ASYNC_CHUNKS, name: str = "", label: str = ""
) -> FunctionBackend:
    """Build an overlapped-transfer backend with a given chunk count.

    The default instance is registered as ``atgpu-async``; deeper pipelines
    can be registered alongside it, e.g.
    ``register_backend(make_async_backend(8))`` yields ``atgpu-async8``.
    """

    def _cost(metrics, machine, parameters, occupancy) -> float:
        return overlapped_cost(metrics, machine, parameters, occupancy, chunks)

    def _batch(batch, machine, parameters, occupancy):
        return overlapped_cost_batch(batch, machine, parameters, occupancy, chunks)

    default = chunks == DEFAULT_ASYNC_CHUNKS
    return make_backend(
        name or ("atgpu-async" if default else f"atgpu-async{chunks}"),
        label or ("ATGPU (async)" if default else f"ATGPU (async, {chunks} chunks)"),
        _cost,
        "Expression (2) with per-round transfers double buffered into "
        f"{chunks} chunks and overlapped with the kernel",
        evaluate_batch=_batch,
    )


#: Device count of the default multi-GPU (sharded) backend.
DEFAULT_SHARD_DEVICES = 2
#: Interconnect-contention factor of the default sharded backend
#: (independent per-device links).
DEFAULT_SHARD_CONTENTION = 0.0


def make_sharded_backend(
    devices: int = DEFAULT_SHARD_DEVICES,
    contention: float = DEFAULT_SHARD_CONTENTION,
    name: str = "",
    label: str = "",
) -> FunctionBackend:
    """Build a multi-device sharded backend (Expression 2 over ``P`` GPUs).

    The default instance is registered as ``atgpu-multi`` (two devices,
    independent links); other pool shapes register alongside it, e.g.
    ``register_backend(make_sharded_backend(4))`` yields ``atgpu-multi4``
    and ``make_sharded_backend(4, contention=0.5)`` yields
    ``atgpu-multi4-c0.5``.  With ``devices=1`` the cost is bit-for-bit the
    serial ``atgpu`` backend's.

    Since the topology refactor this factory is a thin shim over the
    homogeneous :class:`~repro.core.topology.Topology` with the same
    ``(devices, contention)`` — the general
    :class:`~repro.core.sharding.TopologyCostModel` degenerates to the
    PR 3 :class:`~repro.core.sharding.ShardedCostModel` bit for bit on
    such fleets (enforced by tests), so one evaluator serves both.
    """

    topology = Topology.homogeneous(devices, contention)

    def _cost(metrics, machine, parameters, occupancy) -> float:
        return topology_gpu_cost(
            metrics, machine, parameters, occupancy, topology
        )

    def _batch(batch, machine, parameters, occupancy):
        return topology_cost_batch(
            batch, machine, parameters, occupancy, topology
        )

    default = (
        devices == DEFAULT_SHARD_DEVICES
        and contention == DEFAULT_SHARD_CONTENTION
    )
    if not name:
        name = "atgpu-multi" if default else f"atgpu-multi{devices}"
        if contention != DEFAULT_SHARD_CONTENTION:
            name += f"-c{contention:g}"
    if not label:
        label = (
            "ATGPU (multi)" if default
            else f"ATGPU (multi, {devices} devices"
            + (f", contention {contention:g})" if contention else ")")
        )
    return make_backend(
        name,
        label,
        _cost,
        f"Expression (2) sharded across {devices} devices (straggler time, "
        f"interconnect contention {contention:g})",
        evaluate_batch=_batch,
    )


#: Placeholder backend name an :class:`~repro.experiments.spec.ExperimentSpec`
#: may list to mean "the spec's own topology": resolution replaces it with
#: the auto-registered per-topology backend (see ``spec.resolved_backends``).
TOPOLOGY_BACKEND = "atgpu-topo"


def make_topology_backend(
    topology: Topology,
    planner: str = "load-aware",
    name: str = "",
    label: str = "",
) -> FunctionBackend:
    """Build a topology-aware backend (Expression 2 over a device fleet).

    The default name is derived from the topology's stable hash
    (``atgpu-topo-<hash8>``, with an ``-even`` suffix for the even
    planner), so the same fleet always resolves to the same registry
    entry — which is what lets sessions and the serving layer coalesce
    requests sharing a topology.
    """
    if not isinstance(topology, Topology):
        raise TypeError(
            f"topology must be a Topology, got {type(topology).__name__}"
        )
    if not name:
        name = f"{TOPOLOGY_BACKEND}-{topology.topology_hash()[:8]}"
        if planner != "load-aware":
            name += f"-{planner}"
    if not label:
        label = (
            f"ATGPU (topology, {topology.num_devices} devices"
            + (f", {planner} planner)" if planner != "load-aware" else ")")
        )

    def _cost(metrics, machine, parameters, occupancy) -> float:
        return topology_gpu_cost(
            metrics, machine, parameters, occupancy, topology,
            planner=planner,
        )

    def _batch(batch, machine, parameters, occupancy):
        return topology_cost_batch(
            batch, machine, parameters, occupancy, topology,
            planner=planner,
        )

    return make_backend(
        name,
        label,
        _cost,
        f"Expression (2) over a {topology.num_devices}-device topology "
        f"(hash {topology.topology_hash()}, {planner} shard planner)",
        evaluate_batch=_batch,
    )


def ensure_topology_backend(
    topology: Topology, planner: str = "load-aware"
) -> str:
    """Idempotently register the backend for ``topology``; return its name.

    Thread-safe and race-tolerant: concurrent calls for the same fleet
    all return the same name with exactly one registration winning.
    """
    backend = make_topology_backend(topology, planner=planner)
    with _REGISTRY_LOCK:
        if backend.name not in _REGISTRY:
            _REGISTRY[backend.name] = backend
    return backend.name


ATGPU_BACKEND = register_backend(make_backend(
    "atgpu", "ATGPU", _atgpu_cost,
    "GPU-cost of Expression (2): transfer + occupancy-scaled kernel cost",
    evaluate_batch=gpu_cost_batch,
))
SWGPU_BACKEND = register_backend(make_backend(
    "swgpu", "SWGPU", _swgpu_cost,
    "Expression (2) with the transfer terms removed (α = β = 0)",
    evaluate_batch=swgpu_cost_batch,
))
PERFECT_BACKEND = register_backend(make_backend(
    "perfect", "Perfect", _perfect_cost,
    "perfect-GPU cost of Expression (1): every thread block runs at once",
    evaluate_batch=perfect_cost_batch,
))
AGPU_BACKEND = register_backend(make_backend(
    "agpu", "AGPU", _agpu_time,
    "AGPU asymptotic time view (unit-less device steps; AGPU has no cost "
    "function)",
    evaluate_batch=agpu_time_batch,
))
ATGPU_ASYNC_BACKEND = register_backend(make_async_backend())
ATGPU_MULTI_BACKEND = register_backend(make_sharded_backend())

#: The backends evaluated by default throughout the package.
DEFAULT_BACKENDS: Tuple[str, ...] = ("atgpu", "swgpu", "perfect")
