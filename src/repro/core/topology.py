"""First-class device-fleet topology descriptions and shard planning.

The multi-device model of :mod:`repro.core.sharding` (PR 3's
``atgpu-multi`` backend) assumes ``P`` identical devices splitting each
round near-evenly over one shared host link.  Real fleets are not like
that: devices come in mixed generations (per-device GPU presets and
occupancy limits), NUMA hosts expose one link complex per socket, and
peer-to-peer fabrics let devices exchange partial results without
touching the host link at all.

This module is the *description* half of the topology-aware refactor:

* :class:`DeviceSpec` — one device of the fleet: an optional per-device
  GPU preset override, an optional occupancy (hardware block limit)
  override, and the host socket the device is attached to.
* :class:`LinkSpec` — one interconnect: a ``"host"`` link (per-socket
  PCIe complex with its own contention factor and optional ``α``/``β``
  transfer-parameter overrides) or a ``"p2p"`` fabric (device↔device
  transfers for shuffle/merge phases, bypassing the host).
* :class:`Topology` — the frozen, hashable, JSON-round-trippable bundle
  that flows through :class:`~repro.experiments.spec.ExperimentSpec` →
  :class:`~repro.core.sharding.TopologyCostModel` →
  :class:`~repro.simulator.device_pool.DevicePool`, so model, simulator
  and serving keys all consume one fleet description.
* :func:`plan_shards` — the load-aware partitioner: integer shard sizes
  minimising the straggler finish time given per-device throughputs.
  With equal throughputs it reduces **exactly** to
  near-even splitting (first shards carry the extras), which is what
  makes homogeneous topologies bit-for-bit identical to PR 3.

The cost-model half (:class:`~repro.core.sharding.TopologyCostModel`
and its batch evaluator) lives in :mod:`repro.core.sharding`; the
P2P shuffle terms are grounded in Choi et al., *Accelerating
Communication for Parallel Programming Models on GPU Systems*.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive_int,
    reject_unknown_fields,
)

#: The interconnect kinds a :class:`LinkSpec` may declare.
LINK_KINDS: Tuple[str, ...] = ("host", "p2p")


def contended_streaming(total, shard, contention):
    """Streaming charge of one device on a shared link: ``c·total + (1−c)·shard``.

    ``contention`` interpolates between fully independent per-device
    links (``0``: the device streams only its own ``shard``) and one
    fully serialised link (``1``: every one of the link's ``total``
    units queues).  This is the single formula behind both the analytic
    sharded transfer models and the simulator's link stretch; it works
    elementwise on NumPy arrays, so the scalar and batch evaluators
    share it verbatim.
    """
    return contention * total + (1.0 - contention) * shard


def contention_stretch(devices, contention):
    """Streaming-time multiplier on a link shared by ``P`` devices.

    The ``1 + c·(P−1)`` factor previously duplicated by
    ``core/sharding.py`` and ``simulator/device_pool.py`` — with equal
    shards it is :func:`contended_streaming` evaluated at
    ``total = P·shard`` (each device's shard is stretched by the
    ``P−1`` peers contending for the link), so model and simulator
    cannot drift apart.
    """
    return 1.0 + contention * (devices - 1)


@dataclass(frozen=True)
class DeviceSpec:
    """One device of a fleet.

    Parameters
    ----------
    preset:
        Name of the GPU preset this device runs as (see
        :func:`repro.core.presets.get_preset`).  ``None`` means "the
        fleet default" — whatever preset the enclosing experiment spec
        names — which is what keeps homogeneous topologies exactly
        equivalent to the PR 3 ``(devices, contention)`` description.
    hardware_block_limit:
        Optional per-device occupancy override (the ``H`` of the wave
        count ``⌈k_i/(k'·ℓ)⌉``); ``None`` keeps the resolved preset's.
    socket:
        Index of the host socket (and therefore host link) the device
        hangs off.  Sockets are just labels; every socket referenced by
        a device must have exactly one ``"host"`` link.
    name:
        Optional human-readable label (ignored by the model).
    """

    preset: Optional[str] = None
    hardware_block_limit: Optional[int] = None
    socket: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.preset is not None and not self.preset:
            raise ValueError("a device preset override must be a non-empty name")
        if self.hardware_block_limit is not None:
            ensure_positive_int(
                self.hardware_block_limit, "hardware_block_limit"
            )
        ensure_non_negative_int(self.socket, "socket")

    @property
    def is_default(self) -> bool:
        """Whether the device carries no preset/occupancy override."""
        return self.preset is None and self.hardware_block_limit is None

    def to_dict(self) -> Dict[str, Any]:
        """The device as a plain JSON-serialisable dictionary."""
        return {
            "preset": self.preset,
            "hardware_block_limit": self.hardware_block_limit,
            "socket": self.socket,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceSpec":
        """Rebuild a device from :meth:`to_dict` output.

        Unknown keys raise a typed
        :class:`~repro.utils.validation.UnknownFieldError` naming the
        offending field.
        """
        reject_unknown_fields(
            "DeviceSpec", data, (f.name for f in fields(cls))
        )
        return cls(**dict(data))


@dataclass(frozen=True)
class LinkSpec:
    """One interconnect of a fleet.

    Parameters
    ----------
    kind:
        ``"host"`` for a socket's host↔device link complex, ``"p2p"``
        for a device↔device fabric (at most one per topology).
    socket:
        The socket a ``"host"`` link serves (ignored for ``"p2p"``).
    contention:
        Share of the streaming that serialises on this link, in
        ``[0, 1]`` — the same factor the PR 3 model uses, but now per
        link: devices on different sockets do not contend with each
        other.
    alpha, beta:
        Optional per-transaction / per-word cost overrides for
        transfers on this link; ``None`` falls back to the fleet cost
        parameters (the spec preset's ``α``/``β``).  A P2P fabric is
        typically given a smaller ``β`` (higher bandwidth) and ``alpha``
        (lower latency) than the host link.
    """

    kind: str = "host"
    socket: int = 0
    contention: float = 0.0
    alpha: Optional[float] = None
    beta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise ValueError(
                f"link kind must be one of {', '.join(LINK_KINDS)}; "
                f"got {self.kind!r}"
            )
        ensure_non_negative_int(self.socket, "socket")
        ensure_in_range(self.contention, "contention", 0.0, 1.0)
        if self.alpha is not None:
            ensure_non_negative(self.alpha, "alpha")
        if self.beta is not None:
            ensure_non_negative(self.beta, "beta")

    def to_dict(self) -> Dict[str, Any]:
        """The link as a plain JSON-serialisable dictionary."""
        return {
            "kind": self.kind,
            "socket": self.socket,
            "contention": self.contention,
            "alpha": self.alpha,
            "beta": self.beta,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkSpec":
        """Rebuild a link from :meth:`to_dict` output (typed unknown-key error)."""
        reject_unknown_fields(
            "LinkSpec", data, (f.name for f in fields(cls))
        )
        return cls(**dict(data))


@dataclass(frozen=True)
class Topology:
    """A frozen, hashable description of a multi-device fleet.

    ``devices`` lists the fleet's devices in pool order; ``links`` its
    interconnects — exactly one ``"host"`` link per referenced socket
    and at most one ``"p2p"`` fabric.  The default single ``links``
    entry (one uncontended host link on socket 0) makes
    ``Topology(devices=(DeviceSpec(),) * P)`` the homogeneous fleet.

    Instances round-trip through :meth:`to_dict` / :meth:`from_dict`
    (and JSON), are hashable (usable as cache keys directly), and carry
    a memoised :meth:`topology_hash` over their canonical JSON — the
    token included in spec hashes, batch-cache keys and the serving
    layer's coalescing keys.
    """

    devices: Tuple[DeviceSpec, ...] = (DeviceSpec(),)
    links: Tuple[LinkSpec, ...] = (LinkSpec(),)

    def __post_init__(self) -> None:
        devices = tuple(
            DeviceSpec.from_dict(d) if isinstance(d, Mapping) else d
            for d in self.devices
        )
        links = tuple(
            LinkSpec.from_dict(l) if isinstance(l, Mapping) else l
            for l in self.links
        )
        if not devices:
            raise ValueError("a topology needs at least one device")
        for device in devices:
            if not isinstance(device, DeviceSpec):
                raise TypeError(
                    f"topology devices must be DeviceSpec, got "
                    f"{type(device).__name__}"
                )
        for link in links:
            if not isinstance(link, LinkSpec):
                raise TypeError(
                    f"topology links must be LinkSpec, got "
                    f"{type(link).__name__}"
                )
        host_sockets = [l.socket for l in links if l.kind == "host"]
        if len(set(host_sockets)) != len(host_sockets):
            raise ValueError(
                "a topology may declare at most one host link per socket"
            )
        if sum(1 for l in links if l.kind == "p2p") > 1:
            raise ValueError(
                "a topology may declare at most one p2p fabric"
            )
        missing = sorted(
            {d.socket for d in devices} - set(host_sockets)
        )
        if missing:
            raise ValueError(
                "every device socket needs a host link; missing host "
                f"link(s) for socket(s): {', '.join(map(str, missing))}"
            )
        object.__setattr__(self, "devices", devices)
        object.__setattr__(self, "links", links)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def homogeneous(
        cls, devices: int, contention: float = 0.0
    ) -> "Topology":
        """The PR 3 fleet: ``P`` identical devices on one host link.

        This is the degenerate topology the ``atgpu-multi`` backends are
        thin shims over; its predictions are bit-for-bit identical to
        :class:`~repro.core.sharding.ShardedCostModel` with the same
        ``(devices, contention)``.
        """
        ensure_positive_int(devices, "devices")
        return cls(
            devices=tuple(DeviceSpec() for _ in range(devices)),
            links=(LinkSpec(kind="host", socket=0, contention=contention),),
        )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        """Number of devices in the fleet."""
        return len(self.devices)

    @property
    def sockets(self) -> Tuple[int, ...]:
        """Distinct sockets devices sit on, sorted."""
        return tuple(sorted({d.socket for d in self.devices}))

    def host_link(self, socket: int) -> LinkSpec:
        """The host link serving ``socket``."""
        for link in self.links:
            if link.kind == "host" and link.socket == socket:
                return link
        raise KeyError(f"topology has no host link for socket {socket}")

    @property
    def p2p_link(self) -> Optional[LinkSpec]:
        """The fleet's p2p fabric, or ``None``."""
        for link in self.links:
            if link.kind == "p2p":
                return link
        return None

    @property
    def has_p2p(self) -> bool:
        """Whether the fleet declares a device↔device fabric."""
        return self.p2p_link is not None

    def devices_on_socket(self, socket: int) -> Tuple[int, ...]:
        """Indices of the devices attached to ``socket``, in pool order."""
        return tuple(
            index for index, d in enumerate(self.devices)
            if d.socket == socket
        )

    @property
    def is_uniform(self) -> bool:
        """Whether the fleet degenerates to the PR 3 description.

        True when no device carries an override, everything sits on one
        socket whose host link keeps the fleet ``α``/``β``, and there is
        no p2p fabric — i.e. the topology is fully described by
        ``(devices, contention)`` and prices bit-for-bit like
        :class:`~repro.core.sharding.ShardedCostModel`.
        """
        if not all(d.is_default for d in self.devices):
            return False
        if len(self.sockets) != 1 or self.has_p2p:
            return False
        link = self.host_link(self.sockets[0])
        return link.alpha is None and link.beta is None

    # ------------------------------------------------------------------ #
    # Throughput weights
    # ------------------------------------------------------------------ #
    def throughputs(
        self, parameters=None, occupancy=None
    ) -> Tuple[float, ...]:
        """Relative per-device throughput weights for shard planning.

        A device's weight is ``γ · k' · H`` — its time scale times the
        number of thread blocks it can have resident per wave — resolved
        from its preset override (or the supplied fleet-default
        ``parameters``/``occupancy``; the package default preset when
        neither is given).  Devices with identical resolutions get
        *identical* weights, so homogeneous fleets plan exactly the
        near-even PR 3 splits.
        """
        from repro.core.presets import DEFAULT_PRESET, get_preset

        if parameters is None:
            parameters = DEFAULT_PRESET.parameters
        if occupancy is None:
            occupancy = DEFAULT_PRESET.occupancy
        weights = []
        for device in self.devices:
            if device.preset is None:
                params, occ = parameters, occupancy
            else:
                preset = get_preset(device.preset)
                params, occ = preset.parameters, preset.occupancy
            limit = (
                device.hardware_block_limit
                if device.hardware_block_limit is not None
                else occ.hardware_block_limit
            )
            weights.append(params.gamma * occ.physical_mps * limit)
        return tuple(weights)

    # ------------------------------------------------------------------ #
    # Serialisation and hashing
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The topology as a plain JSON-serialisable dictionary."""
        return {
            "devices": [d.to_dict() for d in self.devices],
            "links": [l.to_dict() for l in self.links],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Topology":
        """Rebuild a topology from :meth:`to_dict` output.

        Unknown keys (at any level) raise a typed
        :class:`~repro.utils.validation.UnknownFieldError` naming the
        offending field — a ``"topolgy"``-style typo can never fall back
        to a silently homogeneous fleet.
        """
        reject_unknown_fields(
            "Topology", data, (f.name for f in fields(cls))
        )
        payload = dict(data)
        if "devices" in payload:
            payload["devices"] = tuple(
                DeviceSpec.from_dict(d) if isinstance(d, Mapping) else d
                for d in payload["devices"]
            )
        if "links" in payload:
            payload["links"] = tuple(
                LinkSpec.from_dict(l) if isinstance(l, Mapping) else l
                for l in payload["links"]
            )
        return cls(**payload)

    def to_json(self) -> str:
        """The topology as canonical (sorted-key) JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Topology":
        """Rebuild a topology from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def topology_hash(self) -> str:
        """Stable short hash of the canonical JSON (memoised).

        This token is what spec hashes, batch-cache prediction keys and
        the serving layer's coalescing keys include, and what
        auto-registered topology backends are named after.
        """
        cached = self.__dict__.get("_topology_hash")
        if cached is None:
            cached = hashlib.sha256(
                self.to_json().encode("utf-8")
            ).hexdigest()[:16]
            # repro-lint: disable=FRZ001 -- write-once memo derived from frozen fields
            object.__setattr__(self, "_topology_hash", cached)
        return cached


# --------------------------------------------------------------------- #
# Load-aware shard planning
# --------------------------------------------------------------------- #
def plan_shards(total: int, weights: Sequence[float]) -> List[int]:
    """Integer shard sizes minimising the straggler finish time.

    Splits ``total`` indivisible units (thread blocks, words) across
    devices with relative ``weights`` (units-per-time throughputs): each
    device starts from the floor of its proportional share
    ``⌊total·wᵢ/W⌋`` and the remaining units go one at a time to the
    device whose finish time ``(sᵢ+1)/wᵢ`` after taking the unit is
    smallest (ties to the lowest index) — the standard greedy
    water-filling, optimal for minimising ``max sᵢ/wᵢ`` over integer
    apportionments.

    **Equal weights reduce exactly** to
    :func:`repro.core.sharding.shard_sizes` (first ``total % P`` shards
    carry one extra unit) — taken as a dedicated branch so no floating
    point touches the homogeneous case.  Shards may be zero (those
    devices idle).
    """
    ensure_non_negative_int(total, "total")
    if not weights:
        raise ValueError("plan_shards needs at least one device weight")
    for weight in weights:
        if not weight > 0:
            raise ValueError(
                f"device weights must be positive, got {weight!r}"
            )
    count = len(weights)
    if all(w == weights[0] for w in weights):
        base, extra = divmod(total, count)
        return [base + (1 if index < extra else 0) for index in range(count)]
    scale = float(sum(weights))
    shards = [int(math.floor(total * w / scale)) for w in weights]
    remaining = total - sum(shards)
    for _ in range(remaining):
        index = min(
            range(count), key=lambda i: (shards[i] + 1.0) / weights[i]
        )
        shards[index] += 1
    return shards


def plan_bounds(
    total: int, weights: Sequence[float]
) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` bounds realising :func:`plan_shards`.

    One bound per device, in order; empty shards produce zero-width
    bounds (``lo == hi``) so callers can skip idle devices while keeping
    device indices aligned with the topology.
    """
    bounds = []
    lo = 0
    for size in plan_shards(total, weights):
        bounds.append((lo, lo + size))
        lo += size
    return bounds


def straggler_finish(
    shards: Sequence[float], weights: Sequence[float]
) -> float:
    """The straggler's finish time ``max sᵢ/wᵢ`` of a given split.

    The objective :func:`plan_shards` minimises; exposed so benchmarks
    and tests can compare load-aware splits against even baselines.
    """
    if len(shards) != len(weights):
        raise ValueError(
            f"got {len(shards)} shards but {len(weights)} weights"
        )
    return max(
        (shard / weight for shard, weight in zip(shards, weights)),
        default=0.0,
    )
