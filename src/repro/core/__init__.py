"""The ATGPU model core: machine, metrics, cost functions and analysis.

This package is the reproduction of the paper's primary contribution
(Sections II and III): the ``ATGPU(p, b, M, G)`` abstract machine, the
per-round analysis metrics, the Boyer host↔device transfer model, the
perfect-GPU and GPU cost functions (Expressions 1 and 2), the SWGPU/AGPU
comparison baselines, sweep-level prediction, and calibration of the cost
parameters from observed timings.
"""

from repro.core.analysis import AnalysisReport, analyse_metrics, format_report
from repro.core.backends import (
    CostModel,
    DEFAULT_ASYNC_CHUNKS,
    DEFAULT_BACKENDS,
    DEFAULT_SHARD_CONTENTION,
    DEFAULT_SHARD_DEVICES,
    FunctionBackend,
    backend_label,
    backend_names,
    evaluate_backends,
    get_backend,
    make_async_backend,
    make_backend,
    make_sharded_backend,
    overlapped_cost,
    register_backend,
    unregister_backend,
)
from repro.core.calibration import (
    CalibrationResult,
    TransferCalibrationResult,
    calibrate_cost_parameters,
    calibrate_transfer_model,
    feature_vector,
)
from repro.core.comparison import (
    AGPUAnalysis,
    FEATURE_ROWS,
    MODEL_COLUMNS,
    SWGPUCostModel,
    feature_count,
    model_feature_table,
    model_supports,
    render_feature_table,
)
from repro.core.cost import ATGPUCostModel, CostBreakdown, CostParameters
from repro.core.machine import ATGPUMachine, perfect_machine_for
from repro.core.metrics import (
    AlgorithmMetrics,
    CapacityError,
    MetricsBuilder,
    RoundMetrics,
)
from repro.core.occupancy import (
    OccupancyModel,
    blocks_per_multiprocessor,
    wave_count,
)
from repro.core.sharding import (
    ShardedCostModel,
    ShardedTransferModel,
    largest_shard,
    shard_sizes,
    sharded_gpu_cost,
)
from repro.core.prediction import (
    PredictionComparison,
    SweepObservation,
    SweepPrediction,
    predict_sweep,
)
from repro.core.presets import (
    DEFAULT_PRESET,
    GPUPreset,
    GTX_650,
    GTX_980,
    GTX_1080,
    PRESETS,
    TESLA_K40,
    get_preset,
    preset_names,
    register_preset,
)
from repro.core.transfer import (
    BoyerTransferModel,
    OverlappedTransferModel,
    TransferDirection,
    TransferEvent,
    TransferPlan,
)

__all__ = [
    "AnalysisReport",
    "analyse_metrics",
    "format_report",
    "CostModel",
    "DEFAULT_ASYNC_CHUNKS",
    "DEFAULT_BACKENDS",
    "DEFAULT_SHARD_CONTENTION",
    "DEFAULT_SHARD_DEVICES",
    "FunctionBackend",
    "backend_label",
    "backend_names",
    "evaluate_backends",
    "get_backend",
    "make_async_backend",
    "make_backend",
    "make_sharded_backend",
    "overlapped_cost",
    "register_backend",
    "unregister_backend",
    "CalibrationResult",
    "TransferCalibrationResult",
    "calibrate_cost_parameters",
    "calibrate_transfer_model",
    "feature_vector",
    "AGPUAnalysis",
    "FEATURE_ROWS",
    "MODEL_COLUMNS",
    "SWGPUCostModel",
    "feature_count",
    "model_feature_table",
    "model_supports",
    "render_feature_table",
    "ATGPUCostModel",
    "CostBreakdown",
    "CostParameters",
    "ATGPUMachine",
    "perfect_machine_for",
    "AlgorithmMetrics",
    "CapacityError",
    "MetricsBuilder",
    "RoundMetrics",
    "OccupancyModel",
    "blocks_per_multiprocessor",
    "wave_count",
    "ShardedCostModel",
    "ShardedTransferModel",
    "largest_shard",
    "shard_sizes",
    "sharded_gpu_cost",
    "PredictionComparison",
    "SweepObservation",
    "SweepPrediction",
    "predict_sweep",
    "DEFAULT_PRESET",
    "GPUPreset",
    "GTX_650",
    "GTX_980",
    "GTX_1080",
    "PRESETS",
    "TESLA_K40",
    "get_preset",
    "preset_names",
    "register_preset",
    "BoyerTransferModel",
    "OverlappedTransferModel",
    "TransferDirection",
    "TransferEvent",
    "TransferPlan",
]
