"""Host ↔ device data-transfer cost model.

Section III of the paper adopts the linear latency model of Boyer et al.
("Improving GPU performance prediction with data transfer modeling",
IPDPSW 2013): a transfer of ``n`` words issued as ``n̂`` transactions costs

    ``T = n̂·α + n·β``

where ``α`` is the fixed per-transaction overhead (driver call, DMA setup,
pinning of pageable memory, ...) and ``β`` is the per-word streaming cost
(the inverse of the effective interconnect bandwidth).  The per-round inward
and outward costs are ``T_I(i) = Î_i·α + I_i·β`` and
``T_O(i) = Ô_i·α + O_i·β``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.metrics import RoundMetrics
from repro.utils.validation import (
    ensure_non_negative,
    ensure_non_negative_int,
)


class TransferDirection(enum.Enum):
    """Direction of a host↔device transfer."""

    HOST_TO_DEVICE = "inward"
    DEVICE_TO_HOST = "outward"


@dataclass(frozen=True)
class TransferEvent:
    """One logical transfer transaction (one array moved in one direction)."""

    direction: TransferDirection
    words: float
    label: str = ""

    def __post_init__(self) -> None:
        ensure_non_negative(self.words, "words")
        if not isinstance(self.direction, TransferDirection):
            raise TypeError("direction must be a TransferDirection")


@dataclass(frozen=True)
class BoyerTransferModel:
    """The linear transfer-cost model ``T = transactions·α + words·β``.

    Parameters
    ----------
    alpha:
        Per-transaction fixed overhead.  Units are whatever cost unit the
        surrounding :class:`~repro.core.cost.CostParameters` uses (the paper
        keeps the cost function unitless; the simulator uses seconds).
    beta:
        Per-word streaming cost (inverse effective bandwidth).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.alpha, "alpha")
        ensure_non_negative(self.beta, "beta")

    def cost(self, words: float, transactions: int = 1) -> float:
        """Cost of moving ``words`` words in ``transactions`` transactions."""
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        if words > 0 and transactions == 0:
            raise ValueError("moving a positive number of words requires >= 1 transaction")
        return transactions * self.alpha + words * self.beta

    def inward_cost(self, metrics: RoundMetrics) -> float:
        """``T_I(i) = Î_i·α + I_i·β`` for one round."""
        return self.cost(metrics.inward_words, metrics.inward_transactions)

    def outward_cost(self, metrics: RoundMetrics) -> float:
        """``T_O(i) = Ô_i·α + O_i·β`` for one round."""
        return self.cost(metrics.outward_words, metrics.outward_transactions)

    def round_cost(self, metrics: RoundMetrics) -> float:
        """Total transfer cost of one round, ``T_I(i) + T_O(i)``."""
        return self.inward_cost(metrics) + self.outward_cost(metrics)

    def events_cost(self, events: Iterable[TransferEvent]) -> float:
        """Cost of an explicit list of transfer events."""
        total = 0.0
        for event in events:
            total += self.cost(event.words, 1 if event.words >= 0 else 0)
        return total

    def effective_bandwidth(self, words: float, transactions: int = 1) -> float:
        """Achieved words-per-cost-unit for a transfer of ``words`` words.

        Illustrates the familiar small-transfer penalty: as ``words`` grows
        the effective bandwidth approaches ``1/β``; for small transfers it is
        dominated by ``α``.
        """
        if words <= 0:
            raise ValueError("effective bandwidth requires words > 0")
        return words / self.cost(words, transactions)


@dataclass(frozen=True)
class TransferPlan:
    """An explicit per-round schedule of transfer events.

    The pseudocode analyzer produces one plan per round (one event per ``W``
    statement); the plan can be converted to the aggregate counts stored in
    :class:`~repro.core.metrics.RoundMetrics`.
    """

    events: Tuple[TransferEvent, ...]

    @staticmethod
    def from_events(events: Sequence[TransferEvent]) -> "TransferPlan":
        """Build a plan from a sequence of events."""
        return TransferPlan(events=tuple(events))

    @property
    def inward_events(self) -> List[TransferEvent]:
        """Events moving data host → device."""
        return [e for e in self.events
                if e.direction is TransferDirection.HOST_TO_DEVICE]

    @property
    def outward_events(self) -> List[TransferEvent]:
        """Events moving data device → host."""
        return [e for e in self.events
                if e.direction is TransferDirection.DEVICE_TO_HOST]

    @property
    def inward_words(self) -> float:
        """``I_i`` implied by the plan."""
        return sum(e.words for e in self.inward_events)

    @property
    def outward_words(self) -> float:
        """``O_i`` implied by the plan."""
        return sum(e.words for e in self.outward_events)

    @property
    def inward_transactions(self) -> int:
        """``Î_i`` implied by the plan (one transaction per event)."""
        return len(self.inward_events)

    @property
    def outward_transactions(self) -> int:
        """``Ô_i`` implied by the plan."""
        return len(self.outward_events)

    def total_words(self) -> float:
        """Total words moved by the plan in either direction."""
        return self.inward_words + self.outward_words
