"""Host ↔ device data-transfer cost model.

Section III of the paper adopts the linear latency model of Boyer et al.
("Improving GPU performance prediction with data transfer modeling",
IPDPSW 2013): a transfer of ``n`` words issued as ``n̂`` transactions costs

    ``T = n̂·α + n·β``

where ``α`` is the fixed per-transaction overhead (driver call, DMA setup,
pinning of pageable memory, ...) and ``β`` is the per-word streaming cost
(the inverse of the effective interconnect bandwidth).  The per-round inward
and outward costs are ``T_I(i) = Î_i·α + I_i·β`` and
``T_O(i) = Ô_i·α + O_i·β``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.metrics import RoundMetrics
from repro.utils.validation import (
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive_int,
)


class TransferDirection(enum.Enum):
    """Direction of a host↔device transfer."""

    HOST_TO_DEVICE = "inward"
    DEVICE_TO_HOST = "outward"


@dataclass(frozen=True)
class TransferEvent:
    """One logical transfer transaction (one array moved in one direction).

    A zero-word event is a *marker*: it records that a direction was touched
    (e.g. a ``W`` statement whose slice turned out empty) but moves nothing,
    costs nothing — not even the per-transaction ``α`` — and does not count
    as a transaction.  Only events with ``words > 0`` are charged.
    """

    direction: TransferDirection
    words: float
    label: str = ""

    @property
    def is_marker(self) -> bool:
        """``True`` for zero-word events (uncharged, not a transaction)."""
        return self.words == 0

    def __post_init__(self) -> None:
        ensure_non_negative(self.words, "words")
        if not isinstance(self.direction, TransferDirection):
            raise TypeError("direction must be a TransferDirection")


@dataclass(frozen=True)
class BoyerTransferModel:
    """The linear transfer-cost model ``T = transactions·α + words·β``.

    Parameters
    ----------
    alpha:
        Per-transaction fixed overhead.  Units are whatever cost unit the
        surrounding :class:`~repro.core.cost.CostParameters` uses (the paper
        keeps the cost function unitless; the simulator uses seconds).
    beta:
        Per-word streaming cost (inverse effective bandwidth).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.alpha, "alpha")
        ensure_non_negative(self.beta, "beta")

    def cost(self, words: float, transactions: int = 1) -> float:
        """Cost of moving ``words`` words in ``transactions`` transactions."""
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        if words > 0 and transactions == 0:
            raise ValueError("moving a positive number of words requires >= 1 transaction")
        return transactions * self.alpha + words * self.beta

    def inward_cost(self, metrics: RoundMetrics) -> float:
        """``T_I(i) = Î_i·α + I_i·β`` for one round."""
        return self.cost(metrics.inward_words, metrics.inward_transactions)

    def outward_cost(self, metrics: RoundMetrics) -> float:
        """``T_O(i) = Ô_i·α + O_i·β`` for one round."""
        return self.cost(metrics.outward_words, metrics.outward_transactions)

    def round_cost(self, metrics: RoundMetrics) -> float:
        """Total transfer cost of one round, ``T_I(i) + T_O(i)``."""
        return self.inward_cost(metrics) + self.outward_cost(metrics)

    def events_cost(self, events: Iterable[TransferEvent]) -> float:
        """Cost of an explicit list of transfer events.

        Each event with ``words > 0`` is one transaction (``α + words·β``);
        zero-word marker events are free (see :class:`TransferEvent`),
        matching the transaction counts reported by :class:`TransferPlan`.
        """
        total = 0.0
        for event in events:
            total += self.cost(event.words, 1 if event.words > 0 else 0)
        return total

    def effective_bandwidth(self, words: float, transactions: int = 1) -> float:
        """Achieved words-per-cost-unit for a transfer of ``words`` words.

        Illustrates the familiar small-transfer penalty: as ``words`` grows
        the effective bandwidth approaches ``1/β``; for small transfers it is
        dominated by ``α``.
        """
        if words <= 0:
            raise ValueError("effective bandwidth requires words > 0")
        return words / self.cost(words, transactions)


@dataclass(frozen=True)
class TransferPlan:
    """An explicit per-round schedule of transfer events.

    The pseudocode analyzer produces one plan per round (one event per ``W``
    statement); the plan can be converted to the aggregate counts stored in
    :class:`~repro.core.metrics.RoundMetrics`.
    """

    events: Tuple[TransferEvent, ...]

    @staticmethod
    def from_events(events: Sequence[TransferEvent]) -> "TransferPlan":
        """Build a plan from a sequence of events."""
        return TransferPlan(events=tuple(events))

    @property
    def inward_events(self) -> List[TransferEvent]:
        """Events moving data host → device."""
        return [e for e in self.events
                if e.direction is TransferDirection.HOST_TO_DEVICE]

    @property
    def outward_events(self) -> List[TransferEvent]:
        """Events moving data device → host."""
        return [e for e in self.events
                if e.direction is TransferDirection.DEVICE_TO_HOST]

    @property
    def inward_words(self) -> float:
        """``I_i`` implied by the plan."""
        return sum(e.words for e in self.inward_events)

    @property
    def outward_words(self) -> float:
        """``O_i`` implied by the plan."""
        return sum(e.words for e in self.outward_events)

    @property
    def inward_transactions(self) -> int:
        """``Î_i`` implied by the plan.

        One transaction per event that actually moves data; zero-word marker
        events are not transactions, matching
        :meth:`BoyerTransferModel.events_cost`.
        """
        return sum(1 for e in self.inward_events if not e.is_marker)

    @property
    def outward_transactions(self) -> int:
        """``Ô_i`` implied by the plan (zero-word markers excluded)."""
        return sum(1 for e in self.outward_events if not e.is_marker)

    def total_words(self) -> float:
        """Total words moved by the plan in either direction."""
        return self.inward_words + self.outward_words


@dataclass(frozen=True)
class OverlappedTransferModel:
    """Chunked, double-buffered variant of the Boyer transfer model.

    Real pipelines split a round's data into ``chunks`` pieces and stream
    them: while chunk ``c`` computes, chunk ``c+1`` is copied in and chunk
    ``c-1`` is copied out, so transfer time hides behind kernel time
    (CrystalGPU-style double buffering; ``chunks=2`` is the classic double
    buffer, larger values model deeper pipelines).

    The per-round cost is the makespan of a three-stage linear pipeline
    (inward copy → kernel → outward copy) over ``chunks`` equal chunks, each
    stage on its own engine::

        T_I/C + t_k/C + T_O/C + (C - 1)·max(T_I, t_k, T_O)/C

    where ``T_I = C·Î·α + I·β`` and ``T_O = C·Ô·α + O·β`` are the *chunked*
    stage totals (every transaction splits into ``C`` smaller ones, so the
    fixed overhead ``α`` is paid ``C`` times per logical transfer) and
    ``t_k`` is the round's kernel-side cost supplied by the caller.  The
    makespan always satisfies ``max(stages) ≤ cost ≤ sum(stages)``: overlap
    can hide everything but the slowest stage, never more.  With
    ``chunks=1`` the cost degenerates to the serial ``T_I + t_k + T_O``.
    """

    alpha: float
    beta: float
    chunks: int = 2

    def __post_init__(self) -> None:
        ensure_non_negative(self.alpha, "alpha")
        ensure_non_negative(self.beta, "beta")
        ensure_positive_int(self.chunks, "chunks")

    @property
    def serial_model(self) -> BoyerTransferModel:
        """The underlying serial Boyer model (same ``α``/``β``, no chunking)."""
        return BoyerTransferModel(alpha=self.alpha, beta=self.beta)

    # ------------------------------------------------------------------ #
    # Stage costs
    # ------------------------------------------------------------------ #
    def chunked_inward_cost(self, metrics: RoundMetrics) -> float:
        """Total inward stage cost with every transaction split into chunks."""
        return self.serial_model.cost(
            metrics.inward_words, self.chunks * metrics.inward_transactions
        )

    def chunked_outward_cost(self, metrics: RoundMetrics) -> float:
        """Total outward stage cost with every transaction split into chunks."""
        return self.serial_model.cost(
            metrics.outward_words, self.chunks * metrics.outward_transactions
        )

    def stage_costs(
        self, metrics: RoundMetrics, kernel_cost: float
    ) -> Tuple[float, float, float]:
        """The three chunked stage totals ``(T_I, t_k, T_O)`` of one round."""
        ensure_non_negative(kernel_cost, "kernel_cost")
        return (
            self.chunked_inward_cost(metrics),
            kernel_cost,
            self.chunked_outward_cost(metrics),
        )

    # ------------------------------------------------------------------ #
    # Overlapped round cost
    # ------------------------------------------------------------------ #
    def round_cost(self, metrics: RoundMetrics, kernel_cost: float) -> float:
        """Overlapped cost of one round (pipeline makespan, see class docs)."""
        stages = self.stage_costs(metrics, kernel_cost)
        total = sum(stages)
        bottleneck = max(stages)
        c = self.chunks
        return total / c + (c - 1) * bottleneck / c

    def serial_round_cost(self, metrics: RoundMetrics, kernel_cost: float) -> float:
        """The un-overlapped comparison cost ``T_I + t_k + T_O`` (unchunked)."""
        serial = self.serial_model
        return (
            serial.inward_cost(metrics)
            + float(kernel_cost)
            + serial.outward_cost(metrics)
        )

    def overlap_saving(self, metrics: RoundMetrics, kernel_cost: float) -> float:
        """Serial cost minus overlapped cost for one round (can be negative:
        chunking pays ``α`` per extra transaction, which deep pipelines may
        not win back on rounds with little to hide)."""
        return self.serial_round_cost(metrics, kernel_cost) - self.round_cost(
            metrics, kernel_cost
        )
