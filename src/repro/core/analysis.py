"""High-level analysis reports combining metrics and both cost functions.

:class:`AnalysisReport` is the object a user gets back when they ask "analyse
this algorithm at this input size on this GPU": it bundles the per-round
metrics (Section III), the ATGPU perfect cost and GPU-cost (Expressions 1
and 2), the SWGPU comparison cost, and the predicted transfer proportion
``ΔT`` used in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.backends import DEFAULT_BACKENDS, get_backend
from repro.core.comparison import SWGPUCostModel
from repro.core.cost import ATGPUCostModel, CostBreakdown, CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics
from repro.core.occupancy import OccupancyModel


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the model says about one algorithm run at one input size."""

    algorithm: str
    input_size: int
    machine: ATGPUMachine
    metrics: AlgorithmMetrics
    perfect_breakdown: CostBreakdown
    gpu_breakdown: CostBreakdown
    swgpu_cost: float
    #: Scalar cost per evaluated cost-model backend (at least the built-in
    #: ``atgpu`` / ``swgpu`` / ``perfect`` trio when built by
    #: :func:`analyse_metrics`).
    backend_costs: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_rounds(self) -> int:
        """``R`` -- number of rounds."""
        return self.metrics.num_rounds

    @property
    def perfect_cost(self) -> float:
        """Expression (1)."""
        return self.perfect_breakdown.total

    @property
    def gpu_cost(self) -> float:
        """Expression (2) -- the paper's "ATGPU cost" in every figure."""
        return self.gpu_breakdown.total

    @property
    def atgpu_cost(self) -> float:
        """Alias of :attr:`gpu_cost` (the cost plotted as "ATGPU")."""
        return self.gpu_cost

    @property
    def transfer_cost(self) -> float:
        """Predicted total transfer cost ``Σ (T_I + T_O)``."""
        return self.gpu_breakdown.transfer

    @property
    def kernel_cost(self) -> float:
        """Predicted kernel-side cost (what SWGPU captures)."""
        return self.gpu_breakdown.kernel

    @property
    def predicted_transfer_proportion(self) -> float:
        """``ΔT`` of Figure 6."""
        return self.gpu_breakdown.transfer_proportion

    def backend_cost(self, name: str) -> float:
        """Scalar cost of this run under a named cost-model backend.

        Costs recorded at analysis time are returned directly; the built-in
        ``atgpu`` / ``swgpu`` / ``perfect`` backends always resolve from the
        stored breakdowns even when not explicitly requested.
        """
        if name in self.backend_costs:
            return self.backend_costs[name]
        builtin = {
            "atgpu": self.gpu_cost,
            "swgpu": self.swgpu_cost,
            "perfect": self.perfect_cost,
        }
        if name in builtin:
            return builtin[name]
        known = ", ".join(sorted({*self.backend_costs, *builtin}))
        raise KeyError(
            f"report for {self.algorithm!r} has no cost for backend {name!r}; "
            f"available backends: {known}"
        )

    def as_dict(self) -> Dict[str, float]:
        """Flatten the headline numbers for tabular output / serialisation."""
        return {
            "input_size": float(self.input_size),
            "rounds": float(self.num_rounds),
            "time": float(self.metrics.total_time),
            "io_blocks": float(self.metrics.total_io_blocks),
            "transfer_words": float(self.metrics.total_transfer_words),
            "global_words": float(self.metrics.max_global_words),
            "shared_words_per_mp": float(self.metrics.max_shared_words_per_mp),
            "perfect_cost": float(self.perfect_cost),
            "gpu_cost": float(self.gpu_cost),
            "swgpu_cost": float(self.swgpu_cost),
            "transfer_cost": float(self.transfer_cost),
            "kernel_cost": float(self.kernel_cost),
            "predicted_transfer_proportion": float(
                self.predicted_transfer_proportion
            ),
        }


def analyse_metrics(
    metrics: AlgorithmMetrics,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: OccupancyModel,
    algorithm: str = "",
    input_size: int = 0,
    backends: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Build an :class:`AnalysisReport` for pre-computed metrics.

    This is the workhorse behind :meth:`repro.algorithms.base.GPUAlgorithm.analyse`
    and the experiment session.  It validates the metrics against the machine
    (raising :class:`repro.core.metrics.CapacityError` if the algorithm does
    not fit) and evaluates every requested cost-model backend.  ``backends``
    defaults to the built-in trio (:data:`repro.core.backends.DEFAULT_BACKENDS`);
    the breakdown-based ``atgpu`` / ``swgpu`` / ``perfect`` costs are always
    computed, so extra names only add work for genuinely new backends.
    """
    atgpu = ATGPUCostModel(machine, parameters, occupancy)
    swgpu = SWGPUCostModel(machine, parameters, occupancy)
    perfect = atgpu.breakdown(metrics, use_occupancy=False)
    gpu = atgpu.breakdown(metrics, use_occupancy=True)
    swgpu_cost = swgpu.gpu_cost(metrics)
    backend_costs = {
        "atgpu": gpu.total,
        "swgpu": swgpu_cost,
        "perfect": perfect.total,
    }
    for name in backends if backends is not None else DEFAULT_BACKENDS:
        if name not in backend_costs:
            backend_costs[name] = get_backend(name).cost(
                metrics, machine, parameters, occupancy
            )
    return AnalysisReport(
        algorithm=algorithm or metrics.name,
        input_size=input_size,
        machine=machine,
        metrics=metrics,
        perfect_breakdown=perfect,
        gpu_breakdown=gpu,
        swgpu_cost=swgpu_cost,
        backend_costs=backend_costs,
    )


def format_report(report: AnalysisReport, precision: int = 4) -> str:
    """Render an :class:`AnalysisReport` as a small human-readable block."""
    lines = [
        f"Algorithm      : {report.algorithm}",
        f"Input size     : {report.input_size}",
        f"Machine        : {report.machine.describe()}",
        f"Rounds (R)     : {report.num_rounds}",
        f"Time  Σt_i     : {report.metrics.total_time:.{precision}g}",
        f"I/O   Σq_i     : {report.metrics.total_io_blocks:.{precision}g}",
        f"Transfer words : {report.metrics.total_transfer_words:.{precision}g}",
        f"Perfect cost   : {report.perfect_cost:.{precision}g}",
        f"GPU cost       : {report.gpu_cost:.{precision}g}",
        f"SWGPU cost     : {report.swgpu_cost:.{precision}g}",
        f"Predicted ΔT   : {report.predicted_transfer_proportion:.{precision}g}",
    ]
    return "\n".join(lines)
