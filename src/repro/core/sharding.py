"""Multi-device sharded execution of the ATGPU cost model.

The paper charges every transfer to a single host↔device link and every
kernel to a single GPU.  Real deployments shard a round's work across ``P``
devices (CrystalGPU-style transparent multi-GPU utilisation): each device
receives its shard of the inward words, runs its shard of the thread blocks,
and returns its shard of the outward words, while the host interconnect —
one PCIe/NVLink complex shared by every device — becomes the contended
resource.

This module prices that regime analytically:

* :class:`ShardedTransferModel` partitions each round's inward/outward words
  across ``P`` devices and charges the *straggler* device's link time.  A
  ``contention`` factor interpolates between fully independent per-device
  links (``contention=0``: every device streams its shard concurrently) and
  one fully shared serial interconnect (``contention=1``: all words queue on
  the same link, recovering the serial Boyer streaming time exactly).
* :class:`ShardedCostModel` extends the GPU-cost (Expression 2) the same
  way: each round's ``k_i`` thread blocks split near-evenly across ``P``
  occupancy-identical devices and the round is charged the per-round
  **maximum** (straggler) device time.

Both degeneracies are exact: ``P=1`` reproduces
:class:`~repro.core.transfer.BoyerTransferModel` /
:class:`~repro.core.cost.ATGPUCostModel` bit for bit, and ``contention=1``
reproduces the serial streaming term for any ``P``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.cost import ATGPUCostModel, CostBreakdown, CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, RoundMetrics
from repro.core.occupancy import OccupancyModel
from repro.core.transfer import BoyerTransferModel
from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive_int,
)


def largest_shard(words: float, devices: int) -> float:
    """Words carried by the most-loaded device when sharding ``words`` ways.

    Whole-word counts shard like :func:`repro.algorithms.base.chunk_bounds`
    (the first shards carry one extra word), so the straggler holds
    ``⌈words / devices⌉``; non-integral word counts (continuous analyses)
    split exactly evenly.  With one device the shard is the whole transfer.
    """
    ensure_non_negative(words, "words")
    ensure_positive_int(devices, "devices")
    if words == 0:
        return 0.0
    if float(words).is_integer():
        return float(math.ceil(words / devices))
    return words / devices


def shard_sizes(total: int, devices: int) -> List[int]:
    """Near-equal integer shard sizes (possibly zero-padded to ``devices``).

    The first ``total % devices`` shards carry one extra element; when
    ``devices > total`` the trailing shards are empty (those devices idle).
    """
    ensure_non_negative_int(total, "total")
    ensure_positive_int(devices, "devices")
    base, extra = divmod(total, devices)
    return [base + (1 if index < extra else 0) for index in range(devices)]


@dataclass(frozen=True)
class ShardedTransferModel:
    """Boyer transfer costs over ``P`` devices sharing a host interconnect.

    Parameters
    ----------
    alpha, beta:
        The per-transaction and per-word costs of the underlying
        :class:`~repro.core.transfer.BoyerTransferModel`.
    devices:
        ``P`` -- number of devices the transfer is sharded across.
    contention:
        Share of the streaming that serialises on the host interconnect, in
        ``[0, 1]``.  ``0`` models independent per-device links (each device
        streams its shard concurrently; the round waits for the straggler's
        shard); ``1`` models one fully shared link (every word queues, so the
        streaming term equals the serial ``words·β`` regardless of ``P``).
        Intermediate values interpolate linearly, matching the measured
        behaviour of PCIe switches under concurrent DMA.

    The per-transaction ``α`` is charged once per logical transaction: every
    device issues its own sub-transaction, but the DMA setups proceed
    concurrently, so the straggler pays only its own fixed overhead.
    """

    alpha: float
    beta: float
    devices: int = 1
    contention: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.alpha, "alpha")
        ensure_non_negative(self.beta, "beta")
        ensure_positive_int(self.devices, "devices")
        ensure_in_range(self.contention, "contention", 0.0, 1.0)

    @property
    def serial_model(self) -> BoyerTransferModel:
        """The single-link Boyer model with the same ``α``/``β``."""
        return BoyerTransferModel(alpha=self.alpha, beta=self.beta)

    def cost(self, words: float, transactions: int = 1) -> float:
        """Straggler-device time of moving ``words`` words sharded ``P`` ways.

        ``contention·words·β`` streams on the shared link plus
        ``(1-contention)·shard·β`` on the straggler's private link, after the
        straggler's ``transactions·α`` setup.  With ``devices=1`` or
        ``contention=1`` this is exactly the serial Boyer cost.
        """
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        if words > 0 and transactions == 0:
            raise ValueError(
                "moving a positive number of words requires >= 1 transaction"
            )
        if self.devices == 1:
            # Exact single-link degeneracy (no interpolation rounding).
            streaming = float(words)
        else:
            shard = largest_shard(words, self.devices)
            streaming = (
                self.contention * words + (1.0 - self.contention) * shard
            )
        return transactions * self.alpha + streaming * self.beta

    def inward_cost(self, metrics: RoundMetrics) -> float:
        """Sharded ``T_I(i)`` for one round."""
        return self.cost(metrics.inward_words, metrics.inward_transactions)

    def outward_cost(self, metrics: RoundMetrics) -> float:
        """Sharded ``T_O(i)`` for one round."""
        return self.cost(metrics.outward_words, metrics.outward_transactions)

    def round_cost(self, metrics: RoundMetrics) -> float:
        """Sharded transfer cost of one round, ``T_I(i) + T_O(i)``."""
        return self.inward_cost(metrics) + self.outward_cost(metrics)

    def serial_round_cost(self, metrics: RoundMetrics) -> float:
        """The single-link comparison cost of the same round."""
        return self.serial_model.round_cost(metrics)


class ShardedCostModel:
    """Expression (2) evaluated over ``P`` identical devices (straggler time).

    Each round's inward words, thread blocks and outward words shard
    near-evenly across the pool; the round costs the slowest device's
    transfer + kernel time plus one pool-wide synchronisation ``σ``.  The
    per-round maximum is the straggler device: shards are near-equal, so the
    straggler is the device holding ``⌈k_i/P⌉`` blocks and the largest word
    shards.

    ``devices=1`` reproduces :meth:`~repro.core.cost.ATGPUCostModel.gpu_cost`
    exactly, whatever the contention factor.
    """

    def __init__(
        self,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: OccupancyModel,
        devices: int = 1,
        contention: float = 0.0,
    ) -> None:
        if occupancy is None:
            raise ValueError(
                "sharded GPU-cost requires an OccupancyModel (the per-device "
                "wave count of Expression 2)"
            )
        self.machine = machine
        self.parameters = parameters
        self.occupancy = occupancy
        self.devices = ensure_positive_int(devices, "devices")
        self.contention = ensure_in_range(contention, "contention", 0.0, 1.0)
        self.transfer_model = ShardedTransferModel(
            alpha=parameters.alpha,
            beta=parameters.beta,
            devices=self.devices,
            contention=self.contention,
        )

    # ------------------------------------------------------------------ #
    # Per-round costs
    # ------------------------------------------------------------------ #
    def straggler_blocks(self, thread_blocks: int) -> int:
        """Thread blocks on the most-loaded device, ``⌈k_i / P⌉``."""
        ensure_positive_int(thread_blocks, "thread_blocks")
        return math.ceil(thread_blocks / self.devices)

    def _device_kernel_terms(
        self, blocks: int, metrics: RoundMetrics
    ) -> Tuple[float, float]:
        """``(compute, io)`` cost of one round on a device holding ``blocks``.

        The device's round time scales by its wave count
        ``⌈blocks/(k'·ℓ)⌉`` and it serves its proportional share of the
        round's I/O blocks ``q_i``.  Shared by the straggler charge and the
        per-device diagnostic so both stay numerically identical.
        """
        params = self.parameters
        waves = self.occupancy.waves(
            thread_blocks=blocks,
            shared_memory_capacity=self.machine.M,
            shared_words_per_block=metrics.shared_words_per_mp,
        )
        io_share = blocks / metrics.thread_blocks
        return (
            waves * metrics.time / params.gamma,
            params.lam * metrics.io_blocks * io_share / params.gamma,
        )

    def round_breakdown(self, metrics: RoundMetrics) -> CostBreakdown:
        """Itemised straggler-device cost of one round.

        The kernel side is the straggler's (``⌈k_i/P⌉`` blocks) compute and
        I/O time; the transfer side is the sharded straggler link time.
        """
        compute, io = self._device_kernel_terms(
            self.straggler_blocks(metrics.thread_blocks), metrics
        )
        return CostBreakdown(
            inward_transfer=self.transfer_model.inward_cost(metrics),
            outward_transfer=self.transfer_model.outward_cost(metrics),
            compute=compute,
            io=io,
            synchronisation=self.parameters.sigma,
        )

    def round_cost(self, metrics: RoundMetrics) -> float:
        """Scalar straggler cost of one round."""
        return self.round_breakdown(metrics).total

    # ------------------------------------------------------------------ #
    # Whole-algorithm costs
    # ------------------------------------------------------------------ #
    def breakdown(self, metrics: AlgorithmMetrics) -> CostBreakdown:
        """Itemised sharded cost of a whole algorithm (sum over rounds)."""
        metrics.validate_against(self.machine)
        total = CostBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
        for round_metrics in metrics:
            total = total + self.round_breakdown(round_metrics)
        return total

    def gpu_cost(self, metrics: AlgorithmMetrics) -> float:
        """The sharded GPU-cost: sum of per-round straggler times."""
        return self.breakdown(metrics).total

    def serial_cost(self, metrics: AlgorithmMetrics) -> float:
        """The single-device GPU-cost (Expression 2) for comparison."""
        return ATGPUCostModel(
            self.machine, self.parameters, self.occupancy
        ).gpu_cost(metrics)

    def scaling_speedup(self, metrics: AlgorithmMetrics) -> float:
        """Serial-over-sharded cost ratio (1.0 at ``P=1`` by construction)."""
        sharded = self.gpu_cost(metrics)
        if sharded == 0:
            return 1.0
        return self.serial_cost(metrics) / sharded

    def device_round_times(
        self, metrics: RoundMetrics
    ) -> Tuple[float, ...]:
        """Per-device kernel-side times of one round (straggler first).

        Diagnostic view of the imbalance: devices receive their
        :func:`shard_sizes` share of the thread blocks; devices with no
        blocks are idle for the round.
        """
        times = []
        for blocks in shard_sizes(metrics.thread_blocks, self.devices):
            if blocks == 0:
                times.append(0.0)
                continue
            compute, io = self._device_kernel_terms(blocks, metrics)
            times.append(compute + io)
        return tuple(times)


def sharded_gpu_cost(
    metrics: AlgorithmMetrics,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel],
    devices: int = 1,
    contention: float = 0.0,
) -> float:
    """Functional form of :meth:`ShardedCostModel.gpu_cost` (backend entry)."""
    model = ShardedCostModel(
        machine, parameters, occupancy, devices=devices, contention=contention
    )
    return model.gpu_cost(metrics)
