"""Multi-device sharded execution of the ATGPU cost model.

The paper charges every transfer to a single host↔device link and every
kernel to a single GPU.  Real deployments shard a round's work across ``P``
devices (CrystalGPU-style transparent multi-GPU utilisation): each device
receives its shard of the inward words, runs its shard of the thread blocks,
and returns its shard of the outward words, while the host interconnect —
one PCIe/NVLink complex shared by every device — becomes the contended
resource.

This module prices that regime analytically:

* :class:`ShardedTransferModel` partitions each round's inward/outward words
  across ``P`` devices and charges the *straggler* device's link time.  A
  ``contention`` factor interpolates between fully independent per-device
  links (``contention=0``: every device streams its shard concurrently) and
  one fully shared serial interconnect (``contention=1``: all words queue on
  the same link, recovering the serial Boyer streaming time exactly).
* :class:`ShardedCostModel` extends the GPU-cost (Expression 2) the same
  way: each round's ``k_i`` thread blocks split near-evenly across ``P``
  occupancy-identical devices and the round is charged the per-round
  **maximum** (straggler) device time.

Both degeneracies are exact: ``P=1`` reproduces
:class:`~repro.core.transfer.BoyerTransferModel` /
:class:`~repro.core.cost.ATGPUCostModel` bit for bit, and ``contention=1``
reproduces the serial streaming term for any ``P``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import (
    BatchBreakdown,
    MetricsBatch,
    _column_sum,
    blocks_per_mp_grid,
    sharded_cost_batch,
    wave_grid,
)
from repro.core.cost import ATGPUCostModel, CostBreakdown, CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, RoundMetrics
from repro.core.occupancy import OccupancyModel
from repro.core.topology import (
    Topology,
    contended_streaming,
    contention_stretch,
    plan_shards,
)
from repro.core.transfer import BoyerTransferModel
from repro.utils.numerics import ceil_div
from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive_int,
)

#: Shard planners a :class:`TopologyCostModel` may use: ``"load-aware"``
#: sizes shards by per-device throughput (:func:`plan_shards`);
#: ``"even"`` keeps the PR 3 near-even split regardless of throughput
#: (the baseline the benchmarks compare against).
PLANNERS: Tuple[str, ...] = ("load-aware", "even")


def largest_shard(words: float, devices: int) -> float:
    """Words carried by the most-loaded device when sharding ``words`` ways.

    Whole-word counts shard like :func:`repro.algorithms.base.chunk_bounds`
    (the first shards carry one extra word), so the straggler holds
    ``⌈words / devices⌉``; non-integral word counts (continuous analyses)
    split exactly evenly.  With one device the shard is the whole transfer.
    """
    ensure_non_negative(words, "words")
    ensure_positive_int(devices, "devices")
    if words == 0:
        return 0.0
    if float(words).is_integer():
        return float(ceil_div(words, devices))
    return words / devices


def shard_sizes(total: int, devices: int) -> List[int]:
    """Near-equal integer shard sizes (possibly zero-padded to ``devices``).

    The first ``total % devices`` shards carry one extra element; when
    ``devices > total`` the trailing shards are empty (those devices idle).
    """
    ensure_non_negative_int(total, "total")
    ensure_positive_int(devices, "devices")
    base, extra = divmod(total, devices)
    return [base + (1 if index < extra else 0) for index in range(devices)]


@dataclass(frozen=True)
class ShardedTransferModel:
    """Boyer transfer costs over ``P`` devices sharing a host interconnect.

    Parameters
    ----------
    alpha, beta:
        The per-transaction and per-word costs of the underlying
        :class:`~repro.core.transfer.BoyerTransferModel`.
    devices:
        ``P`` -- number of devices the transfer is sharded across.
    contention:
        Share of the streaming that serialises on the host interconnect, in
        ``[0, 1]``.  ``0`` models independent per-device links (each device
        streams its shard concurrently; the round waits for the straggler's
        shard); ``1`` models one fully shared link (every word queues, so the
        streaming term equals the serial ``words·β`` regardless of ``P``).
        Intermediate values interpolate linearly, matching the measured
        behaviour of PCIe switches under concurrent DMA.

    The per-transaction ``α`` is charged once per logical transaction: every
    device issues its own sub-transaction, but the DMA setups proceed
    concurrently, so the straggler pays only its own fixed overhead.
    """

    alpha: float
    beta: float
    devices: int = 1
    contention: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.alpha, "alpha")
        ensure_non_negative(self.beta, "beta")
        ensure_positive_int(self.devices, "devices")
        ensure_in_range(self.contention, "contention", 0.0, 1.0)

    @property
    def serial_model(self) -> BoyerTransferModel:
        """The single-link Boyer model with the same ``α``/``β``."""
        return BoyerTransferModel(alpha=self.alpha, beta=self.beta)

    def cost(self, words: float, transactions: int = 1) -> float:
        """Straggler-device time of moving ``words`` words sharded ``P`` ways.

        ``contention·words·β`` streams on the shared link plus
        ``(1-contention)·shard·β`` on the straggler's private link, after the
        straggler's ``transactions·α`` setup.  With ``devices=1`` or
        ``contention=1`` this is exactly the serial Boyer cost.
        """
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        if words > 0 and transactions == 0:
            raise ValueError(
                "moving a positive number of words requires >= 1 transaction"
            )
        if self.devices == 1:
            # Exact single-link degeneracy (no interpolation rounding).
            streaming = float(words)
        else:
            shard = largest_shard(words, self.devices)
            streaming = contended_streaming(words, shard, self.contention)
        return transactions * self.alpha + streaming * self.beta

    def inward_cost(self, metrics: RoundMetrics) -> float:
        """Sharded ``T_I(i)`` for one round."""
        return self.cost(metrics.inward_words, metrics.inward_transactions)

    def outward_cost(self, metrics: RoundMetrics) -> float:
        """Sharded ``T_O(i)`` for one round."""
        return self.cost(metrics.outward_words, metrics.outward_transactions)

    def round_cost(self, metrics: RoundMetrics) -> float:
        """Sharded transfer cost of one round, ``T_I(i) + T_O(i)``."""
        return self.inward_cost(metrics) + self.outward_cost(metrics)

    def serial_round_cost(self, metrics: RoundMetrics) -> float:
        """The single-link comparison cost of the same round."""
        return self.serial_model.round_cost(metrics)


class ShardedCostModel:
    """Expression (2) evaluated over ``P`` identical devices (straggler time).

    Each round's inward words, thread blocks and outward words shard
    near-evenly across the pool; the round costs the slowest device's
    transfer + kernel time plus one pool-wide synchronisation ``σ``.  The
    per-round maximum is the straggler device: shards are near-equal, so the
    straggler is the device holding ``⌈k_i/P⌉`` blocks and the largest word
    shards.

    ``devices=1`` reproduces :meth:`~repro.core.cost.ATGPUCostModel.gpu_cost`
    exactly, whatever the contention factor.
    """

    def __init__(
        self,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: OccupancyModel,
        devices: int = 1,
        contention: float = 0.0,
    ) -> None:
        if occupancy is None:
            raise ValueError(
                "sharded GPU-cost requires an OccupancyModel (the per-device "
                "wave count of Expression 2)"
            )
        self.machine = machine
        self.parameters = parameters
        self.occupancy = occupancy
        self.devices = ensure_positive_int(devices, "devices")
        self.contention = ensure_in_range(contention, "contention", 0.0, 1.0)
        self.transfer_model = ShardedTransferModel(
            alpha=parameters.alpha,
            beta=parameters.beta,
            devices=self.devices,
            contention=self.contention,
        )

    # ------------------------------------------------------------------ #
    # Per-round costs
    # ------------------------------------------------------------------ #
    def straggler_blocks(self, thread_blocks: int) -> int:
        """Thread blocks on the most-loaded device, ``⌈k_i / P⌉``."""
        ensure_positive_int(thread_blocks, "thread_blocks")
        return ceil_div(thread_blocks, self.devices)

    def _device_kernel_terms(
        self, blocks: int, metrics: RoundMetrics
    ) -> Tuple[float, float]:
        """``(compute, io)`` cost of one round on a device holding ``blocks``.

        The device's round time scales by its wave count
        ``⌈blocks/(k'·ℓ)⌉`` and it serves its proportional share of the
        round's I/O blocks ``q_i``.  Shared by the straggler charge and the
        per-device diagnostic so both stay numerically identical.
        """
        params = self.parameters
        waves = self.occupancy.waves(
            thread_blocks=blocks,
            shared_memory_capacity=self.machine.M,
            shared_words_per_block=metrics.shared_words_per_mp,
        )
        io_share = blocks / metrics.thread_blocks
        return (
            waves * metrics.time / params.gamma,
            params.lam * metrics.io_blocks * io_share / params.gamma,
        )

    def round_breakdown(self, metrics: RoundMetrics) -> CostBreakdown:
        """Itemised straggler-device cost of one round.

        The kernel side is the straggler's (``⌈k_i/P⌉`` blocks) compute and
        I/O time; the transfer side is the sharded straggler link time.
        """
        compute, io = self._device_kernel_terms(
            self.straggler_blocks(metrics.thread_blocks), metrics
        )
        return CostBreakdown(
            inward_transfer=self.transfer_model.inward_cost(metrics),
            outward_transfer=self.transfer_model.outward_cost(metrics),
            compute=compute,
            io=io,
            synchronisation=self.parameters.sigma,
        )

    def round_cost(self, metrics: RoundMetrics) -> float:
        """Scalar straggler cost of one round."""
        return self.round_breakdown(metrics).total

    # ------------------------------------------------------------------ #
    # Whole-algorithm costs
    # ------------------------------------------------------------------ #
    def breakdown(self, metrics: AlgorithmMetrics) -> CostBreakdown:
        """Itemised sharded cost of a whole algorithm (sum over rounds)."""
        metrics.validate_against(self.machine)
        total = CostBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
        for round_metrics in metrics:
            total = total + self.round_breakdown(round_metrics)
        return total

    def gpu_cost(self, metrics: AlgorithmMetrics) -> float:
        """The sharded GPU-cost: sum of per-round straggler times."""
        return self.breakdown(metrics).total

    def serial_cost(self, metrics: AlgorithmMetrics) -> float:
        """The single-device GPU-cost (Expression 2) for comparison."""
        return ATGPUCostModel(
            self.machine, self.parameters, self.occupancy
        ).gpu_cost(metrics)

    def scaling_speedup(self, metrics: AlgorithmMetrics) -> float:
        """Serial-over-sharded cost ratio (1.0 at ``P=1`` by construction)."""
        sharded = self.gpu_cost(metrics)
        if sharded == 0:
            return 1.0
        return self.serial_cost(metrics) / sharded

    def device_round_times(
        self, metrics: RoundMetrics
    ) -> Tuple[float, ...]:
        """Per-device kernel-side times of one round (straggler first).

        Diagnostic view of the imbalance: devices receive their
        :func:`shard_sizes` share of the thread blocks; devices with no
        blocks are idle for the round.
        """
        times = []
        for blocks in shard_sizes(metrics.thread_blocks, self.devices):
            if blocks == 0:
                times.append(0.0)
                continue
            compute, io = self._device_kernel_terms(blocks, metrics)
            times.append(compute + io)
        return tuple(times)


def sharded_gpu_cost(
    metrics: AlgorithmMetrics,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel],
    devices: int = 1,
    contention: float = 0.0,
) -> float:
    """Functional form of :meth:`ShardedCostModel.gpu_cost` (backend entry)."""
    model = ShardedCostModel(
        machine, parameters, occupancy, devices=devices, contention=contention
    )
    return model.gpu_cost(metrics)


# --------------------------------------------------------------------- #
# Topology-aware (heterogeneous) sharded cost
# --------------------------------------------------------------------- #
class TopologyCostModel:
    """Expression (2) over an arbitrary :class:`~repro.core.topology.Topology`.

    The generalisation of :class:`ShardedCostModel` from ``(devices,
    contention)`` to a full fleet description:

    * each device resolves its own ``(machine, parameters, occupancy)``
      from its :class:`~repro.core.topology.DeviceSpec` preset/occupancy
      overrides (defaulting to the fleet's);
    * each round's thread blocks and words split by the load-aware
      :func:`~repro.core.topology.plan_shards` over per-device
      throughputs (or near-evenly under the ``"even"`` planner);
    * a device's streaming charge contends only with the devices on its
      *own* socket's host link (per-link ``contention`` and optional
      ``α``/``β`` overrides);
    * a ``"p2p"`` fabric adds a ``⌈log₂P⌉``-step shuffle term for the
      partial-result merges of reduction-style rounds (charged on the
      outward side, after Choi et al.'s one-sided P2P cost shape);
    * the round is charged the per-round **maximum** (straggler) device
      time plus one pool-wide synchronisation ``σ``.

    Degeneracy: a homogeneous topology (``Topology.homogeneous(P, c)``)
    reproduces :class:`ShardedCostModel` with the same ``(P, c)`` bit for
    bit, under either planner — equal weights plan the exact PR 3 splits
    and device 0 is always the first-maximum straggler.
    """

    def __init__(
        self,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: OccupancyModel,
        topology: Topology,
        planner: str = "load-aware",
    ) -> None:
        if occupancy is None:
            raise ValueError(
                "topology GPU-cost requires an OccupancyModel (the "
                "per-device wave count of Expression 2)"
            )
        if not isinstance(topology, Topology):
            raise TypeError(
                f"topology must be a Topology, got {type(topology).__name__}"
            )
        if planner not in PLANNERS:
            raise ValueError(
                f"planner must be one of {', '.join(PLANNERS)}; "
                f"got {planner!r}"
            )
        from repro.core.presets import get_preset

        self.machine = machine
        self.parameters = parameters
        self.occupancy = occupancy
        self.topology = topology
        self.planner = planner
        resolutions = []
        for device in topology.devices:
            if device.preset is None:
                mach, params, occ = machine, parameters, occupancy
            else:
                preset = get_preset(device.preset)
                mach, params, occ = (
                    preset.machine, preset.parameters, preset.occupancy
                )
            if device.hardware_block_limit is not None:
                occ = OccupancyModel(
                    physical_mps=occ.physical_mps,
                    hardware_block_limit=device.hardware_block_limit,
                )
            resolutions.append((mach, params, occ))
        #: Per-device ``(machine, parameters, occupancy)`` triples.
        self.resolutions: Tuple[
            Tuple[ATGPUMachine, CostParameters, OccupancyModel], ...
        ] = tuple(resolutions)
        #: Per-device throughput weights (shard-planning inputs).
        self.weights: Tuple[float, ...] = topology.throughputs(
            parameters, occupancy
        )
        if planner == "even":
            self.plan_weights: Tuple[float, ...] = (1.0,) * len(resolutions)
        else:
            self.plan_weights = self.weights
        # Per-device link view: transfer parameters fall back to the
        # fleet's (the link is a property of the host complex, not the
        # GPU behind it, which is what keeps homogeneous fleets exactly
        # on the PR 3 numbers).
        links = []
        for device in topology.devices:
            link = topology.host_link(device.socket)
            members = topology.devices_on_socket(device.socket)
            links.append((
                link.alpha if link.alpha is not None else parameters.alpha,
                link.beta if link.beta is not None else parameters.beta,
                link.contention,
                members,
                len(members) == topology.num_devices,
            ))
        #: Per-device ``(α, β, contention, socket members, covers_all)``.
        self.device_links = tuple(links)

    # ------------------------------------------------------------------ #
    # Shard planning
    # ------------------------------------------------------------------ #
    def plan_for(self, total: int) -> List[int]:
        """The planner's integer split of ``total`` units across the fleet."""
        return plan_shards(total, self.plan_weights)

    def _word_shards(self, words: float) -> List[float]:
        """Per-device word shards of one transfer (floats, PR 3-compatible).

        Whole-word counts plan like thread blocks
        (:func:`~repro.core.topology.plan_shards`); non-integral word
        counts (continuous analyses) split proportionally — exactly
        ``words / P`` under equal weights, matching
        :func:`largest_shard`'s fractional branch.
        """
        count = len(self.plan_weights)
        if words == 0:
            return [0.0] * count
        weights = self.plan_weights
        if float(words).is_integer():
            return [float(s) for s in plan_shards(int(words), weights)]
        if all(w == weights[0] for w in weights):
            return [words / count] * count
        scale = float(sum(weights))
        return [words * w / scale for w in weights]

    # ------------------------------------------------------------------ #
    # Per-device costs
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_transfer(words: float, transactions: int) -> None:
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        if words > 0 and transactions == 0:
            raise ValueError(
                "moving a positive number of words requires >= 1 transaction"
            )

    def _device_transfer(
        self,
        device: int,
        words: float,
        transactions: int,
        shards: Sequence[float],
    ) -> float:
        """One device's link time for its shard of a transfer.

        A device alone on its socket streams only its own shard (the
        exact single-link degeneracy, as PR 3's ``devices=1`` path);
        otherwise the shard contends with its socket peers' share of the
        transfer under the link's ``contention`` factor.
        """
        alpha, beta, contention, members, covers_all = (
            self.device_links[device]
        )
        if len(members) == 1:
            streaming = shards[device]
        else:
            if covers_all:
                link_words = float(words)
            else:
                link_words = 0.0
                for member in members:
                    link_words = link_words + shards[member]
            streaming = contended_streaming(
                link_words, shards[device], contention
            )
        return transactions * alpha + streaming * beta

    def _device_kernel_terms(
        self, device: int, blocks: int, metrics: RoundMetrics
    ) -> Tuple[float, float]:
        """``(compute, io)`` of one round on ``device`` holding ``blocks``."""
        if blocks == 0:
            return (0.0, 0.0)
        mach, params, occ = self.resolutions[device]
        waves = occ.waves(
            thread_blocks=blocks,
            shared_memory_capacity=mach.M,
            shared_words_per_block=metrics.shared_words_per_mp,
        )
        io_share = blocks / metrics.thread_blocks
        return (
            waves * metrics.time / params.gamma,
            params.lam * metrics.io_blocks * io_share / params.gamma,
        )

    # ------------------------------------------------------------------ #
    # Per-round costs
    # ------------------------------------------------------------------ #
    def round_breakdown(self, metrics: RoundMetrics) -> CostBreakdown:
        """Itemised straggler-device cost of one round.

        Every device's transfer + kernel time is priced from its planned
        shards; the round is charged the slowest device's components
        (first maximum on ties, so homogeneous fleets charge device 0 —
        the ceil-shard holder — exactly as :class:`ShardedCostModel`
        does), plus the P2P shuffle term when a fabric is declared.
        """
        self._check_transfer(
            metrics.inward_words, metrics.inward_transactions
        )
        self._check_transfer(
            metrics.outward_words, metrics.outward_transactions
        )
        count = self.topology.num_devices
        block_shards = plan_shards(
            metrics.thread_blocks, self.plan_weights
        )
        in_shards = self._word_shards(metrics.inward_words)
        out_shards = self._word_shards(metrics.outward_words)
        components = []
        for device in range(count):
            inward = self._device_transfer(
                device, metrics.inward_words,
                metrics.inward_transactions, in_shards,
            )
            outward = self._device_transfer(
                device, metrics.outward_words,
                metrics.outward_transactions, out_shards,
            )
            compute, io = self._device_kernel_terms(
                device, block_shards[device], metrics
            )
            components.append((inward, outward, compute, io))
        totals = [
            (inward + outward) + (compute + io)
            for inward, outward, compute, io in components
        ]
        straggler = max(range(count), key=totals.__getitem__)
        inward_s, outward_s, compute_s, io_s = components[straggler]
        shuffle = self._shuffle_term(metrics, out_shards)
        if shuffle != 0.0:
            outward_s = outward_s + shuffle
        return CostBreakdown(
            inward_transfer=inward_s,
            outward_transfer=outward_s,
            compute=compute_s,
            io=io_s,
            synchronisation=self.parameters.sigma,
        )

    def _shuffle_term(
        self, metrics: RoundMetrics, out_shards: Sequence[float]
    ) -> float:
        """P2P partial-merge cost of one round (``0.0`` without a fabric).

        Rounds that emit partial results (positive outward words) merge
        them over the fabric in ``⌈log₂P⌉`` exchange steps; each step
        moves at most the largest outward shard, charged at the fabric's
        ``α``/``β``.
        """
        p2p = self.topology.p2p_link
        count = self.topology.num_devices
        if p2p is None or count == 1 or not metrics.outward_words > 0:
            return 0.0
        alpha = p2p.alpha if p2p.alpha is not None else self.parameters.alpha
        beta = p2p.beta if p2p.beta is not None else self.parameters.beta
        steps = math.ceil(math.log2(count))
        return steps * (alpha + max(out_shards) * beta)

    def round_cost(self, metrics: RoundMetrics) -> float:
        """Scalar straggler cost of one round."""
        return self.round_breakdown(metrics).total

    # ------------------------------------------------------------------ #
    # Whole-algorithm costs
    # ------------------------------------------------------------------ #
    def breakdown(self, metrics: AlgorithmMetrics) -> CostBreakdown:
        """Itemised topology cost of a whole algorithm (sum over rounds)."""
        metrics.validate_against(self.machine)
        for mach in {mach for mach, _, _ in self.resolutions}:
            if mach != self.machine:
                metrics.validate_against(mach)
        total = CostBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
        for round_metrics in metrics:
            total = total + self.round_breakdown(round_metrics)
        return total

    def gpu_cost(self, metrics: AlgorithmMetrics) -> float:
        """The topology GPU-cost: sum of per-round straggler times."""
        return self.breakdown(metrics).total

    def device_round_times(
        self, metrics: RoundMetrics
    ) -> Tuple[float, ...]:
        """Per-device kernel-side times of one round (diagnostic view)."""
        times = []
        block_shards = plan_shards(
            metrics.thread_blocks, self.plan_weights
        )
        for device in range(self.topology.num_devices):
            compute, io = self._device_kernel_terms(
                device, block_shards[device], metrics
            )
            times.append(compute + io)
        return tuple(times)


def topology_gpu_cost(
    metrics: AlgorithmMetrics,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel],
    topology: Topology,
    planner: str = "load-aware",
) -> float:
    """Functional form of :meth:`TopologyCostModel.gpu_cost` (backend entry)."""
    model = TopologyCostModel(
        machine, parameters, occupancy, topology, planner=planner
    )
    return model.gpu_cost(metrics)


# --------------------------------------------------------------------- #
# Topology-aware batch evaluation
# --------------------------------------------------------------------- #
def _equal_weights(weights: Sequence[float]) -> bool:
    return all(w == weights[0] for w in weights)


def _plan_shards_grid(
    totals: np.ndarray, weights: Sequence[float]
) -> np.ndarray:
    """Vectorized :func:`~repro.core.topology.plan_shards` over a grid.

    ``totals`` is a ``(rounds, sizes)`` grid of integer-valued unit
    counts; the result is ``(P, rounds, sizes)`` with the scalar
    planner's exact splits in every cell: the equal-weight branch is the
    divmod split, the general branch replays the greedy water-filling
    with a first-minimum ``argmin`` per step — at most ``P`` leftover
    units exist per cell, so the loop is short and cells that finish
    early are masked out.
    """
    totals = np.asarray(totals, dtype=float)
    count = len(weights)
    if _equal_weights(weights):
        base = np.floor(totals / count)
        extra = totals - base * count
        index = np.arange(count, dtype=float).reshape(
            (count,) + (1,) * totals.ndim
        )
        return base[None, ...] + (index < extra[None, ...])
    w = np.asarray(weights, dtype=float).reshape(
        (count,) + (1,) * totals.ndim
    )
    scale = float(sum(weights))
    # The per-device floors are integer-valued floats, so this sum is
    # exact regardless of accumulation order.
    shards = np.floor(totals[None, ...] * w / scale)
    remaining = totals - shards.sum(axis=0)
    for _ in range(count + 1):
        active = remaining > 0
        if not np.any(active):
            break
        finish = (shards + 1.0) / w
        pick = np.argmin(finish, axis=0)
        increment = np.zeros_like(shards)
        np.put_along_axis(increment, pick[None, ...], 1.0, axis=0)
        shards = shards + increment * active[None, ...]
        remaining = remaining - active
    return shards


def _word_shards_grid(
    words: np.ndarray, weights: Sequence[float]
) -> np.ndarray:
    """Vectorized :meth:`TopologyCostModel._word_shards` over a grid."""
    words = np.asarray(words, dtype=float)
    count = len(weights)
    if _equal_weights(weights):
        fractional = np.broadcast_to(
            words / count, (count,) + words.shape
        )
    else:
        w = np.asarray(weights, dtype=float).reshape(
            (count,) + (1,) * words.ndim
        )
        fractional = words[None, ...] * w / float(sum(weights))
    integral = _plan_shards_grid(words, weights)
    whole = (words == np.floor(words))[None, ...]
    return np.where(whole, integral, fractional)


def topology_cost_batch(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel],
    topology: Topology,
    planner: str = "load-aware",
) -> np.ndarray:
    """Vector form of :func:`topology_gpu_cost`.

    Uniform topologies delegate to :func:`~repro.core.batch.sharded_cost_batch`
    (they are the same model, and that path is already bit-for-bit
    against the scalar PR 3 evaluator); heterogeneous fleets price every
    device's shard grids and gather the per-round straggler components
    with a first-maximum ``argmax``, mirroring the scalar model's
    operand order exactly.
    """
    if occupancy is None:
        raise ValueError(
            "topology GPU-cost requires an OccupancyModel (the "
            "per-device wave count of Expression 2)"
        )
    if topology.is_uniform:
        link = topology.host_link(topology.sockets[0])
        return sharded_cost_batch(
            batch, machine, parameters, occupancy,
            devices=topology.num_devices, contention=link.contention,
        )
    model = TopologyCostModel(
        machine, parameters, occupancy, topology, planner=planner
    )
    batch.validate_against(machine)
    for mach in {mach for mach, _, _ in model.resolutions}:
        if mach != machine:
            batch.validate_against(mach)
    count = topology.num_devices
    weights = model.plan_weights
    block_shards = _plan_shards_grid(batch.thread_blocks, weights)
    in_shards = _word_shards_grid(batch.inward_words, weights)
    out_shards = _word_shards_grid(batch.outward_words, weights)
    shape = (count,) + batch.thread_blocks.shape
    inward = np.empty(shape)
    outward = np.empty(shape)
    compute = np.empty(shape)
    io = np.empty(shape)
    for device in range(count):
        mach, params, occ = model.resolutions[device]
        alpha, beta, contention, members, covers_all = (
            model.device_links[device]
        )
        if len(members) == 1:
            in_stream = in_shards[device]
            out_stream = out_shards[device]
        else:
            if covers_all:
                in_link = batch.inward_words
                out_link = batch.outward_words
            else:
                in_link = np.zeros_like(batch.inward_words)
                out_link = np.zeros_like(batch.outward_words)
                for member in members:
                    in_link = in_link + in_shards[member]
                    out_link = out_link + out_shards[member]
            in_stream = contended_streaming(
                in_link, in_shards[device], contention
            )
            out_stream = contended_streaming(
                out_link, out_shards[device], contention
            )
        inward[device] = (
            batch.inward_transactions * alpha + in_stream * beta
        )
        outward[device] = (
            batch.outward_transactions * alpha + out_stream * beta
        )
        # Zero-block cells price to exact zeros (zero waves, zero I/O
        # share), matching the scalar model's idle-device fast path.
        ell = blocks_per_mp_grid(
            mach.M, batch.shared_words_per_mp, occ.hardware_block_limit
        )
        waves = wave_grid(block_shards[device], occ.physical_mps, ell)
        compute[device] = waves * batch.time / params.gamma
        io_share = block_shards[device] / batch.thread_blocks
        io[device] = (
            params.lam * batch.io_blocks * io_share / params.gamma
        )
    totals = (inward + outward) + (compute + io)
    straggler = np.argmax(totals, axis=0)

    def _gather(component: np.ndarray) -> np.ndarray:
        return np.take_along_axis(
            component, straggler[None, ...], axis=0
        )[0]

    inward_s = _gather(inward)
    outward_s = _gather(outward)
    compute_s = _gather(compute)
    io_s = _gather(io)
    p2p = topology.p2p_link
    if p2p is not None and count > 1:
        alpha_p = p2p.alpha if p2p.alpha is not None else parameters.alpha
        beta_p = p2p.beta if p2p.beta is not None else parameters.beta
        steps = math.ceil(math.log2(count))
        shuffle = steps * (alpha_p + out_shards.max(axis=0) * beta_p)
        outward_s = np.where(
            batch.outward_words > 0, outward_s + shuffle, outward_s
        )
    sync = parameters.sigma * batch.mask
    breakdown = BatchBreakdown(
        inward_transfer=_column_sum(inward_s),
        outward_transfer=_column_sum(outward_s),
        compute=_column_sum(compute_s),
        io=_column_sum(io_s),
        synchronisation=_column_sum(sync),
    )
    return breakdown.total
