"""Vectorized batch evaluation of the cost models over whole sweeps.

The ATGPU cost functions (Expressions 1 and 2 of the paper) are closed-form
sums over per-round metrics, so evaluating a *sweep* of input sizes does not
need a Python loop per size: the per-round metrics of every size pack into
``rounds × sizes`` NumPy arrays once, and each cost-model family evaluates
the whole sweep as one array program.

:class:`MetricsBatch` is that packed form — compiled once per
algorithm/sweep from a metrics factory (or a list of pre-built
:class:`~repro.core.metrics.AlgorithmMetrics`) — and the module-level
evaluators mirror the scalar models exactly:

==============================  ==========================================
:func:`perfect_cost_batch`       Expression (1), no occupancy term
:func:`gpu_cost_batch`           Expression (2) with the occupancy ceiling
:func:`swgpu_cost_batch`         Expression (2) with ``α = β = 0``
:func:`agpu_time_batch`          the AGPU unit-less device-step view
:func:`overlapped_cost_batch`    per-round compute/copy overlap
                                 (``atgpu-async``)
:func:`sharded_cost_batch`       multi-device straggler cost
                                 (``atgpu-multi``)
==============================  ==========================================

Parity with the scalar path is bit-for-bit, not merely approximate: every
per-round component is computed with the same expressions in the same
operand order as the scalar models, and the reduction over rounds
(:func:`_column_sum`) adds rows in execution order exactly as the scalar
``CostBreakdown`` accumulation does, so no floating-point reassociation can
creep in.  ``tests/test_batch.py`` enforces this for every built-in backend
family.

Algorithms whose round count varies with the input size (e.g. the
reduction's ``log`` levels) produce ragged per-size round lists; the batch
pads the short columns with neutral rounds (zero time, zero words, one
thread block) and masks the per-round synchronisation ``σ`` so padding
contributes exactly ``0.0`` to every sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost import CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, CapacityError, MetricsGrid
from repro.core.occupancy import OccupancyModel
from repro.core.topology import contended_streaming
from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_in_range, ensure_positive_int

#: Signature of a per-size metrics factory (same as ``predict_sweep`` uses).
BatchMetricsFactory = Callable[[int], AlgorithmMetrics]

#: Signature of a whole-sweep (array-native) metrics factory.
GridMetricsFactory = Callable[[Sequence[int]], MetricsGrid]


def _column_sum(rows: np.ndarray) -> np.ndarray:
    """Sum a ``(rounds, sizes)`` grid over rounds **in round order**.

    The scalar models accumulate ``CostBreakdown`` components round by round
    starting from ``0.0``; adding the rows sequentially reproduces that exact
    floating-point addition order, which a blocked/pairwise ``np.sum`` would
    not guarantee.  Round counts are small (tens), so this costs nothing.
    """
    total = np.zeros(rows.shape[1], dtype=float)
    for row in rows:
        total = total + row
    return total


@dataclass(frozen=True)
class MetricsBatch:
    """Per-round metrics of a whole sweep, packed as ``(rounds, sizes)`` arrays.

    Compile once per algorithm/sweep via :meth:`compile` (from a metrics
    factory) or :meth:`from_metrics` (from pre-built metrics).  The original
    :class:`~repro.core.metrics.AlgorithmMetrics` objects are retained in
    :attr:`metrics` so backends without a vectorized implementation can fall
    back to their scalar path on the very same data.

    All grids share the shape ``(max rounds, len(sizes))``; columns shorter
    than the deepest size are padded with neutral rounds and :attr:`mask`
    (``1.0`` for real rounds, ``0.0`` for padding) gates every per-round
    constant term (the synchronisation ``σ``).
    """

    algorithm: str
    sizes: Tuple[int, ...]
    round_counts: np.ndarray
    mask: np.ndarray
    time: np.ndarray
    io_blocks: np.ndarray
    inward_words: np.ndarray
    outward_words: np.ndarray
    inward_transactions: np.ndarray
    outward_transactions: np.ndarray
    shared_words_per_mp: np.ndarray
    thread_blocks: np.ndarray
    max_global_words: np.ndarray
    max_shared_words: np.ndarray
    #: The per-size metrics the batch was packed from (scalar-fallback data).
    metrics: Tuple[AlgorithmMetrics, ...] = field(default=(), repr=False)
    #: The array-native grid the batch was packed from, when compiled through
    #: a vectorized factory; used to materialise scalar metrics on demand.
    grid: Optional[MetricsGrid] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_grid(
        cls,
        grid: MetricsGrid,
        algorithm: str = "",
        metrics: Tuple[AlgorithmMetrics, ...] = (),
    ) -> "MetricsBatch":
        """Pack an array-native :class:`~repro.core.metrics.MetricsGrid`.

        This is pure array work — each round's columns stack into one row of
        the ``(rounds, sizes)`` grids, absent entries neutralised (zero
        everything, one thread block) exactly as the scalar packing pads
        ragged columns.
        """
        present = np.stack([r.present for r in grid.rounds])
        mask = present.astype(float)

        def stack(name: str, fill: float = 0.0) -> np.ndarray:
            # masked_columns owns the absence semantics (shared with the
            # grid's aggregate properties); only the float dtype is local.
            columns = np.stack(grid.masked_columns(name, fill))
            return columns.astype(float, copy=False)

        return cls(
            algorithm=algorithm or grid.name,
            sizes=grid.sizes,
            round_counts=present.sum(axis=0),
            mask=mask,
            time=stack("time"),
            io_blocks=stack("io_blocks"),
            inward_words=stack("inward_words"),
            outward_words=stack("outward_words"),
            inward_transactions=stack("inward_transactions"),
            outward_transactions=stack("outward_transactions"),
            shared_words_per_mp=stack("shared_words_per_mp"),
            # Padded rounds keep one thread block so the wave count stays
            # well-defined; their zero time makes the product vanish anyway.
            thread_blocks=stack("thread_blocks", fill=1.0),
            max_global_words=grid.max_global_words,
            max_shared_words=grid.max_shared_words_per_mp,
            metrics=tuple(metrics),
            grid=grid,
        )

    @classmethod
    def from_metrics(
        cls,
        sizes: Sequence[int],
        metrics_list: Sequence[AlgorithmMetrics],
        algorithm: str = "",
    ) -> "MetricsBatch":
        """Pack pre-built per-size metrics into a batch.

        The metrics pack column-wise through
        :meth:`~repro.core.metrics.MetricsGrid.from_metrics` (one array build
        per field per round level) rather than a per-cell Python double loop,
        and the originals are retained in :attr:`metrics` for backends that
        need the scalar fallback.
        """
        if not sizes:
            raise ValueError("a metrics batch needs at least one input size")
        if len(sizes) != len(metrics_list):
            raise ValueError(
                f"got {len(sizes)} sizes but {len(metrics_list)} metrics"
            )
        grid = MetricsGrid.from_metrics(sizes, metrics_list, name=algorithm)
        return cls.from_grid(
            grid, algorithm=algorithm, metrics=tuple(metrics_list)
        )

    @classmethod
    def compile(
        cls,
        algorithm: str,
        sizes: Sequence[int],
        metrics_factory: Optional[BatchMetricsFactory] = None,
        grid_factory: Optional[GridMetricsFactory] = None,
    ) -> "MetricsBatch":
        """Build the batch from a metrics factory.

        ``grid_factory`` is the array-native path: it receives the whole size
        list at once and returns a :class:`~repro.core.metrics.MetricsGrid`,
        which packs without constructing any intermediate per-size
        :class:`~repro.core.metrics.RoundMetrics` objects.  ``metrics_factory``
        is the scalar path, invoked once per size.  Exactly one must be given.
        """
        if not sizes:
            raise ValueError("a metrics batch needs at least one input size")
        sizes = [int(n) for n in sizes]
        if grid_factory is not None:
            if metrics_factory is not None:
                raise ValueError(
                    "pass either metrics_factory or grid_factory, not both"
                )
            grid = grid_factory(sizes)
            if tuple(grid.sizes) != tuple(sizes):
                raise ValueError(
                    "grid_factory returned a grid over sizes "
                    f"{grid.sizes} but the batch asked for {tuple(sizes)}"
                )
            return cls.from_grid(grid, algorithm=algorithm)
        if metrics_factory is None:
            raise ValueError("compile needs a metrics_factory or grid_factory")
        return cls.from_metrics(
            sizes, [metrics_factory(n) for n in sizes], algorithm=algorithm
        )

    def materialized_metrics(self) -> Tuple[AlgorithmMetrics, ...]:
        """Per-size scalar metrics, building them from the grid if needed.

        Batches packed from scalar metrics return the retained originals;
        batches compiled through an array-native factory materialise
        equivalent :class:`~repro.core.metrics.AlgorithmMetrics` from the
        grid columns on demand (backends without a batch evaluator are the
        only consumer).  Returns ``()`` when neither source is available.
        """
        if self.metrics:
            return self.metrics
        if self.grid is not None:
            return tuple(
                self.grid.metrics_at(index)
                for index in range(self.grid.num_sizes)
            )
        return ()

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def num_sizes(self) -> int:
        """Number of sweep points (columns)."""
        return len(self.sizes)

    @property
    def depth(self) -> int:
        """Largest per-size round count (rows, including padding)."""
        return int(self.time.shape[0])

    def columns_for(self, sizes: Sequence[int]) -> List[int]:
        """Column indices of the given size values, in request order.

        The coalescing machinery compiles one batch over the union of
        several requested sweeps and scatters per-request views back out;
        this maps a request's sizes to the union's columns (duplicate
        columns in :attr:`sizes` resolve to the first occurrence).  Raises
        :class:`KeyError` naming the first size the batch does not cover.
        """
        column = {n: j for j, n in reversed(list(enumerate(self.sizes)))}
        try:
            return [column[int(n)] for n in sizes]
        except KeyError as exc:
            raise KeyError(
                f"batch over sizes {self.sizes} has no column for size "
                f"{exc.args[0]}"
            ) from exc

    def select(self, indices: Sequence[int]) -> "MetricsBatch":
        """A sub-batch restricted to the given size columns, in order.

        This is how a shared batch compiled over the union of several
        sweeps serves each individual sweep without re-packing.
        """
        idx = list(indices)
        if not idx:
            raise ValueError("a metrics batch needs at least one input size")
        cols = np.asarray(idx, dtype=int)
        return MetricsBatch(
            algorithm=self.algorithm,
            sizes=tuple(self.sizes[i] for i in idx),
            round_counts=self.round_counts[cols],
            mask=self.mask[:, cols],
            time=self.time[:, cols],
            io_blocks=self.io_blocks[:, cols],
            inward_words=self.inward_words[:, cols],
            outward_words=self.outward_words[:, cols],
            inward_transactions=self.inward_transactions[:, cols],
            outward_transactions=self.outward_transactions[:, cols],
            shared_words_per_mp=self.shared_words_per_mp[:, cols],
            thread_blocks=self.thread_blocks[:, cols],
            max_global_words=self.max_global_words[cols],
            max_shared_words=self.max_shared_words[cols],
            metrics=tuple(self.metrics[i] for i in idx) if self.metrics else (),
            grid=self.grid.select(idx) if self.grid is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate_against(self, machine: ATGPUMachine) -> None:
        """Vectorized form of ``AlgorithmMetrics.validate_against``.

        Raises :class:`~repro.core.metrics.CapacityError` naming the first
        offending size when any sweep point exceeds ``G`` or ``M``.
        """
        over_global = np.floor(self.max_global_words) > machine.G
        if np.any(over_global):
            at = int(np.argmax(over_global))
            raise CapacityError(
                f"algorithm {self.algorithm or '<unnamed>'} uses "
                f"{self.max_global_words[at]:.0f} words of global memory at "
                f"size {self.sizes[at]} but the machine only has "
                f"G={machine.G}"
            )
        over_shared = np.floor(self.max_shared_words) > machine.M
        if np.any(over_shared):
            at = int(np.argmax(over_shared))
            raise CapacityError(
                f"algorithm {self.algorithm or '<unnamed>'} uses "
                f"{self.max_shared_words[at]:.0f} words of shared memory per "
                f"MP at size {self.sizes[at]} but the machine only has "
                f"M={machine.M}"
            )

    def runs_on(self, machine: ATGPUMachine) -> bool:
        """``True`` when :meth:`validate_against` would not raise."""
        try:
            self.validate_against(machine)
        except CapacityError:
            return False
        return True


@dataclass(frozen=True)
class BatchBreakdown:
    """Per-size itemised cost arrays (the vector analogue of ``CostBreakdown``).

    Every attribute is one value per sweep point; the derived views combine
    them in the same operand order as the scalar
    :class:`~repro.core.cost.CostBreakdown` so totals match bit for bit.
    """

    inward_transfer: np.ndarray
    outward_transfer: np.ndarray
    compute: np.ndarray
    io: np.ndarray
    synchronisation: np.ndarray

    @property
    def transfer(self) -> np.ndarray:
        """Total transfer component per size."""
        return self.inward_transfer + self.outward_transfer

    @property
    def kernel(self) -> np.ndarray:
        """Kernel-side component per size (compute + I/O + synchronisation)."""
        return self.compute + self.io + self.synchronisation

    @property
    def total(self) -> np.ndarray:
        """Full cost per size."""
        return self.transfer + self.kernel

    @property
    def transfer_proportion(self) -> np.ndarray:
        """``ΔT`` per size (``0.0`` where the total cost is zero)."""
        total = self.total
        transfer = self.transfer
        out = np.zeros_like(total)
        nz = total != 0
        np.divide(transfer, total, out=out, where=nz)
        return out


# --------------------------------------------------------------------- #
# Vectorized occupancy
# --------------------------------------------------------------------- #
def blocks_per_mp_grid(
    shared_memory_capacity: int,
    shared_words: np.ndarray,
    hardware_block_limit: int,
) -> np.ndarray:
    """Elementwise ``ℓ = min(⌊M / m⌋, H)`` over a grid of per-round ``m``.

    Replicates :func:`repro.core.occupancy.blocks_per_multiprocessor`
    exactly, including the relative-epsilon snap for fractional ``m`` and
    the hard error when a block cannot fit at all.
    """
    ensure_positive_int(shared_memory_capacity, "shared_memory_capacity")
    ensure_positive_int(hardware_block_limit, "hardware_block_limit")
    m = np.asarray(shared_words, dtype=float)
    out = np.full(m.shape, float(hardware_block_limit))
    uses_shared = m > 0
    if not np.any(uses_shared):
        return out
    ratio = np.divide(
        float(shared_memory_capacity), m, out=np.ones_like(m), where=uses_shared
    )
    nearest = np.round(ratio)
    snap = (nearest > 0) & (np.abs(ratio - nearest) <= 1e-9 * nearest)
    by_memory = np.where(snap, nearest, np.floor(ratio))
    impossible = uses_shared & (by_memory == 0)
    if np.any(impossible):
        at = np.argwhere(impossible)[0]
        raise ValueError(
            f"a thread block needs {m[tuple(at)]} shared words but the "
            f"MP only has {shared_memory_capacity}: the kernel cannot run"
        )
    out[uses_shared] = np.minimum(
        by_memory, float(hardware_block_limit)
    )[uses_shared]
    return out


def wave_grid(
    thread_blocks: np.ndarray,
    physical_mps: int,
    blocks_per_mp: np.ndarray,
) -> np.ndarray:
    """Elementwise wave count ``⌈k_i / (k'·ℓ)⌉`` over the batch grids."""
    ensure_positive_int(physical_mps, "physical_mps")
    return ceil_div(thread_blocks, (physical_mps * blocks_per_mp))


def _waves(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    occupancy: OccupancyModel,
    thread_blocks: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Wave grid of the batch under an occupancy model."""
    ell = blocks_per_mp_grid(
        machine.M, batch.shared_words_per_mp, occupancy.hardware_block_limit
    )
    blocks = batch.thread_blocks if thread_blocks is None else thread_blocks
    return wave_grid(blocks, occupancy.physical_mps, ell)


# --------------------------------------------------------------------- #
# Serial cost families (Expressions 1 and 2, SWGPU, AGPU)
# --------------------------------------------------------------------- #
def batch_breakdown(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel] = None,
    use_occupancy: bool = False,
    validate: bool = True,
) -> BatchBreakdown:
    """Itemised per-size cost of the whole batch (vector ``ATGPUCostModel``).

    With ``use_occupancy=False`` this is Expression (1); with
    ``use_occupancy=True`` each round's time scales by its wave count as in
    Expression (2).
    """
    if validate:
        batch.validate_against(machine)
    time = batch.time
    if use_occupancy:
        if occupancy is None:
            raise ValueError(
                "GPU-cost (Expression 2) requires an OccupancyModel; "
                "pass one to the batch evaluator"
            )
        time = _waves(batch, machine, occupancy) * batch.time
    params = parameters
    inward = batch.inward_transactions * params.alpha \
        + batch.inward_words * params.beta
    outward = batch.outward_transactions * params.alpha \
        + batch.outward_words * params.beta
    compute = time / params.gamma
    io = params.lam * batch.io_blocks / params.gamma
    sync = params.sigma * batch.mask
    return BatchBreakdown(
        inward_transfer=_column_sum(inward),
        outward_transfer=_column_sum(outward),
        compute=_column_sum(compute),
        io=_column_sum(io),
        synchronisation=_column_sum(sync),
    )


def perfect_cost_batch(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel] = None,
) -> np.ndarray:
    """Expression (1) per size (the ``perfect`` backend, vectorized)."""
    return batch_breakdown(
        batch, machine, parameters, occupancy, use_occupancy=False
    ).total


def gpu_cost_batch(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel] = None,
) -> np.ndarray:
    """Expression (2) per size (the ``atgpu`` backend, vectorized)."""
    return batch_breakdown(
        batch, machine, parameters, occupancy, use_occupancy=True
    ).total


def swgpu_cost_batch(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel] = None,
) -> np.ndarray:
    """The SWGPU comparison cost per size (``α = β = 0``), vectorized."""
    return batch_breakdown(
        batch, machine, parameters.without_transfer(), occupancy,
        use_occupancy=True,
    ).total


def agpu_time_batch(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel] = None,
) -> np.ndarray:
    """The AGPU unit-less device-step view per size (``Σ_i t_i``)."""
    return _column_sum(batch.time)


# --------------------------------------------------------------------- #
# Overlapped (async-stream) cost
# --------------------------------------------------------------------- #
def overlapped_cost_batch(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel],
    chunks: int = 2,
) -> np.ndarray:
    """Vector form of :func:`repro.core.backends.overlapped_cost`.

    Per round: the kernel-side cost keeps the serial model, transfers may
    split into ``chunks`` pieces and pipeline against the kernel, and the
    round is charged the cheaper of its serial and pipelined costs (plus
    ``σ``), exactly as the scalar ``atgpu-async`` backend does.
    """
    ensure_positive_int(chunks, "chunks")
    if occupancy is None:
        raise ValueError(
            "GPU-cost (Expression 2) requires an OccupancyModel; "
            "pass one to the batch evaluator"
        )
    batch.validate_against(machine)
    params = parameters
    waves = _waves(batch, machine, occupancy)
    compute = waves * batch.time / params.gamma
    io = params.lam * batch.io_blocks / params.gamma
    kernel = compute + io
    inward = batch.inward_transactions * params.alpha \
        + batch.inward_words * params.beta
    outward = batch.outward_transactions * params.alpha \
        + batch.outward_words * params.beta
    # Chunked stage totals: every transaction splits into ``chunks``
    # sub-transactions, paying the per-transaction ``α`` each time.
    chunked_in = (chunks * batch.inward_transactions) * params.alpha \
        + batch.inward_words * params.beta
    chunked_out = (chunks * batch.outward_transactions) * params.alpha \
        + batch.outward_words * params.beta
    stage_total = chunked_in + kernel + chunked_out
    bottleneck = np.maximum(np.maximum(chunked_in, kernel), chunked_out)
    pipelined = stage_total / chunks + (chunks - 1) * bottleneck / chunks
    serial = (inward + outward) + kernel
    # Padded rounds have zero stages, so their min() is exactly 0.0; only
    # the constant ``σ`` needs masking.
    per_round = np.minimum(pipelined, serial) + params.sigma * batch.mask
    return _column_sum(per_round)


# --------------------------------------------------------------------- #
# Sharded (multi-device) cost
# --------------------------------------------------------------------- #
def _largest_shard_grid(words: np.ndarray, devices: int) -> np.ndarray:
    """Elementwise :func:`repro.core.sharding.largest_shard` over a grid."""
    whole = words == np.floor(words)
    return np.where(whole, ceil_div(words, devices), words / devices)


def sharded_transfer_grid(
    words: np.ndarray,
    transactions: np.ndarray,
    parameters: CostParameters,
    devices: int,
    contention: float,
) -> np.ndarray:
    """Elementwise straggler link time of ``ShardedTransferModel.cost``."""
    if devices == 1:
        streaming = words
    else:
        shard = _largest_shard_grid(words, devices)
        streaming = contended_streaming(words, shard, contention)
    return transactions * parameters.alpha + streaming * parameters.beta


def sharded_cost_batch(
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: Optional[OccupancyModel],
    devices: int = 1,
    contention: float = 0.0,
) -> np.ndarray:
    """Vector form of :func:`repro.core.sharding.sharded_gpu_cost`.

    Each round's words and thread blocks shard near-evenly over ``P``
    devices and the round is charged the straggler device's transfer +
    kernel time plus one pool-wide ``σ``, exactly as the scalar
    ``atgpu-multi`` backend does.
    """
    ensure_positive_int(devices, "devices")
    ensure_in_range(contention, "contention", 0.0, 1.0)
    if occupancy is None:
        raise ValueError(
            "sharded GPU-cost requires an OccupancyModel (the per-device "
            "wave count of Expression 2)"
        )
    batch.validate_against(machine)
    params = parameters
    straggler = ceil_div(batch.thread_blocks, devices)
    waves = _waves(batch, machine, occupancy, thread_blocks=straggler)
    compute = waves * batch.time / params.gamma
    io_share = straggler / batch.thread_blocks
    io = params.lam * batch.io_blocks * io_share / params.gamma
    inward = sharded_transfer_grid(
        batch.inward_words, batch.inward_transactions, params,
        devices, contention,
    )
    outward = sharded_transfer_grid(
        batch.outward_words, batch.outward_transactions, params,
        devices, contention,
    )
    # Padded rounds contribute exact zeros to every component (zero words,
    # transactions, time and I/O); only the constant ``σ`` needs masking.
    sync = params.sigma * batch.mask
    breakdown = BatchBreakdown(
        inward_transfer=_column_sum(inward),
        outward_transfer=_column_sum(outward),
        compute=_column_sum(compute),
        io=_column_sum(io),
        synchronisation=_column_sum(sync),
    )
    return breakdown.total
