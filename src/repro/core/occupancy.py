"""Occupancy computations used by the GPU-cost function (Expression 2).

A physical streaming multiprocessor can hold ``ℓ = min(⌊M / m⌋, H)`` thread
blocks concurrently, where ``m`` is the shared memory used per block and
``H`` is a hardware-imposed limit on resident blocks.  With ``k'`` physical
MPs, an algorithm round that launches ``k_i`` thread blocks executes in
``⌈k_i / (k'·ℓ)⌉`` *waves*; Expression (2) scales the round's parallel time
``t_i`` by that wave count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_non_negative, ensure_positive_int


def blocks_per_multiprocessor(
    shared_memory_capacity: int,
    shared_words_per_block: float,
    hardware_block_limit: int,
) -> int:
    """Return ``ℓ = min(⌊M / m⌋, H)``.

    Parameters
    ----------
    shared_memory_capacity:
        ``M`` -- shared-memory words available per MP.
    shared_words_per_block:
        ``m`` -- shared-memory words consumed by one resident thread block.
        A block using no shared memory is only limited by ``H``.
    hardware_block_limit:
        ``H`` -- the hardware cap on concurrently resident blocks per MP.
    """
    ensure_positive_int(shared_memory_capacity, "shared_memory_capacity")
    ensure_non_negative(shared_words_per_block, "shared_words_per_block")
    ensure_positive_int(hardware_block_limit, "hardware_block_limit")
    if shared_words_per_block == 0:
        return hardware_block_limit
    # With fractional ``m`` the division is inexact in binary (e.g.
    # M=10, m=0.1 gives 99.999...), and a bare floor would lose a resident
    # block the MP really has room for.  Snap to the nearest integer only
    # when the ratio is within a relative tolerance of it — a blanket
    # multiplicative epsilon would instead *overcount* huge exact ratios.
    ratio = shared_memory_capacity / shared_words_per_block
    nearest = round(ratio)
    if nearest > 0 and abs(ratio - nearest) <= 1e-9 * nearest:
        by_memory = int(nearest)
    else:
        by_memory = int(math.floor(ratio))
    if by_memory == 0:
        raise ValueError(
            f"a thread block needs {shared_words_per_block} shared words but the "
            f"MP only has {shared_memory_capacity}: the kernel cannot run"
        )
    return min(by_memory, hardware_block_limit)


def wave_count(thread_blocks: int, physical_mps: int, blocks_per_mp: int) -> int:
    """Return the number of block waves ``⌈k_i / (k'·ℓ)⌉``."""
    ensure_positive_int(thread_blocks, "thread_blocks")
    ensure_positive_int(physical_mps, "physical_mps")
    ensure_positive_int(blocks_per_mp, "blocks_per_mp")
    return ceil_div(thread_blocks, (physical_mps * blocks_per_mp))


def blocks_per_multiprocessor_grid(
    shared_memory_capacity: int,
    shared_words_per_block,
    hardware_block_limit: int,
):
    """Vectorized twin of :func:`blocks_per_multiprocessor`.

    ``shared_words_per_block`` is an array of per-launch ``m`` values; the
    return value is an ``int64`` array of ``ℓ`` with the same shape.  Every
    element follows the scalar function exactly, including the
    nearest-integer snap for fractional ``m`` (``round`` and ``np.round``
    both round half to even, so the snap candidates agree bit for bit).
    """
    ensure_positive_int(shared_memory_capacity, "shared_memory_capacity")
    ensure_positive_int(hardware_block_limit, "hardware_block_limit")
    shared = np.asarray(shared_words_per_block, dtype=float)
    if np.any(shared < 0):
        raise ValueError("shared_words_per_block must be non-negative")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = shared_memory_capacity / shared
        nearest = np.round(ratio)
        snap = (nearest > 0) & (np.abs(ratio - nearest) <= 1e-9 * nearest)
        by_memory = np.where(snap, nearest, np.floor(ratio))
    zero_shared = shared == 0
    if np.any(~zero_shared & (by_memory == 0)):
        bad = shared[~zero_shared & (by_memory == 0)].flat[0]
        raise ValueError(
            f"a thread block needs {bad} shared words but the "
            f"MP only has {shared_memory_capacity}: the kernel cannot run"
        )
    resident = np.minimum(by_memory, hardware_block_limit)
    return np.where(zero_shared, hardware_block_limit, resident).astype(np.int64)


def wave_count_grid(thread_blocks, physical_mps: int, blocks_per_mp):
    """Vectorized twin of :func:`wave_count` over launch arrays.

    Both array operands must be positive everywhere; ``ceil_div`` dispatches
    to its ``np.ceil`` branch, which is bit-for-bit identical to the scalar
    ``math.ceil`` branch element by element.
    """
    ensure_positive_int(physical_mps, "physical_mps")
    blocks = np.asarray(thread_blocks, dtype=np.int64)
    resident = np.asarray(blocks_per_mp, dtype=np.int64)
    if np.any(blocks <= 0):
        raise ValueError("thread_blocks must be positive")
    if np.any(resident <= 0):
        raise ValueError("blocks_per_mp must be positive")
    return np.asarray(ceil_div(blocks, physical_mps * resident), dtype=np.int64)


@dataclass(frozen=True)
class OccupancyModel:
    """Occupancy of a physical GPU with ``k'`` MPs and block limit ``H``.

    This couples the two hardware parameters that Expression (2) introduces
    on top of the abstract machine: the number of physical multiprocessors
    ``k'`` and the hardware limit ``H`` on blocks resident per MP.
    """

    physical_mps: int
    hardware_block_limit: int

    def __post_init__(self) -> None:
        ensure_positive_int(self.physical_mps, "physical_mps")
        ensure_positive_int(self.hardware_block_limit, "hardware_block_limit")

    def blocks_per_mp(
        self, shared_memory_capacity: int, shared_words_per_block: float
    ) -> int:
        """``ℓ`` for a kernel using ``shared_words_per_block`` words per block."""
        return blocks_per_multiprocessor(
            shared_memory_capacity,
            shared_words_per_block,
            self.hardware_block_limit,
        )

    def concurrent_blocks(
        self, shared_memory_capacity: int, shared_words_per_block: float
    ) -> int:
        """Device-wide concurrent blocks, ``k'·ℓ``."""
        return self.physical_mps * self.blocks_per_mp(
            shared_memory_capacity, shared_words_per_block
        )

    def waves(
        self,
        thread_blocks: int,
        shared_memory_capacity: int,
        shared_words_per_block: float,
    ) -> int:
        """Number of waves ``⌈k_i / (k'·ℓ)⌉`` needed to run ``thread_blocks``."""
        return wave_count(
            thread_blocks,
            self.physical_mps,
            self.blocks_per_mp(shared_memory_capacity, shared_words_per_block),
        )

    def occupancy_fraction(
        self,
        thread_blocks: int,
        shared_memory_capacity: int,
        shared_words_per_block: float,
    ) -> float:
        """Fraction of the device's block slots filled by the last (or only) wave.

        This is a convenience diagnostic: ``1.0`` means every wave fills all
        ``k'·ℓ`` slots; smaller values indicate a ragged final wave or a
        kernel too small to fill the device.
        """
        slots = self.concurrent_blocks(
            shared_memory_capacity, shared_words_per_block
        )
        waves = wave_count(thread_blocks, self.physical_mps,
                           self.blocks_per_mp(shared_memory_capacity,
                                              shared_words_per_block))
        return thread_blocks / (waves * slots)
