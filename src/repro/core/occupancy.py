"""Occupancy computations used by the GPU-cost function (Expression 2).

A physical streaming multiprocessor can hold ``ℓ = min(⌊M / m⌋, H)`` thread
blocks concurrently, where ``m`` is the shared memory used per block and
``H`` is a hardware-imposed limit on resident blocks.  With ``k'`` physical
MPs, an algorithm round that launches ``k_i`` thread blocks executes in
``⌈k_i / (k'·ℓ)⌉`` *waves*; Expression (2) scales the round's parallel time
``t_i`` by that wave count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_non_negative, ensure_positive_int


def blocks_per_multiprocessor(
    shared_memory_capacity: int,
    shared_words_per_block: float,
    hardware_block_limit: int,
) -> int:
    """Return ``ℓ = min(⌊M / m⌋, H)``.

    Parameters
    ----------
    shared_memory_capacity:
        ``M`` -- shared-memory words available per MP.
    shared_words_per_block:
        ``m`` -- shared-memory words consumed by one resident thread block.
        A block using no shared memory is only limited by ``H``.
    hardware_block_limit:
        ``H`` -- the hardware cap on concurrently resident blocks per MP.
    """
    ensure_positive_int(shared_memory_capacity, "shared_memory_capacity")
    ensure_non_negative(shared_words_per_block, "shared_words_per_block")
    ensure_positive_int(hardware_block_limit, "hardware_block_limit")
    if shared_words_per_block == 0:
        return hardware_block_limit
    # With fractional ``m`` the division is inexact in binary (e.g.
    # M=10, m=0.1 gives 99.999...), and a bare floor would lose a resident
    # block the MP really has room for.  Snap to the nearest integer only
    # when the ratio is within a relative tolerance of it — a blanket
    # multiplicative epsilon would instead *overcount* huge exact ratios.
    ratio = shared_memory_capacity / shared_words_per_block
    nearest = round(ratio)
    if nearest > 0 and abs(ratio - nearest) <= 1e-9 * nearest:
        by_memory = int(nearest)
    else:
        by_memory = int(math.floor(ratio))
    if by_memory == 0:
        raise ValueError(
            f"a thread block needs {shared_words_per_block} shared words but the "
            f"MP only has {shared_memory_capacity}: the kernel cannot run"
        )
    return min(by_memory, hardware_block_limit)


def wave_count(thread_blocks: int, physical_mps: int, blocks_per_mp: int) -> int:
    """Return the number of block waves ``⌈k_i / (k'·ℓ)⌉``."""
    ensure_positive_int(thread_blocks, "thread_blocks")
    ensure_positive_int(physical_mps, "physical_mps")
    ensure_positive_int(blocks_per_mp, "blocks_per_mp")
    return ceil_div(thread_blocks, (physical_mps * blocks_per_mp))


@dataclass(frozen=True)
class OccupancyModel:
    """Occupancy of a physical GPU with ``k'`` MPs and block limit ``H``.

    This couples the two hardware parameters that Expression (2) introduces
    on top of the abstract machine: the number of physical multiprocessors
    ``k'`` and the hardware limit ``H`` on blocks resident per MP.
    """

    physical_mps: int
    hardware_block_limit: int

    def __post_init__(self) -> None:
        ensure_positive_int(self.physical_mps, "physical_mps")
        ensure_positive_int(self.hardware_block_limit, "hardware_block_limit")

    def blocks_per_mp(
        self, shared_memory_capacity: int, shared_words_per_block: float
    ) -> int:
        """``ℓ`` for a kernel using ``shared_words_per_block`` words per block."""
        return blocks_per_multiprocessor(
            shared_memory_capacity,
            shared_words_per_block,
            self.hardware_block_limit,
        )

    def concurrent_blocks(
        self, shared_memory_capacity: int, shared_words_per_block: float
    ) -> int:
        """Device-wide concurrent blocks, ``k'·ℓ``."""
        return self.physical_mps * self.blocks_per_mp(
            shared_memory_capacity, shared_words_per_block
        )

    def waves(
        self,
        thread_blocks: int,
        shared_memory_capacity: int,
        shared_words_per_block: float,
    ) -> int:
        """Number of waves ``⌈k_i / (k'·ℓ)⌉`` needed to run ``thread_blocks``."""
        return wave_count(
            thread_blocks,
            self.physical_mps,
            self.blocks_per_mp(shared_memory_capacity, shared_words_per_block),
        )

    def occupancy_fraction(
        self,
        thread_blocks: int,
        shared_memory_capacity: int,
        shared_words_per_block: float,
    ) -> float:
        """Fraction of the device's block slots filled by the last (or only) wave.

        This is a convenience diagnostic: ``1.0`` means every wave fills all
        ``k'·ℓ`` slots; smaller values indicate a ragged final wave or a
        kernel too small to fill the device.
        """
        slots = self.concurrent_blocks(
            shared_memory_capacity, shared_words_per_block
        )
        waves = wave_count(thread_blocks, self.physical_mps,
                           self.blocks_per_mp(shared_memory_capacity,
                                              shared_words_per_block))
        return thread_blocks / (waves * slots)
