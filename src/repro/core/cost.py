"""The ATGPU cost functions (Expressions 1 and 2 of the paper).

Section III defines two cost functions over the per-round metrics of an
algorithm:

* **Perfect-GPU cost** (Expression 1) -- the machine has enough
  multiprocessors to run every thread block concurrently::

      Σ_i [ T_I(i) + (t_i + λ·q_i)/γ + T_O(i) + σ ]

* **GPU-cost** (Expression 2) -- the cost as simulated on a real GPU with
  ``k' < k`` multiprocessors, each able to host
  ``ℓ = min(⌊M/m⌋, H)`` blocks concurrently::

      Σ_i [ T_I(i) + (⌈k_i/(k'·ℓ)⌉·t_i + λ·q_i)/γ + T_O(i) + σ ]

The cost parameters are:

========  =======================================================
``γ``     operation rate (clock rate) of the GPU
``λ``     latency, in cycles, of one global-memory block access
``σ``     fixed per-round synchronisation cost
``α``     fixed per-transaction host↔device transfer overhead
``β``     per-word host↔device transfer cost
========  =======================================================

The SWGPU comparison cost used throughout the evaluation is the same
expression with the transfer terms removed (see
:mod:`repro.core.comparison`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, RoundMetrics
from repro.core.occupancy import OccupancyModel
from repro.core.transfer import BoyerTransferModel
from repro.utils.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class CostParameters:
    """The five scalar parameters of the ATGPU cost function.

    Parameters
    ----------
    gamma:
        ``γ`` -- operation rate.  Dividing cycles by ``γ`` converts them into
        the cost unit (e.g. with ``γ`` in cycles/second the cost is seconds).
    lam:
        ``λ`` -- cycles needed to access one global-memory block
        (the paper quotes 400--800 cycles for real hardware).
    sigma:
        ``σ`` -- fixed cost of the per-round synchronisation tasks
        (device reset, queue clearing, kernel launch, ...).
    alpha:
        ``α`` -- fixed cost per host↔device transfer transaction.
    beta:
        ``β`` -- cost per word transferred between host and device.
    """

    gamma: float
    lam: float
    sigma: float
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        ensure_positive(self.gamma, "gamma")
        ensure_non_negative(self.lam, "lam")
        ensure_non_negative(self.sigma, "sigma")
        ensure_non_negative(self.alpha, "alpha")
        ensure_non_negative(self.beta, "beta")

    @property
    def transfer_model(self) -> BoyerTransferModel:
        """The Boyer transfer model carrying this parameter set's ``α``/``β``."""
        return BoyerTransferModel(alpha=self.alpha, beta=self.beta)

    def without_transfer(self) -> "CostParameters":
        """Copy of the parameters with ``α = β = 0`` (the SWGPU view)."""
        return replace(self, alpha=0.0, beta=0.0)

    def scaled(self, factor: float) -> "CostParameters":
        """Uniformly rescale the cost unit (e.g. seconds → milliseconds)."""
        ensure_positive(factor, "factor")
        return CostParameters(
            gamma=self.gamma / factor,
            lam=self.lam,
            sigma=self.sigma * factor,
            alpha=self.alpha * factor,
            beta=self.beta * factor,
        )


@dataclass(frozen=True)
class CostBreakdown:
    """Itemised cost of an algorithm under one of the two cost functions.

    The components sum to :attr:`total`; the transfer component is what the
    SWGPU cost omits, and :attr:`transfer_proportion` is the predicted ``ΔT``
    plotted in Figure 6 of the paper.
    """

    inward_transfer: float
    outward_transfer: float
    compute: float
    io: float
    synchronisation: float

    @property
    def transfer(self) -> float:
        """Total transfer component, ``Σ (T_I(i) + T_O(i))``."""
        return self.inward_transfer + self.outward_transfer

    @property
    def kernel(self) -> float:
        """The kernel-side component (compute + I/O + synchronisation)."""
        return self.compute + self.io + self.synchronisation

    @property
    def total(self) -> float:
        """The full ATGPU cost."""
        return self.transfer + self.kernel

    @property
    def transfer_proportion(self) -> float:
        """``ΔT`` -- fraction of the total cost attributed to transfer."""
        if self.total == 0:
            return 0.0
        return self.transfer / self.total

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        if not isinstance(other, CostBreakdown):
            return NotImplemented
        return CostBreakdown(
            inward_transfer=self.inward_transfer + other.inward_transfer,
            outward_transfer=self.outward_transfer + other.outward_transfer,
            compute=self.compute + other.compute,
            io=self.io + other.io,
            synchronisation=self.synchronisation + other.synchronisation,
        )


class ATGPUCostModel:
    """Evaluates Expressions (1) and (2) for algorithm metrics on a machine.

    Parameters
    ----------
    machine:
        The abstract machine instance (supplies ``M`` for the occupancy term
        and the capacity limits).
    parameters:
        The scalar cost parameters ``γ, λ, σ, α, β``.
    occupancy:
        The physical-GPU occupancy model (``k'`` and ``H``).  Only needed for
        the GPU-cost (Expression 2); the perfect cost ignores it.
    """

    def __init__(
        self,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: Optional[OccupancyModel] = None,
    ) -> None:
        self.machine = machine
        self.parameters = parameters
        self.occupancy = occupancy

    # ------------------------------------------------------------------ #
    # Per-round costs
    # ------------------------------------------------------------------ #
    def round_breakdown(
        self, metrics: RoundMetrics, use_occupancy: bool = False
    ) -> CostBreakdown:
        """Itemised cost of one round.

        With ``use_occupancy=False`` this is one summand of Expression (1);
        with ``use_occupancy=True`` the round time is scaled by the wave
        count ``⌈k_i/(k'·ℓ)⌉`` as in Expression (2).
        """
        params = self.parameters
        transfer = params.transfer_model
        time = metrics.time
        if use_occupancy:
            if self.occupancy is None:
                raise ValueError(
                    "GPU-cost (Expression 2) requires an OccupancyModel; "
                    "construct the ATGPUCostModel with one"
                )
            waves = self.occupancy.waves(
                thread_blocks=metrics.thread_blocks,
                shared_memory_capacity=self.machine.M,
                shared_words_per_block=metrics.shared_words_per_mp,
            )
            time = waves * metrics.time
        return CostBreakdown(
            inward_transfer=transfer.inward_cost(metrics),
            outward_transfer=transfer.outward_cost(metrics),
            compute=time / params.gamma,
            io=params.lam * metrics.io_blocks / params.gamma,
            synchronisation=params.sigma,
        )

    def round_cost(self, metrics: RoundMetrics, use_occupancy: bool = False) -> float:
        """Scalar cost of one round."""
        return self.round_breakdown(metrics, use_occupancy=use_occupancy).total

    # ------------------------------------------------------------------ #
    # Whole-algorithm costs
    # ------------------------------------------------------------------ #
    def breakdown(
        self, metrics: AlgorithmMetrics, use_occupancy: bool = False
    ) -> CostBreakdown:
        """Itemised cost of a whole algorithm (sum over rounds)."""
        metrics.validate_against(self.machine)
        total = CostBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
        for round_metrics in metrics:
            total = total + self.round_breakdown(
                round_metrics, use_occupancy=use_occupancy
            )
        return total

    def perfect_cost(self, metrics: AlgorithmMetrics) -> float:
        """Expression (1): cost on the perfect GPU."""
        return self.breakdown(metrics, use_occupancy=False).total

    def gpu_cost(self, metrics: AlgorithmMetrics) -> float:
        """Expression (2): cost simulated on a GPU with ``k'`` MPs."""
        return self.breakdown(metrics, use_occupancy=True).total

    def transfer_cost(self, metrics: AlgorithmMetrics) -> float:
        """Total transfer component ``Σ_i (T_I(i) + T_O(i))``."""
        return self.breakdown(metrics, use_occupancy=False).transfer

    def kernel_cost(self, metrics: AlgorithmMetrics, use_occupancy: bool = True) -> float:
        """The non-transfer component of the cost (what SWGPU models)."""
        return self.breakdown(metrics, use_occupancy=use_occupancy).kernel

    def predicted_transfer_proportion(
        self, metrics: AlgorithmMetrics, use_occupancy: bool = True
    ) -> float:
        """``ΔT`` -- predicted share of total cost spent on transfer (Fig. 6)."""
        return self.breakdown(
            metrics, use_occupancy=use_occupancy
        ).transfer_proportion
