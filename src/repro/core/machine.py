"""The ATGPU abstract machine.

The paper (Section II) defines an instance of the model as
``ATGPU(p, b, M, G)``:

* ``p``  -- total number of cores,
* ``b``  -- cores per multiprocessor (MP); also the warp width, the number of
  shared-memory banks, and the size in words of one global-memory block,
* ``M``  -- words of shared memory per MP,
* ``G``  -- words of global memory (the *global memory limit* is the
  architectural addition of ATGPU over SWGPU/AGPU).

There are therefore ``k = p / b`` multiprocessors; the shared memory of each
MP is split into ``b`` banks such that ``b`` successive words reside in
distinct banks, and the global memory is divided into blocks of ``b`` words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.numerics import ceil_div
from repro.utils.validation import ensure_positive_int


@dataclass(frozen=True)
class ATGPUMachine:
    """An instance ``ATGPU(p, b, M, G)`` of the abstract machine.

    Parameters
    ----------
    p:
        Total number of cores on the device.
    b:
        Number of cores per multiprocessor.  ``b`` must divide ``p``.  ``b``
        is simultaneously the warp width, the number of shared-memory banks
        per MP and the number of words per global-memory block.
    M:
        Words of shared memory per multiprocessor.
    G:
        Words of global memory on the device.

    Examples
    --------
    >>> machine = ATGPUMachine(p=64, b=32, M=12288, G=1 << 28)
    >>> machine.k
    2
    >>> machine.global_memory_blocks
    8388608
    """

    p: int
    b: int
    M: int
    G: int

    def __post_init__(self) -> None:
        ensure_positive_int(self.p, "p")
        ensure_positive_int(self.b, "b")
        ensure_positive_int(self.M, "M")
        ensure_positive_int(self.G, "G")
        if self.p % self.b != 0:
            raise ValueError(
                f"b ({self.b}) must divide p ({self.p}): the model has k = p/b "
                "multiprocessors of exactly b cores each"
            )
        if self.M < self.b:
            raise ValueError(
                f"M ({self.M}) must be at least b ({self.b}): each MP needs at "
                "least one word per bank of shared memory"
            )
        if self.G < self.b:
            raise ValueError(
                f"G ({self.G}) must be at least b ({self.b}): global memory is "
                "divided into blocks of b words"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of multiprocessors, ``k = p / b``."""
        return self.p // self.b

    @property
    def num_multiprocessors(self) -> int:
        """Alias of :attr:`k`."""
        return self.k

    @property
    def warp_width(self) -> int:
        """Number of lockstep cores per MP (alias of ``b``)."""
        return self.b

    @property
    def shared_memory_banks(self) -> int:
        """Number of shared-memory banks per MP (equal to ``b``)."""
        return self.b

    @property
    def words_per_block(self) -> int:
        """Number of words per global-memory block (equal to ``b``)."""
        return self.b

    @property
    def global_memory_blocks(self) -> int:
        """Number of whole global-memory blocks, ``⌊G / b⌋``."""
        return self.G // self.b

    # ------------------------------------------------------------------ #
    # Capacity checks (Section III: space metrics)
    # ------------------------------------------------------------------ #
    def fits_in_global_memory(self, words: int) -> bool:
        """Whether ``words`` words fit within the global-memory limit ``G``."""
        if words < 0:
            raise ValueError(f"words must be >= 0, got {words!r}")
        return words <= self.G

    def fits_in_shared_memory(self, words: int) -> bool:
        """Whether ``words`` words fit within one MP's shared memory ``M``."""
        if words < 0:
            raise ValueError(f"words must be >= 0, got {words!r}")
        return words <= self.M

    # ------------------------------------------------------------------ #
    # Memory-geometry helpers shared by the analysis and the simulator
    # ------------------------------------------------------------------ #
    def blocks_for_words(self, words: int) -> int:
        """Number of global-memory blocks needed to hold ``words`` words."""
        if words < 0:
            raise ValueError(f"words must be >= 0, got {words!r}")
        return ceil_div(words, self.b)

    def block_of_address(self, address: int) -> int:
        """Index of the global-memory block containing word ``address``."""
        if address < 0 or address >= self.G:
            raise ValueError(
                f"address {address!r} outside global memory of {self.G} words"
            )
        return address // self.b

    def bank_of_address(self, address: int) -> int:
        """Shared-memory bank of word ``address`` (successive words rotate banks)."""
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address!r}")
        return address % self.b

    def thread_blocks_for(self, threads: int) -> int:
        """Number of ``b``-wide thread blocks needed for ``threads`` threads."""
        if threads <= 0:
            raise ValueError(f"threads must be > 0, got {threads!r}")
        return ceil_div(threads, self.b)

    def thread_blocks_grid(self, threads) -> np.ndarray:
        """Vectorized twin of :meth:`thread_blocks_for` over a size vector.

        Mirrors the scalar's ``ceil(threads / b)`` float division exactly
        (same IEEE operation per element), so batch metrics factories built
        on it stay bit-for-bit equal to the scalar factories.
        """
        t = np.asarray(threads)
        if np.any(t <= 0):
            at = t[t <= 0]
            raise ValueError(f"threads must be > 0, got {int(at.flat[0])!r}")
        return ceil_div(t, self.b).astype(np.int64)

    def describe(self) -> str:
        """One-line human readable description of the machine instance."""
        return (
            f"ATGPU(p={self.p}, b={self.b}, M={self.M}, G={self.G}) "
            f"with k={self.k} multiprocessors"
        )


def perfect_machine_for(threads: int, b: int, M: int, G: int) -> ATGPUMachine:
    """Build the "perfect GPU" machine with one MP per thread block.

    Expression (1) of the paper evaluates the cost on a machine with enough
    multiprocessors to run every thread block of the algorithm concurrently.
    This helper returns an :class:`ATGPUMachine` with ``k`` equal to the
    number of thread blocks required by ``threads`` threads of width ``b``.
    """
    ensure_positive_int(threads, "threads")
    ensure_positive_int(b, "b")
    k = ceil_div(threads, b)
    return ATGPUMachine(p=k * b, b=b, M=M, G=G)
