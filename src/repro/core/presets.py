"""Machine, occupancy and cost-parameter presets.

The paper's experiments run on an nVidia GTX 650 (Kepler GK107: 2 streaming
multiprocessors, 1 GB of GDDR5, ~1058 MHz core clock) attached over PCIe to
an AMD A10-5800K host.  The default presets below model that configuration;
additional presets for other GPUs support the paper's stated future work of
"verifying the model using other GPUs".

All cost parameters are expressed in **seconds** so that predicted costs and
simulated observed times live on comparable scales:

* ``gamma``  -- core clock in cycles per second,
* ``lam``    -- cycles charged per global-memory block access,
* ``sigma``  -- seconds per round of synchronisation / kernel launch,
* ``alpha``  -- seconds of fixed overhead per host↔device transaction,
* ``beta``   -- seconds per 4-byte word of host↔device transfer.

A note on ``lam``.  The paper motivates ``λ`` with the *latency* of a global
memory access (400--800 cycles), but its cost function charges ``λ`` for
**every** block transaction of **every** thread block serially
(``λ·q_i/γ``), with no latency hiding.  Plugging a raw latency in therefore
over-charges large kernels by orders of magnitude and makes the transfer
terms invisible — which contradicts the magnitudes the paper actually plots
(its ATGPU cost for vector addition is clearly transfer-dominated).  The
presets therefore use the *bandwidth-amortised* cost of serving one
``b``-word block from device memory (``b·word_bytes / memory_bandwidth``
expressed in core cycles, ≈5 cycles for the GTX 650), which reproduces the
paper's predicted-cost behaviour.  ``repro.core.calibration`` can re-fit
``λ`` (and the other parameters) from observed timings, and the occupancy
ablation benchmark explores raw-latency values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.cost import CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.occupancy import OccupancyModel

#: Words (4-byte) in one gigabyte.
_WORDS_PER_GIB = (1 << 30) // 4


@dataclass(frozen=True)
class GPUPreset:
    """A named GPU configuration bundling machine, occupancy and cost data."""

    name: str
    machine: ATGPUMachine
    occupancy: OccupancyModel
    parameters: CostParameters
    description: str = ""

    def cost_parameters(self) -> CostParameters:
        """The preset's cost parameters (convenience accessor)."""
        return self.parameters


def _make_preset(
    name: str,
    physical_mps: int,
    warp_width: int,
    shared_memory_words: int,
    global_memory_words: int,
    hardware_block_limit: int,
    clock_hz: float,
    global_latency_cycles: float,
    sync_seconds: float,
    transfer_alpha_seconds: float,
    transfer_beta_seconds_per_word: float,
    description: str,
) -> GPUPreset:
    machine = ATGPUMachine(
        p=physical_mps * warp_width,
        b=warp_width,
        M=shared_memory_words,
        G=global_memory_words,
    )
    occupancy = OccupancyModel(
        physical_mps=physical_mps, hardware_block_limit=hardware_block_limit
    )
    parameters = CostParameters(
        gamma=clock_hz,
        lam=global_latency_cycles,
        sigma=sync_seconds,
        alpha=transfer_alpha_seconds,
        beta=transfer_beta_seconds_per_word,
    )
    return GPUPreset(
        name=name,
        machine=machine,
        occupancy=occupancy,
        parameters=parameters,
        description=description,
    )


#: The paper's experimental GPU: nVidia GTX 650 (Kepler GK107).
GTX_650 = _make_preset(
    name="gtx650",
    physical_mps=2,
    warp_width=32,
    shared_memory_words=48 * 1024 // 4,
    global_memory_words=_WORDS_PER_GIB,
    hardware_block_limit=16,
    clock_hz=1.058e9,
    global_latency_cycles=4.7,
    sync_seconds=2.0e-5,
    transfer_alpha_seconds=1.5e-5,
    transfer_beta_seconds_per_word=1.25e-9,
    description=(
        "nVidia GTX 650 (2 SMs, 1 GB GDDR5, 1058 MHz) over PCIe 2.0-class "
        "pageable transfers -- the paper's testbed"
    ),
)

#: A mid-range Maxwell part, for the "other GPUs" future-work experiments.
GTX_980 = _make_preset(
    name="gtx980",
    physical_mps=16,
    warp_width=32,
    shared_memory_words=96 * 1024 // 4,
    global_memory_words=4 * _WORDS_PER_GIB,
    hardware_block_limit=32,
    clock_hz=1.216e9,
    global_latency_cycles=0.7,
    sync_seconds=1.0e-5,
    transfer_alpha_seconds=1.0e-5,
    transfer_beta_seconds_per_word=3.5e-10,
    description="nVidia GTX 980 (16 SMs, 4 GB, PCIe 3.0 pageable transfers)",
)

#: A datacentre Kepler part with a large frame buffer.
TESLA_K40 = _make_preset(
    name="k40",
    physical_mps=15,
    warp_width=32,
    shared_memory_words=48 * 1024 // 4,
    global_memory_words=12 * _WORDS_PER_GIB,
    hardware_block_limit=16,
    clock_hz=0.745e9,
    global_latency_cycles=0.35,
    sync_seconds=1.2e-5,
    transfer_alpha_seconds=1.1e-5,
    transfer_beta_seconds_per_word=4.0e-10,
    description="nVidia Tesla K40 (15 SMs, 12 GB, PCIe 3.0)",
)

#: A Pascal consumer flagship.
GTX_1080 = _make_preset(
    name="gtx1080",
    physical_mps=20,
    warp_width=32,
    shared_memory_words=96 * 1024 // 4,
    global_memory_words=8 * _WORDS_PER_GIB,
    hardware_block_limit=32,
    clock_hz=1.607e9,
    global_latency_cycles=0.6,
    sync_seconds=0.8e-5,
    transfer_alpha_seconds=0.9e-5,
    transfer_beta_seconds_per_word=3.3e-10,
    description="nVidia GTX 1080 (20 SMs, 8 GB, PCIe 3.0)",
)

#: Registry of presets keyed by name.
PRESETS: Dict[str, GPUPreset] = {
    preset.name: preset
    for preset in (GTX_650, GTX_980, TESLA_K40, GTX_1080)
}

#: The preset used by default throughout the reproduction (the paper's GPU).
DEFAULT_PRESET = GTX_650


def register_preset(preset: GPUPreset, overwrite: bool = False) -> GPUPreset:
    """Register a preset so specs and sessions can refer to it by name.

    The registry key is the lowercased name, matching :func:`get_preset`'s
    case-insensitive lookup.  Re-registering an identical preset is a no-op;
    registering a *different* preset under an existing name raises
    :class:`ValueError` unless ``overwrite=True``.
    """
    key = preset.name.lower()
    existing = PRESETS.get(key)
    if existing is not None and existing != preset and not overwrite:
        raise ValueError(
            f"a different GPU preset is already registered as {preset.name!r}; "
            "rename the preset or pass overwrite=True"
        )
    PRESETS[key] = preset
    return preset


def get_preset(name: str) -> GPUPreset:
    """Look up a preset by name; raises :class:`KeyError` with suggestions."""
    key = name.lower()
    if key not in PRESETS:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown GPU preset {name!r}; known presets: {known}")
    return PRESETS[key]


def preset_names() -> Tuple[str, ...]:
    """Names of all registered presets."""
    return tuple(sorted(PRESETS))
