"""Sweep-level prediction and prediction-vs-observation comparison.

The paper's evaluation (Section IV) always works over a *sweep* of input
sizes: for each size it computes the cost of every model backend under
comparison (prediction side) and measures the total and kernel-only running
times (observation side), then compares growth shapes on a normalised scale
and compares the transfer proportions ``ΔT`` (predicted) and ``ΔE``
(observed).

:class:`SweepPrediction` holds the prediction side as one cost series per
registered backend (see :mod:`repro.core.backends`); :class:`SweepObservation`
holds the observation side; :class:`PredictionComparison` computes every
derived statistic the paper reports (normalised curves, Figure 6 series,
average transfer shares, Δ accuracy, per-backend growth-shape scores, and
the SWGPU "capture" fraction of Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.analysis import AnalysisReport, analyse_metrics
from repro.core.backends import (
    DEFAULT_BACKENDS,
    all_backends_support_batch,
    backend_label,
    evaluate_backends_batch,
)
from repro.core.batch import GridMetricsFactory, MetricsBatch, batch_breakdown
from repro.core.cost import CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics
from repro.core.occupancy import OccupancyModel
from repro.utils.stats import (
    POSITIVE_TOTALS_MESSAGE,
    average,
    growth_rate_similarity,
    mean_absolute_difference,
    normalise_series,
    require_positive_totals,
)

MetricsFactory = Callable[[int], AlgorithmMetrics]


@dataclass
class SweepPrediction:
    """Model predictions across a sweep of input sizes.

    A prediction carries one cost series per backend name plus the predicted
    transfer proportions ``ΔT``.  It is normally built by
    :func:`predict_sweep`: the default vectorized path fills every series
    (including :attr:`transfers` / :attr:`kernels`) from one batch
    evaluation, while the scalar path additionally attaches the per-size
    :class:`~repro.core.analysis.AnalysisReport` objects.  It can equally be
    reconstructed from stored series alone — e.g. when a cached
    :class:`~repro.experiments.results.Result` is loaded from disk — in
    which case the report-only accessors raise a clear error.
    """

    algorithm: str
    sizes: List[int]
    reports: List[AnalysisReport] = field(default_factory=list)
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    proportions: Optional[Sequence[float]] = None
    #: Predicted transfer / kernel cost per size.  Populated by the batch
    #: path (which builds no per-size reports); the report-based accessors
    #: are used when absent.
    transfers: Optional[Sequence[float]] = None
    kernels: Optional[Sequence[float]] = None

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("a sweep needs at least one input size")
        if self.reports and len(self.sizes) != len(self.reports):
            raise ValueError("sizes and reports must have the same length")
        if not self.reports and not self.series:
            raise ValueError(
                "a prediction needs analysis reports or precomputed series"
            )
        for name, values in self.series.items():
            if len(values) != len(self.sizes):
                raise ValueError(
                    f"series for backend {name!r} has {len(values)} points "
                    f"but the sweep has {len(self.sizes)}"
                )
        for label, values in (
            ("proportions", self.proportions),
            ("transfers", self.transfers),
            ("kernels", self.kernels),
        ):
            if values is not None and len(values) != len(self.sizes):
                raise ValueError(f"{label} must align with the sweep sizes")

    # ------------------------------------------------------------------ #
    # Generic per-backend access
    # ------------------------------------------------------------------ #
    def backend_names(self) -> Tuple[str, ...]:
        """Backends this prediction can produce a cost series for."""
        names = list(self.series)
        if self.reports:
            for name in ("atgpu", "swgpu", "perfect"):
                if name not in names:
                    names.append(name)
            for name in self.reports[0].backend_costs:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def series_for(self, backend: str) -> np.ndarray:
        """Cost per size under a named backend."""
        if backend in self.series:
            return np.asarray(self.series[backend], dtype=float)
        if self.reports:
            return np.array(
                [r.backend_cost(backend) for r in self.reports], dtype=float
            )
        known = ", ".join(self.backend_names())
        raise KeyError(
            f"no cost series for backend {backend!r}; available: {known}"
        )

    def _require_reports(self, what: str) -> None:
        if not self.reports:
            raise ValueError(
                f"{what} requires per-size analysis reports; this prediction "
                "only carries precomputed backend series"
            )

    # ------------------------------------------------------------------ #
    # Series accessors (the curves of Figures 3a/4a/5a and 6)
    # ------------------------------------------------------------------ #
    @property
    def atgpu_costs(self) -> np.ndarray:
        """ATGPU GPU-cost per size (the "ATGPU" curve)."""
        return self.series_for("atgpu")

    @property
    def swgpu_costs(self) -> np.ndarray:
        """SWGPU cost per size (the "SWGPU" curve)."""
        return self.series_for("swgpu")

    @property
    def perfect_costs(self) -> np.ndarray:
        """Expression (1) cost per size."""
        return self.series_for("perfect")

    @property
    def transfer_costs(self) -> np.ndarray:
        """Predicted transfer cost per size."""
        if self.transfers is not None:
            return np.asarray(self.transfers, dtype=float)
        self._require_reports("transfer_costs")
        return np.array([r.transfer_cost for r in self.reports], dtype=float)

    @property
    def kernel_costs(self) -> np.ndarray:
        """Predicted kernel-side cost per size."""
        if self.kernels is not None:
            return np.asarray(self.kernels, dtype=float)
        self._require_reports("kernel_costs")
        return np.array([r.kernel_cost for r in self.reports], dtype=float)

    @property
    def predicted_transfer_proportions(self) -> np.ndarray:
        """``ΔT`` per size (the "Predicted" curve of Figure 6)."""
        if self.proportions is not None:
            return np.asarray(self.proportions, dtype=float)
        self._require_reports("predicted_transfer_proportions")
        return np.array(
            [r.predicted_transfer_proportion for r in self.reports], dtype=float
        )

    def normalised(self, backends: Optional[Sequence[str]] = None
                   ) -> Dict[str, np.ndarray]:
        """Normalised cost curves keyed by backend label (Figures 3c / 4c).

        Defaults to the paper's pair (``atgpu`` and ``swgpu``, labelled
        "ATGPU" / "SWGPU"); pass explicit backend names for other curves.
        """
        names = tuple(backends) if backends is not None else ("atgpu", "swgpu")
        return {
            backend_label(name): normalise_series(self.series_for(name))
            for name in names
        }

    def select(self, indices: Sequence[int]) -> "SweepPrediction":
        """A sub-prediction restricted to the given size columns, in order.

        Every cost of a sweep point depends only on its own column, so a
        prediction evaluated once over the union of several requested sweeps
        serves each individual sweep by slicing — bit-for-bit equal to
        evaluating that sweep alone.  This is the scatter half of the
        request-coalescing machinery (see :mod:`repro.serving`); the gather
        half is :meth:`repro.core.batch.MetricsBatch.select`.
        """
        idx = list(indices)
        if not idx:
            raise ValueError("a sweep needs at least one input size")
        cols = np.asarray(idx, dtype=int)

        def sliced(values: Optional[Sequence[float]]) -> Optional[np.ndarray]:
            if values is None:
                return None
            return np.asarray(values, dtype=float)[cols]

        return SweepPrediction(
            algorithm=self.algorithm,
            sizes=[self.sizes[i] for i in idx],
            reports=[self.reports[i] for i in idx] if self.reports else [],
            series={
                name: np.asarray(values, dtype=float)[cols]
                for name, values in self.series.items()
            },
            proportions=sliced(self.proportions),
            transfers=sliced(self.transfers),
            kernels=sliced(self.kernels),
        )


@dataclass
class SweepObservation:
    """Observed (measured or simulated) running times across a sweep.

    ``total_times`` include the host↔device transfers; ``kernel_times`` are
    the device-only portions.  Units are seconds throughout the reproduction
    (the paper reports milliseconds; only shapes and ratios are compared).
    """

    algorithm: str
    sizes: List[int]
    total_times: List[float]
    kernel_times: List[float]
    transfer_times: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.sizes)
        if len(self.total_times) != n or len(self.kernel_times) != n:
            raise ValueError("sizes, total_times and kernel_times must align")
        if not self.transfer_times:
            self.transfer_times = [
                max(t - k, 0.0)
                for t, k in zip(self.total_times, self.kernel_times)
            ]
        elif len(self.transfer_times) != n:
            raise ValueError("transfer_times must align with sizes")
        for total, kernel in zip(self.total_times, self.kernel_times):
            if kernel > total * (1 + 1e-9):
                raise ValueError(
                    "kernel time cannot exceed total time "
                    f"({kernel!r} > {total!r})"
                )

    @property
    def totals(self) -> np.ndarray:
        """Observed total times as an array."""
        return np.asarray(self.total_times, dtype=float)

    @property
    def kernels(self) -> np.ndarray:
        """Observed kernel-only times as an array."""
        return np.asarray(self.kernel_times, dtype=float)

    @property
    def transfers(self) -> np.ndarray:
        """Observed transfer times as an array."""
        return np.asarray(self.transfer_times, dtype=float)

    @property
    def observed_transfer_proportions(self) -> np.ndarray:
        """``ΔE`` per size (the "Observed" curve of Figure 6)."""
        totals = require_positive_totals(self.totals)
        return self.transfers / totals

    def normalised(self) -> Dict[str, np.ndarray]:
        """Normalised total and kernel curves (Figures 3c / 4c)."""
        return {
            "Total": normalise_series(self.totals),
            "Kernel": normalise_series(self.kernels),
        }


#: The paths :func:`predict_sweep` can take over a sweep.
SWEEP_PATHS: Tuple[str, ...] = ("auto", "batch", "scalar")


def predict_sweep_batch(
    algorithm: str,
    batch: MetricsBatch,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: OccupancyModel,
    backends: Optional[Sequence[str]] = None,
) -> SweepPrediction:
    """Evaluate cost-model backends over a pre-compiled metrics batch.

    This is the vectorized core behind :func:`predict_sweep`: every backend
    family prices the whole sweep as one array program (custom backends
    without a batch evaluator fall back to one scalar call per size), and
    the transfer / kernel / ``ΔT`` series come from one vectorized ATGPU
    breakdown.  The resulting prediction carries no per-size analysis
    reports — every series accessor is served from the precomputed arrays,
    bit-for-bit equal to what the scalar path produces.
    """
    names = tuple(backends) if backends is not None else DEFAULT_BACKENDS
    batch.validate_against(machine)
    gpu = batch_breakdown(
        batch, machine, parameters, occupancy,
        use_occupancy=True, validate=False,
    )
    perfect = batch_breakdown(
        batch, machine, parameters, occupancy,
        use_occupancy=False, validate=False,
    )
    swgpu = batch_breakdown(
        batch, machine, parameters.without_transfer(), occupancy,
        use_occupancy=True, validate=False,
    )
    # Like analyse_metrics, always provide the built-in trio (from the
    # breakdowns just computed): results and figure builders rely on those
    # series being available.
    series = {
        "atgpu": gpu.total,
        "swgpu": swgpu.total,
        "perfect": perfect.total,
    }
    extra = tuple(name for name in names if name not in series)
    series.update(
        evaluate_backends_batch(extra, batch, machine, parameters, occupancy)
    )
    return SweepPrediction(
        algorithm=algorithm,
        sizes=list(batch.sizes),
        series=series,
        proportions=gpu.transfer_proportion,
        transfers=gpu.transfer,
        kernels=gpu.kernel,
    )


def predict_sweep(
    algorithm: str,
    sizes: Sequence[int],
    metrics_factory: MetricsFactory,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: OccupancyModel,
    backends: Optional[Sequence[str]] = None,
    path: str = "auto",
    grid_factory: Optional[GridMetricsFactory] = None,
) -> SweepPrediction:
    """Evaluate the requested cost-model backends over a sweep of sizes.

    ``backends`` defaults to :data:`repro.core.backends.DEFAULT_BACKENDS`.

    ``path`` selects the evaluation strategy:

    * ``"auto"`` (default) — vectorized batch evaluation when every
      requested backend supports it (all built-ins do), otherwise the
      scalar per-size path.  Both produce identical series.
    * ``"batch"`` — force the vectorized path; backends without a batch
      evaluator fall back to scalar calls per size inside it.
    * ``"scalar"`` — force the original per-size path, which additionally
      attaches the per-size :class:`~repro.core.analysis.AnalysisReport`
      objects (useful for per-round introspection).

    ``grid_factory`` optionally supplies the array-native metrics factory
    (whole size list in, one :class:`~repro.core.metrics.MetricsGrid` out);
    the batch path then compiles without constructing any per-size
    :class:`~repro.core.metrics.RoundMetrics` objects.  The scalar path
    always uses ``metrics_factory``.
    """
    if not sizes:
        raise ValueError("sizes must not be empty")
    if path not in SWEEP_PATHS:
        raise ValueError(
            f"path must be one of {', '.join(SWEEP_PATHS)}; got {path!r}"
        )
    names = tuple(backends) if backends is not None else DEFAULT_BACKENDS
    if path == "batch" or (path == "auto" and all_backends_support_batch(names)):
        if grid_factory is not None:
            batch = MetricsBatch.compile(
                algorithm, sizes, grid_factory=grid_factory
            )
        else:
            batch = MetricsBatch.compile(algorithm, sizes, metrics_factory)
        return predict_sweep_batch(
            algorithm, batch, machine, parameters, occupancy, backends=names
        )
    reports = [
        analyse_metrics(
            metrics_factory(int(n)),
            machine,
            parameters,
            occupancy,
            algorithm=algorithm,
            input_size=int(n),
            backends=names,
        )
        for n in sizes
    ]
    series = {
        name: np.array([r.backend_cost(name) for r in reports], dtype=float)
        for name in names
    }
    return SweepPrediction(
        algorithm=algorithm,
        sizes=[int(n) for n in sizes],
        reports=reports,
        series=series,
    )


@dataclass
class PredictionComparison:
    """Pairs a :class:`SweepPrediction` with a :class:`SweepObservation`.

    Provides every statistic of Section IV: the normalised four-curve plot,
    the Figure 6 Δ curves, the average observed/predicted transfer shares,
    the mean |ΔT - ΔE| accuracy, per-backend growth-shape tracking scores,
    and the "capture fraction" (share of the observed total running time
    that the kernel-only view accounts for).
    """

    prediction: SweepPrediction
    observation: SweepObservation

    def __post_init__(self) -> None:
        if self.prediction.sizes != self.observation.sizes:
            raise ValueError(
                "prediction and observation must cover the same input sizes"
            )

    @property
    def sizes(self) -> List[int]:
        """The common sweep sizes."""
        return self.prediction.sizes

    def normalised_curves(self) -> Dict[str, np.ndarray]:
        """The four normalised curves of Figures 3c / 4c."""
        curves = {}
        curves.update(self.prediction.normalised())
        curves.update(self.observation.normalised())
        return curves

    def delta_curves(self) -> Dict[str, np.ndarray]:
        """The Figure 6 curves: observed ``ΔE`` and predicted ``ΔT``."""
        return {
            "observed": self.observation.observed_transfer_proportions,
            "predicted": self.prediction.predicted_transfer_proportions,
        }

    # ------------------------------------------------------------------ #
    # Summary statistics (Section IV-D)
    # ------------------------------------------------------------------ #
    def average_observed_transfer_share(self) -> float:
        """Mean ``ΔE`` -- e.g. 84 % for vector addition in the paper."""
        return average(self.observation.observed_transfer_proportions)

    def average_predicted_transfer_share(self) -> float:
        """Mean ``ΔT``."""
        return average(self.prediction.predicted_transfer_proportions)

    def delta_accuracy(self) -> float:
        """Mean ``|ΔT - ΔE|`` -- the paper quotes 1.5 %, 5.49 %, 0.76 %."""
        return mean_absolute_difference(
            self.prediction.predicted_transfer_proportions,
            self.observation.observed_transfer_proportions,
        )

    def swgpu_capture_fraction(self) -> float:
        """Average share of the observed total captured by the kernel-only view.

        The paper states "the SWGPU captures on average only 16 % of the
        actual running time for the vector addition example" -- i.e. the
        component SWGPU models (the kernel) is on average that fraction of
        the observed total running time.
        """
        totals = require_positive_totals(self.observation.totals)
        return float(np.mean(self.observation.kernels / totals))

    def shape_score(self, backend: str) -> float:
        """Growth-shape similarity between one backend's cost and the total."""
        return growth_rate_similarity(
            self.prediction.series_for(backend), self.observation.totals
        )

    def shape_scores(self, backends: Optional[Sequence[str]] = None
                     ) -> Dict[str, float]:
        """Shape scores for several backends, keyed by backend name."""
        names = tuple(backends) if backends is not None \
            else self.prediction.backend_names()
        return {name: self.shape_score(name) for name in names}

    def atgpu_shape_score(self) -> float:
        """Growth-shape similarity between the ATGPU cost and the total time."""
        return self.shape_score("atgpu")

    def swgpu_shape_score(self) -> float:
        """Growth-shape similarity between the SWGPU cost and the total time."""
        return self.shape_score("swgpu")

    def atgpu_tracks_total_better(self) -> bool:
        """The paper's headline claim, per algorithm.

        ``True`` when the ATGPU cost's normalised growth is at least as close
        to the observed total time as the SWGPU cost's.
        """
        return self.atgpu_shape_score() >= self.swgpu_shape_score()

    def summary(self) -> Dict[str, float]:
        """All Section IV-D statistics in one dictionary."""
        return {
            "average_observed_transfer_share": self.average_observed_transfer_share(),
            "average_predicted_transfer_share": self.average_predicted_transfer_share(),
            "delta_accuracy": self.delta_accuracy(),
            "swgpu_capture_fraction": self.swgpu_capture_fraction(),
            "atgpu_shape_score": self.atgpu_shape_score(),
            "swgpu_shape_score": self.swgpu_shape_score(),
        }
