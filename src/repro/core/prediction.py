"""Sweep-level prediction and prediction-vs-observation comparison.

The paper's evaluation (Section IV) always works over a *sweep* of input
sizes: for each size it computes the ATGPU GPU-cost and the SWGPU cost
(prediction side) and measures the total and kernel-only running times
(observation side), then compares growth shapes on a normalised scale and
compares the transfer proportions ``ΔT`` (predicted) and ``ΔE`` (observed).

:class:`SweepPrediction` holds the prediction side, :class:`SweepObservation`
holds the observation side, and :class:`PredictionComparison` computes every
derived statistic the paper reports (normalised curves, Figure 6 series,
average transfer shares, Δ accuracy, and the SWGPU/ATGPU "capture"
fractions of Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.analysis import AnalysisReport, analyse_metrics
from repro.core.cost import CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics
from repro.core.occupancy import OccupancyModel
from repro.utils.stats import (
    average,
    growth_rate_similarity,
    mean_absolute_difference,
    normalise_series,
)

MetricsFactory = Callable[[int], AlgorithmMetrics]


@dataclass
class SweepPrediction:
    """Model predictions across a sweep of input sizes."""

    algorithm: str
    sizes: List[int]
    reports: List[AnalysisReport]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.reports):
            raise ValueError("sizes and reports must have the same length")
        if not self.sizes:
            raise ValueError("a sweep needs at least one input size")

    # ------------------------------------------------------------------ #
    # Series accessors (the curves of Figures 3a/4a/5a and 6)
    # ------------------------------------------------------------------ #
    @property
    def atgpu_costs(self) -> np.ndarray:
        """ATGPU GPU-cost per size (the "ATGPU" curve)."""
        return np.array([r.gpu_cost for r in self.reports], dtype=float)

    @property
    def swgpu_costs(self) -> np.ndarray:
        """SWGPU cost per size (the "SWGPU" curve)."""
        return np.array([r.swgpu_cost for r in self.reports], dtype=float)

    @property
    def perfect_costs(self) -> np.ndarray:
        """Expression (1) cost per size."""
        return np.array([r.perfect_cost for r in self.reports], dtype=float)

    @property
    def transfer_costs(self) -> np.ndarray:
        """Predicted transfer cost per size."""
        return np.array([r.transfer_cost for r in self.reports], dtype=float)

    @property
    def kernel_costs(self) -> np.ndarray:
        """Predicted kernel-side cost per size."""
        return np.array([r.kernel_cost for r in self.reports], dtype=float)

    @property
    def predicted_transfer_proportions(self) -> np.ndarray:
        """``ΔT`` per size (the "Predicted" curve of Figure 6)."""
        return np.array(
            [r.predicted_transfer_proportion for r in self.reports], dtype=float
        )

    def normalised(self) -> Dict[str, np.ndarray]:
        """Normalised ATGPU and SWGPU curves (Figures 3c / 4c)."""
        return {
            "ATGPU": normalise_series(self.atgpu_costs),
            "SWGPU": normalise_series(self.swgpu_costs),
        }


@dataclass
class SweepObservation:
    """Observed (measured or simulated) running times across a sweep.

    ``total_times`` include the host↔device transfers; ``kernel_times`` are
    the device-only portions.  Units are seconds throughout the reproduction
    (the paper reports milliseconds; only shapes and ratios are compared).
    """

    algorithm: str
    sizes: List[int]
    total_times: List[float]
    kernel_times: List[float]
    transfer_times: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.sizes)
        if len(self.total_times) != n or len(self.kernel_times) != n:
            raise ValueError("sizes, total_times and kernel_times must align")
        if not self.transfer_times:
            self.transfer_times = [
                max(t - k, 0.0)
                for t, k in zip(self.total_times, self.kernel_times)
            ]
        elif len(self.transfer_times) != n:
            raise ValueError("transfer_times must align with sizes")
        for total, kernel in zip(self.total_times, self.kernel_times):
            if kernel > total * (1 + 1e-9):
                raise ValueError(
                    "kernel time cannot exceed total time "
                    f"({kernel!r} > {total!r})"
                )

    @property
    def totals(self) -> np.ndarray:
        """Observed total times as an array."""
        return np.asarray(self.total_times, dtype=float)

    @property
    def kernels(self) -> np.ndarray:
        """Observed kernel-only times as an array."""
        return np.asarray(self.kernel_times, dtype=float)

    @property
    def transfers(self) -> np.ndarray:
        """Observed transfer times as an array."""
        return np.asarray(self.transfer_times, dtype=float)

    @property
    def observed_transfer_proportions(self) -> np.ndarray:
        """``ΔE`` per size (the "Observed" curve of Figure 6)."""
        totals = self.totals
        if np.any(totals <= 0):
            raise ValueError("all observed total times must be positive")
        return self.transfers / totals

    def normalised(self) -> Dict[str, np.ndarray]:
        """Normalised total and kernel curves (Figures 3c / 4c)."""
        return {
            "Total": normalise_series(self.totals),
            "Kernel": normalise_series(self.kernels),
        }


def predict_sweep(
    algorithm: str,
    sizes: Sequence[int],
    metrics_factory: MetricsFactory,
    machine: ATGPUMachine,
    parameters: CostParameters,
    occupancy: OccupancyModel,
) -> SweepPrediction:
    """Evaluate the ATGPU/SWGPU cost functions over a sweep of sizes."""
    if not sizes:
        raise ValueError("sizes must not be empty")
    reports = [
        analyse_metrics(
            metrics_factory(int(n)),
            machine,
            parameters,
            occupancy,
            algorithm=algorithm,
            input_size=int(n),
        )
        for n in sizes
    ]
    return SweepPrediction(algorithm=algorithm, sizes=[int(n) for n in sizes],
                           reports=reports)


@dataclass
class PredictionComparison:
    """Pairs a :class:`SweepPrediction` with a :class:`SweepObservation`.

    Provides every statistic of Section IV: the normalised four-curve plot,
    the Figure 6 Δ curves, the average observed/predicted transfer shares,
    the mean |ΔT - ΔE| accuracy, the SWGPU and ATGPU growth-shape tracking
    scores, and the "capture fraction" (share of the observed total running
    time that the kernel-only view accounts for).
    """

    prediction: SweepPrediction
    observation: SweepObservation

    def __post_init__(self) -> None:
        if self.prediction.sizes != self.observation.sizes:
            raise ValueError(
                "prediction and observation must cover the same input sizes"
            )

    @property
    def sizes(self) -> List[int]:
        """The common sweep sizes."""
        return self.prediction.sizes

    def normalised_curves(self) -> Dict[str, np.ndarray]:
        """The four normalised curves of Figures 3c / 4c."""
        curves = {}
        curves.update(self.prediction.normalised())
        curves.update(self.observation.normalised())
        return curves

    def delta_curves(self) -> Dict[str, np.ndarray]:
        """The Figure 6 curves: observed ``ΔE`` and predicted ``ΔT``."""
        return {
            "observed": self.observation.observed_transfer_proportions,
            "predicted": self.prediction.predicted_transfer_proportions,
        }

    # ------------------------------------------------------------------ #
    # Summary statistics (Section IV-D)
    # ------------------------------------------------------------------ #
    def average_observed_transfer_share(self) -> float:
        """Mean ``ΔE`` -- e.g. 84 % for vector addition in the paper."""
        return average(self.observation.observed_transfer_proportions)

    def average_predicted_transfer_share(self) -> float:
        """Mean ``ΔT``."""
        return average(self.prediction.predicted_transfer_proportions)

    def delta_accuracy(self) -> float:
        """Mean ``|ΔT - ΔE|`` -- the paper quotes 1.5 %, 5.49 %, 0.76 %."""
        return mean_absolute_difference(
            self.prediction.predicted_transfer_proportions,
            self.observation.observed_transfer_proportions,
        )

    def swgpu_capture_fraction(self) -> float:
        """Average share of the observed total captured by the kernel-only view.

        The paper states "the SWGPU captures on average only 16 % of the
        actual running time for the vector addition example" -- i.e. the
        component SWGPU models (the kernel) is on average that fraction of
        the observed total running time.
        """
        totals = self.observation.totals
        kernels = self.observation.kernels
        if np.any(totals <= 0):
            raise ValueError("all observed total times must be positive")
        return float(np.mean(kernels / totals))

    def atgpu_shape_score(self) -> float:
        """Growth-shape similarity between the ATGPU cost and the total time."""
        return growth_rate_similarity(
            self.prediction.atgpu_costs, self.observation.totals
        )

    def swgpu_shape_score(self) -> float:
        """Growth-shape similarity between the SWGPU cost and the total time."""
        return growth_rate_similarity(
            self.prediction.swgpu_costs, self.observation.totals
        )

    def atgpu_tracks_total_better(self) -> bool:
        """The paper's headline claim, per algorithm.

        ``True`` when the ATGPU cost's normalised growth is at least as close
        to the observed total time as the SWGPU cost's.
        """
        return self.atgpu_shape_score() >= self.swgpu_shape_score()

    def summary(self) -> Dict[str, float]:
        """All Section IV-D statistics in one dictionary."""
        return {
            "average_observed_transfer_share": self.average_observed_transfer_share(),
            "average_predicted_transfer_share": self.average_predicted_transfer_share(),
            "delta_accuracy": self.delta_accuracy(),
            "swgpu_capture_fraction": self.swgpu_capture_fraction(),
            "atgpu_shape_score": self.atgpu_shape_score(),
            "swgpu_shape_score": self.swgpu_shape_score(),
        }
