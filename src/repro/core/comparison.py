"""Baseline abstract models and the model feature comparison (Table I).

The paper compares ATGPU against the two prior abstract GPU models:

* **SWGPU** (Sitchinava & Weichert, 2013) -- models execution in host-
  synchronised rounds and analyses algorithms with a cost function over
  operations, memory requests and synchronisations, but does not model
  host↔device data transfer, space usage or a global-memory limit.
* **AGPU** (Koike & Sadakane, 2014) -- provides pseudocode and asymptotic
  analysis of time, I/O and space (with a shared-memory limit), but has no
  cost function, no synchronisation and no data transfer.

For the evaluation the paper uses *"the GPU cost function of our model as
the ATGPU cost, and the GPU cost function of our model minus the data
transfer as the SWGPU cost"*.  :class:`SWGPUCostModel` implements exactly
that subtraction, and :class:`AGPUAnalysis` reports the asymptotic-style
metrics the AGPU model exposes.  :func:`model_feature_table` reproduces
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.cost import ATGPUCostModel, CostBreakdown, CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics
from repro.core.occupancy import OccupancyModel

#: The capability rows of Table I, in the paper's order.
FEATURE_ROWS: Tuple[str, ...] = (
    "Pseudocode",
    "Time Complexity",
    "I/O Complexity",
    "Space Complexity",
    "Shared Memory Limit",
    "Synchronisation",
    "Cost Function",
    "Global Memory Limit",
    "Host/Device Data Transfer",
)

#: The model columns of Table I, in the paper's order.
MODEL_COLUMNS: Tuple[str, ...] = ("AGPU", "SWGPU", "ATGPU")

#: Table I of the paper: which model supports which capability.
_FEATURE_MATRIX: Dict[str, Dict[str, bool]] = {
    "Pseudocode": {"AGPU": True, "SWGPU": False, "ATGPU": True},
    "Time Complexity": {"AGPU": True, "SWGPU": True, "ATGPU": True},
    "I/O Complexity": {"AGPU": True, "SWGPU": True, "ATGPU": True},
    "Space Complexity": {"AGPU": True, "SWGPU": False, "ATGPU": True},
    "Shared Memory Limit": {"AGPU": True, "SWGPU": False, "ATGPU": True},
    "Synchronisation": {"AGPU": False, "SWGPU": True, "ATGPU": True},
    "Cost Function": {"AGPU": False, "SWGPU": True, "ATGPU": True},
    "Global Memory Limit": {"AGPU": False, "SWGPU": False, "ATGPU": True},
    "Host/Device Data Transfer": {"AGPU": False, "SWGPU": False, "ATGPU": True},
}


def model_feature_table() -> Dict[str, Dict[str, bool]]:
    """Return Table I as ``{feature: {model: supported}}`` (a fresh copy)."""
    return {row: dict(cols) for row, cols in _FEATURE_MATRIX.items()}


def model_supports(model: str, feature: str) -> bool:
    """Whether ``model`` supports ``feature`` according to Table I."""
    try:
        row = _FEATURE_MATRIX[feature]
    except KeyError as exc:
        known = ", ".join(FEATURE_ROWS)
        raise KeyError(f"unknown feature {feature!r}; known features: {known}") from exc
    try:
        return row[model]
    except KeyError as exc:
        known = ", ".join(MODEL_COLUMNS)
        raise KeyError(f"unknown model {model!r}; known models: {known}") from exc


def feature_count(model: str) -> int:
    """Number of Table I capabilities supported by ``model``."""
    return sum(1 for feature in FEATURE_ROWS if model_supports(model, feature))


class SWGPUCostModel:
    """The SWGPU cost used in the paper's evaluation.

    It is the ATGPU GPU-cost with the data-transfer terms removed: the same
    ``(waves·t_i + λ·q_i)/γ + σ`` kernel-side summands, but ``α = β = 0``.
    """

    def __init__(
        self,
        machine: ATGPUMachine,
        parameters: CostParameters,
        occupancy: Optional[OccupancyModel] = None,
    ) -> None:
        self.machine = machine
        self.parameters = parameters.without_transfer()
        self._inner = ATGPUCostModel(machine, self.parameters, occupancy)

    def breakdown(
        self, metrics: AlgorithmMetrics, use_occupancy: bool = True
    ) -> CostBreakdown:
        """Itemised SWGPU cost (its transfer components are always zero)."""
        return self._inner.breakdown(metrics, use_occupancy=use_occupancy)

    def cost(self, metrics: AlgorithmMetrics, use_occupancy: bool = True) -> float:
        """Scalar SWGPU cost of an algorithm."""
        return self.breakdown(metrics, use_occupancy=use_occupancy).total

    def perfect_cost(self, metrics: AlgorithmMetrics) -> float:
        """SWGPU analogue of Expression (1)."""
        return self.cost(metrics, use_occupancy=False)

    def gpu_cost(self, metrics: AlgorithmMetrics) -> float:
        """SWGPU analogue of Expression (2) -- the paper's comparison curve."""
        return self.cost(metrics, use_occupancy=True)


@dataclass(frozen=True)
class AGPUAnalysis:
    """The quantities the AGPU model reports for an algorithm.

    AGPU analyses algorithms asymptotically by time, number of memory
    requests, and space used in global and shared memory; it has no cost
    function and no notion of data transfer or synchronisation.  The values
    here are the concrete counts from which those asymptotics are read off.
    """

    time: float
    io_blocks: float
    global_words: float
    shared_words_per_mp: float

    @staticmethod
    def from_metrics(metrics: AlgorithmMetrics) -> "AGPUAnalysis":
        """Project :class:`AlgorithmMetrics` onto the AGPU view."""
        return AGPUAnalysis(
            time=metrics.total_time,
            io_blocks=metrics.total_io_blocks,
            global_words=metrics.max_global_words,
            shared_words_per_mp=metrics.max_shared_words_per_mp,
        )

    def respects_shared_memory_limit(self, machine: ATGPUMachine) -> bool:
        """AGPU disallows algorithms whose shared-memory usage exceeds ``M``."""
        return machine.fits_in_shared_memory(int(self.shared_words_per_mp))


def render_feature_table(include_counts: bool = False) -> str:
    """Render Table I as an aligned text table.

    With ``include_counts=True`` a final row totals the supported features
    per model, which makes the "ATGPU is the most comprehensive" claim
    immediately visible in benchmark output.
    """
    check, blank = "x", "-"
    header = ["Item"] + list(MODEL_COLUMNS)
    rows: List[List[str]] = [header]
    for feature in FEATURE_ROWS:
        rows.append(
            [feature]
            + [check if model_supports(model, feature) else blank
               for model in MODEL_COLUMNS]
        )
    if include_counts:
        rows.append(
            ["Supported features"]
            + [str(feature_count(model)) for model in MODEL_COLUMNS]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)
