"""Per-round and per-algorithm metrics of the ATGPU model (Section III).

The paper analyses an algorithm by, for each round ``i``:

* the parallel time ``t_i`` -- the maximum number of operations executed by
  any MP in the round,
* the I/O ``q_i`` -- the total number of global-memory blocks accessed in the
  round across all MPs,
* the global and shared memory space used,
* the inward transfer ``I_i`` (words moved host → device at the start of the
  round) and the outward transfer ``O_i`` (words moved device → host at the
  end of the round), together with the corresponding transaction counts
  ``Î_i`` and ``Ô_i`` used by the Boyer transfer-cost model.

:class:`RoundMetrics` captures one round; :class:`AlgorithmMetrics` is the
ordered collection of rounds together with machine-level validation
(the algorithm "cannot be run on our model" if it exceeds ``G`` or ``M``).

The module also provides the **array-native** form of the same description:
:class:`RoundMetricsArrays` holds one round's metrics as NumPy columns over a
whole vector of input sizes, and :class:`MetricsGrid` is the ordered
collection of such rounds — the Section IV analyses are closed-form in
``n``, so an algorithm can describe an entire sweep at once instead of
constructing thousands of per-size :class:`RoundMetrics` objects (see
:meth:`repro.algorithms.base.GPUAlgorithm.metrics_batch`).  A grid validates
against a machine with the same ``CapacityError`` messages and
first-offending-size semantics as the packed batch form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.machine import ATGPUMachine
from repro.utils.validation import (
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive_int,
)


@dataclass(frozen=True)
class RoundMetrics:
    """Metrics of a single ATGPU round.

    Parameters
    ----------
    time:
        ``t_i`` -- maximum number of operations executed by any MP.
    io_blocks:
        ``q_i`` -- total number of global-memory blocks accessed by all MPs.
    inward_words / outward_words:
        ``I_i`` / ``O_i`` -- words transferred host→device / device→host.
    inward_transactions / outward_transactions:
        ``Î_i`` / ``Ô_i`` -- number of distinct transfer transactions.  A
        transaction typically corresponds to one logical array (one
        ``cudaMemcpy`` in a concrete implementation).
    global_words:
        Words resident in global memory during the round.
    shared_words_per_mp:
        Maximum words of shared memory used by any single MP.
    thread_blocks:
        ``k_i`` -- number of thread blocks the kernel of this round launches.
        Used by the GPU-cost function (Expression 2) to compute the number of
        block waves ``⌈k_i / (k'·ℓ)⌉``.
    label:
        Optional human-readable round label (e.g. ``"reduction level 3"``).
    """

    time: float
    io_blocks: float
    inward_words: float = 0.0
    outward_words: float = 0.0
    inward_transactions: int = 0
    outward_transactions: int = 0
    global_words: float = 0.0
    shared_words_per_mp: float = 0.0
    thread_blocks: int = 1
    label: Optional[str] = None

    def __post_init__(self) -> None:
        ensure_non_negative(self.time, "time")
        ensure_non_negative(self.io_blocks, "io_blocks")
        ensure_non_negative(self.inward_words, "inward_words")
        ensure_non_negative(self.outward_words, "outward_words")
        ensure_non_negative_int(self.inward_transactions, "inward_transactions")
        ensure_non_negative_int(self.outward_transactions, "outward_transactions")
        ensure_non_negative(self.global_words, "global_words")
        ensure_non_negative(self.shared_words_per_mp, "shared_words_per_mp")
        ensure_positive_int(self.thread_blocks, "thread_blocks")
        if self.inward_transactions == 0 and self.inward_words > 0:
            raise ValueError(
                "inward_words > 0 requires at least one inward transaction"
            )
        if self.outward_transactions == 0 and self.outward_words > 0:
            raise ValueError(
                "outward_words > 0 requires at least one outward transaction"
            )

    @property
    def transfer_words(self) -> float:
        """Total words transferred in this round, ``I_i + O_i``."""
        return self.inward_words + self.outward_words

    @property
    def transfer_transactions(self) -> int:
        """Total transfer transactions in this round, ``Î_i + Ô_i``."""
        return self.inward_transactions + self.outward_transactions

    def with_label(self, label: str) -> "RoundMetrics":
        """Return a copy of these metrics carrying ``label``."""
        return RoundMetrics(
            time=self.time,
            io_blocks=self.io_blocks,
            inward_words=self.inward_words,
            outward_words=self.outward_words,
            inward_transactions=self.inward_transactions,
            outward_transactions=self.outward_transactions,
            global_words=self.global_words,
            shared_words_per_mp=self.shared_words_per_mp,
            thread_blocks=self.thread_blocks,
            label=label,
        )


class AlgorithmMetrics:
    """Ordered collection of :class:`RoundMetrics` for a whole algorithm.

    Exposes the aggregate quantities of Section III: the number of rounds
    ``R``, the total transfer volume ``Σ (I_i + O_i)``, and the maxima of the
    space metrics, plus a :meth:`validate_against` check implementing the
    paper's rule that an algorithm exceeding ``G`` or ``M`` cannot run on the
    model instance.
    """

    def __init__(self, rounds: Iterable[RoundMetrics], name: str = "") -> None:
        self._rounds: List[RoundMetrics] = list(rounds)
        if not self._rounds:
            raise ValueError("an algorithm must have at least one round")
        self.name = name

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundMetrics]:
        return iter(self._rounds)

    def __getitem__(self, index: int) -> RoundMetrics:
        return self._rounds[index]

    @property
    def rounds(self) -> Sequence[RoundMetrics]:
        """The per-round metrics, in execution order."""
        return tuple(self._rounds)

    # ------------------------------------------------------------------ #
    # Aggregate metrics (Section III)
    # ------------------------------------------------------------------ #
    @property
    def num_rounds(self) -> int:
        """``R`` -- the number of rounds."""
        return len(self._rounds)

    @property
    def total_time(self) -> float:
        """``Σ_i t_i`` -- total parallel operations across rounds."""
        return sum(r.time for r in self._rounds)

    @property
    def total_io_blocks(self) -> float:
        """``Σ_i q_i`` -- total global-memory blocks accessed."""
        return sum(r.io_blocks for r in self._rounds)

    @property
    def total_inward_words(self) -> float:
        """``Σ_i I_i`` -- total words transferred host → device."""
        return sum(r.inward_words for r in self._rounds)

    @property
    def total_outward_words(self) -> float:
        """``Σ_i O_i`` -- total words transferred device → host."""
        return sum(r.outward_words for r in self._rounds)

    @property
    def total_transfer_words(self) -> float:
        """``Σ_i (I_i + O_i)`` -- the paper's total data-transfer measure."""
        return self.total_inward_words + self.total_outward_words

    @property
    def total_transfer_transactions(self) -> int:
        """``Σ_i (Î_i + Ô_i)``."""
        return sum(r.transfer_transactions for r in self._rounds)

    @property
    def max_global_words(self) -> float:
        """Largest global-memory footprint over all rounds."""
        return max(r.global_words for r in self._rounds)

    @property
    def max_shared_words_per_mp(self) -> float:
        """Largest per-MP shared-memory footprint over all rounds."""
        return max(r.shared_words_per_mp for r in self._rounds)

    @property
    def max_thread_blocks(self) -> int:
        """Largest thread-block count launched by any round."""
        return max(r.thread_blocks for r in self._rounds)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate_against(self, machine: ATGPUMachine) -> None:
        """Raise :class:`CapacityError` if the algorithm cannot run on ``machine``.

        Implements the two space rules of Section III: the global-memory
        footprint must not exceed ``G`` and the per-MP shared-memory footprint
        must not exceed ``M``.
        """
        if not machine.fits_in_global_memory(int(self.max_global_words)):
            raise CapacityError(
                f"algorithm {self.name or '<unnamed>'} uses "
                f"{self.max_global_words:.0f} words of global memory but the "
                f"machine only has G={machine.G}"
            )
        if not machine.fits_in_shared_memory(int(self.max_shared_words_per_mp)):
            raise CapacityError(
                f"algorithm {self.name or '<unnamed>'} uses "
                f"{self.max_shared_words_per_mp:.0f} words of shared memory per "
                f"MP but the machine only has M={machine.M}"
            )

    def runs_on(self, machine: ATGPUMachine) -> bool:
        """Return ``True`` when :meth:`validate_against` would not raise."""
        try:
            self.validate_against(machine)
        except CapacityError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AlgorithmMetrics(name={self.name!r}, rounds={self.num_rounds}, "
            f"time={self.total_time}, io={self.total_io_blocks}, "
            f"transfer_words={self.total_transfer_words})"
        )


class CapacityError(RuntimeError):
    """Raised when an algorithm exceeds the machine's ``G`` or ``M`` limits."""


# --------------------------------------------------------------------- #
# Array-native metrics (whole-sweep description)
# --------------------------------------------------------------------- #
def size_vector(ns: Sequence[int], name: str = "n") -> np.ndarray:
    """Validate a sweep's input sizes and return them as an int64 column.

    The array-native factories use this where their scalar twins use
    ``ensure_positive_int`` per size, so both paths reject non-positive
    sizes with the same message.
    """
    sizes = np.asarray([int(n) for n in ns], dtype=np.int64)
    if sizes.size and np.any(sizes <= 0):
        bad = int(sizes[sizes <= 0][0])
        raise ValueError(f"{name} must be a positive integer, got {bad!r}")
    return sizes


def _as_column(value, n_sizes: int, name: str, dtype) -> np.ndarray:
    """Broadcast a scalar or per-size sequence to a ``(n_sizes,)`` column."""
    column = np.asarray(value, dtype=dtype)
    if column.ndim == 0:
        column = np.full(n_sizes, column, dtype=dtype)
    if column.shape != (n_sizes,):
        raise ValueError(
            f"{name} must be a scalar or a ({n_sizes},) column; got shape "
            f"{column.shape}"
        )
    return column


@dataclass(frozen=True)
class RoundMetricsArrays:
    """One round's metrics as per-size NumPy columns over a size vector.

    The vector analogue of :class:`RoundMetrics`: every field holds one value
    per sweep point.  :attr:`present` marks the sizes for which the round
    exists at all — algorithms whose round count grows with ``n`` (the
    reduction's log tree) simply mark the deeper rounds absent for the small
    sizes.  Fields of absent entries are ignored (they are neutralised when
    the grid packs into a :class:`~repro.core.batch.MetricsBatch`), so
    factories may leave whatever their vectorized recurrence produced there.

    Build instances through :func:`round_arrays`, which broadcasts scalar
    values to full columns.
    """

    time: np.ndarray
    io_blocks: np.ndarray
    inward_words: np.ndarray
    outward_words: np.ndarray
    inward_transactions: np.ndarray
    outward_transactions: np.ndarray
    global_words: np.ndarray
    shared_words_per_mp: np.ndarray
    thread_blocks: np.ndarray
    present: np.ndarray
    label: Optional[str] = None

    #: Columns that must be non-negative wherever the round is present.
    _NON_NEGATIVE = (
        "time", "io_blocks", "inward_words", "outward_words",
        "inward_transactions", "outward_transactions", "global_words",
        "shared_words_per_mp",
    )

    def __post_init__(self) -> None:
        # One fused check keeps the happy path cheap (a factory builds many
        # tiny rounds); the precise per-field error is produced lazily.
        problems = (
            (self.time < 0) | (self.io_blocks < 0)
            | (self.inward_words < 0) | (self.outward_words < 0)
            | (self.inward_transactions < 0) | (self.outward_transactions < 0)
            | (self.global_words < 0) | (self.shared_words_per_mp < 0)
            | (self.thread_blocks < 1)
            | ((self.inward_transactions == 0) & (self.inward_words > 0))
            | ((self.outward_transactions == 0) & (self.outward_words > 0))
        )
        if (problems & self.present).any():
            self._raise_invalid()

    def _raise_invalid(self) -> None:
        p = self.present
        for name in self._NON_NEGATIVE:
            if ((getattr(self, name) < 0) & p).any():
                raise ValueError(f"{name} must be >= 0 wherever present")
        if ((self.thread_blocks < 1) & p).any():
            raise ValueError("thread_blocks must be >= 1 wherever present")
        if (p & (self.inward_transactions == 0) & (self.inward_words > 0)).any():
            raise ValueError(
                "inward_words > 0 requires at least one inward transaction"
            )
        raise ValueError(
            "outward_words > 0 requires at least one outward transaction"
        )

    @property
    def num_sizes(self) -> int:
        """Number of sweep points covered by the columns."""
        return int(self.present.shape[0])

    @property
    def transfer_words(self) -> np.ndarray:
        """``I_i + O_i`` per size."""
        return self.inward_words + self.outward_words

    @property
    def transfer_transactions(self) -> np.ndarray:
        """``Î_i + Ô_i`` per size."""
        return self.inward_transactions + self.outward_transactions

    def round_at(self, index: int, label: Optional[str] = None) -> RoundMetrics:
        """Materialise this round's metrics for one sweep point."""
        if not self.present[index]:
            raise ValueError(f"round is absent at size column {index}")
        return RoundMetrics(
            time=float(self.time[index]),
            io_blocks=float(self.io_blocks[index]),
            inward_words=float(self.inward_words[index]),
            outward_words=float(self.outward_words[index]),
            inward_transactions=int(self.inward_transactions[index]),
            outward_transactions=int(self.outward_transactions[index]),
            global_words=float(self.global_words[index]),
            shared_words_per_mp=float(self.shared_words_per_mp[index]),
            thread_blocks=int(self.thread_blocks[index]),
            label=label if label is not None else self.label,
        )


def round_arrays(
    n_sizes: int,
    *,
    time,
    io_blocks,
    inward_words=0.0,
    outward_words=0.0,
    inward_transactions=0,
    outward_transactions=0,
    global_words=0.0,
    shared_words_per_mp=0.0,
    thread_blocks=1,
    present=True,
    label: Optional[str] = None,
) -> RoundMetricsArrays:
    """Build a :class:`RoundMetricsArrays`, broadcasting scalars to columns.

    Every argument may be a scalar (one value for the whole sweep) or a
    ``(n_sizes,)`` sequence.  ``present`` defaults to the round existing at
    every size.
    """
    ensure_positive_int(n_sizes, "n_sizes")
    return RoundMetricsArrays(
        time=_as_column(time, n_sizes, "time", float),
        io_blocks=_as_column(io_blocks, n_sizes, "io_blocks", float),
        inward_words=_as_column(inward_words, n_sizes, "inward_words", float),
        outward_words=_as_column(outward_words, n_sizes, "outward_words", float),
        inward_transactions=_as_column(
            inward_transactions, n_sizes, "inward_transactions", np.int64
        ),
        outward_transactions=_as_column(
            outward_transactions, n_sizes, "outward_transactions", np.int64
        ),
        global_words=_as_column(global_words, n_sizes, "global_words", float),
        shared_words_per_mp=_as_column(
            shared_words_per_mp, n_sizes, "shared_words_per_mp", float
        ),
        thread_blocks=_as_column(thread_blocks, n_sizes, "thread_blocks", np.int64),
        present=_as_column(present, n_sizes, "present", bool),
        label=label,
    )


class MetricsGrid:
    """Ordered :class:`RoundMetricsArrays` describing a whole sweep at once.

    The array-native analogue of :class:`AlgorithmMetrics`: round ``i``'s
    column ``j`` describes round ``i`` of the algorithm at sweep size
    ``sizes[j]``.  Presence masks must be *top-aligned* — a round present at
    some size requires every earlier round present there too — matching the
    padding layout of :class:`~repro.core.batch.MetricsBatch`, and every
    size must have at least one round.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rounds: Iterable[RoundMetricsArrays],
        name: str = "",
    ) -> None:
        self.sizes: Tuple[int, ...] = tuple(int(n) for n in sizes)
        if not self.sizes:
            raise ValueError("a metrics grid needs at least one input size")
        self._rounds: Tuple[RoundMetricsArrays, ...] = tuple(rounds)
        if not self._rounds:
            raise ValueError("an algorithm must have at least one round")
        self.name = name
        n_sizes = len(self.sizes)
        previous = np.ones(n_sizes, dtype=bool)
        for index, round_arrays_ in enumerate(self._rounds):
            if round_arrays_.num_sizes != n_sizes:
                raise ValueError(
                    f"round {index} covers {round_arrays_.num_sizes} sizes "
                    f"but the grid has {n_sizes}"
                )
            if np.any(round_arrays_.present & ~previous):
                raise ValueError(
                    f"round {index} is present at a size where round "
                    f"{index - 1} is absent; presence masks must be "
                    "top-aligned"
                )
            previous = round_arrays_.present
        if not np.all(self._rounds[0].present):
            at = int(np.argmax(~self._rounds[0].present))
            raise ValueError(
                f"size {self.sizes[at]} has no rounds; every size needs at "
                "least one"
            )

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundMetricsArrays]:
        return iter(self._rounds)

    def __getitem__(self, index: int) -> RoundMetricsArrays:
        return self._rounds[index]

    @property
    def rounds(self) -> Tuple[RoundMetricsArrays, ...]:
        """The per-round columns, in execution order."""
        return self._rounds

    @property
    def num_sizes(self) -> int:
        """Number of sweep points (columns)."""
        return len(self.sizes)

    @property
    def depth(self) -> int:
        """Largest per-size round count (including rounds absent at some sizes)."""
        return len(self._rounds)

    @property
    def round_counts(self) -> np.ndarray:
        """``R`` per size — how many rounds each sweep point really has."""
        return sum(
            (r.present.astype(np.int64) for r in self._rounds),
            np.zeros(self.num_sizes, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Aggregate metrics (Section III, per size)
    # ------------------------------------------------------------------ #
    def masked_columns(self, name: str, fill: float = 0.0) -> List[np.ndarray]:
        """Field ``name`` of every round with absent entries set to ``fill``.

        The single source of absence semantics: the aggregate properties
        reduce over these columns and the batch packing stacks them, so a
        change to the neutral fill applies to both.  Fully-present rounds
        return their column unmasked (callers must not mutate the arrays).
        """
        return [
            getattr(r, name) if r.present.all()
            else np.where(r.present, getattr(r, name), fill)
            for r in self._rounds
        ]

    @property
    def total_time(self) -> np.ndarray:
        """``Σ_i t_i`` per size."""
        return np.sum(self.masked_columns("time"), axis=0)

    @property
    def total_io_blocks(self) -> np.ndarray:
        """``Σ_i q_i`` per size."""
        return np.sum(self.masked_columns("io_blocks"), axis=0)

    @property
    def total_transfer_words(self) -> np.ndarray:
        """``Σ_i (I_i + O_i)`` per size."""
        return np.sum(self.masked_columns("inward_words"), axis=0) \
            + np.sum(self.masked_columns("outward_words"), axis=0)

    @property
    def max_global_words(self) -> np.ndarray:
        """Largest global-memory footprint over the rounds, per size."""
        return np.max(self.masked_columns("global_words"), axis=0)

    @property
    def max_shared_words_per_mp(self) -> np.ndarray:
        """Largest per-MP shared-memory footprint over the rounds, per size."""
        return np.max(self.masked_columns("shared_words_per_mp"), axis=0)

    # ------------------------------------------------------------------ #
    # Per-size materialisation and selection
    # ------------------------------------------------------------------ #
    def metrics_at(self, index: int) -> AlgorithmMetrics:
        """Materialise the scalar :class:`AlgorithmMetrics` of one sweep point."""
        return AlgorithmMetrics(
            [
                r.round_at(index)
                for r in self._rounds
                if r.present[index]
            ],
            name=self.name,
        )

    def select(self, indices: Sequence[int]) -> "MetricsGrid":
        """A sub-grid restricted to the given size columns, in order."""
        idx = list(indices)
        if not idx:
            raise ValueError("a metrics grid needs at least one input size")
        cols = np.asarray(idx, dtype=int)
        return MetricsGrid(
            sizes=[self.sizes[i] for i in idx],
            rounds=[
                RoundMetricsArrays(
                    time=r.time[cols],
                    io_blocks=r.io_blocks[cols],
                    inward_words=r.inward_words[cols],
                    outward_words=r.outward_words[cols],
                    inward_transactions=r.inward_transactions[cols],
                    outward_transactions=r.outward_transactions[cols],
                    global_words=r.global_words[cols],
                    shared_words_per_mp=r.shared_words_per_mp[cols],
                    thread_blocks=r.thread_blocks[cols],
                    present=r.present[cols],
                    label=r.label,
                )
                for r in self._rounds
                if np.any(r.present[cols])
            ],
            name=self.name,
        )

    # ------------------------------------------------------------------ #
    # Construction from scalar metrics (column-wise packing)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_metrics(
        cls,
        sizes: Sequence[int],
        metrics_list: Sequence[AlgorithmMetrics],
        name: str = "",
    ) -> "MetricsGrid":
        """Pack pre-built per-size metrics into a grid, column by column.

        Each round level packs with one array build per field rather than a
        per-cell Python loop of NumPy scalar assignments, which is what makes
        the scalar-factory fallback path cheap too.
        """
        if not sizes:
            raise ValueError("a metrics grid needs at least one input size")
        if len(sizes) != len(metrics_list):
            raise ValueError(
                f"got {len(sizes)} sizes but {len(metrics_list)} metrics"
            )
        if not name:
            for m in metrics_list:
                if m.name:
                    name = m.name
                    break
        depth = max(len(m) for m in metrics_list)
        rounds: List[RoundMetricsArrays] = []
        for level in range(depth):
            at_level = [m[level] if level < len(m) else None for m in metrics_list]
            label = next(
                (r.label for r in at_level if r is not None and r.label), None
            )
            rounds.append(RoundMetricsArrays(
                time=np.array(
                    [r.time if r else 0.0 for r in at_level], dtype=float
                ),
                io_blocks=np.array(
                    [r.io_blocks if r else 0.0 for r in at_level], dtype=float
                ),
                inward_words=np.array(
                    [r.inward_words if r else 0.0 for r in at_level], dtype=float
                ),
                outward_words=np.array(
                    [r.outward_words if r else 0.0 for r in at_level],
                    dtype=float,
                ),
                inward_transactions=np.array(
                    [r.inward_transactions if r else 0 for r in at_level],
                    dtype=np.int64,
                ),
                outward_transactions=np.array(
                    [r.outward_transactions if r else 0 for r in at_level],
                    dtype=np.int64,
                ),
                global_words=np.array(
                    [r.global_words if r else 0.0 for r in at_level],
                    dtype=float,
                ),
                shared_words_per_mp=np.array(
                    [r.shared_words_per_mp if r else 0.0 for r in at_level],
                    dtype=float,
                ),
                thread_blocks=np.array(
                    [r.thread_blocks if r else 1 for r in at_level],
                    dtype=np.int64,
                ),
                present=np.array(
                    [r is not None for r in at_level], dtype=bool
                ),
                label=label,
            ))
        return cls(sizes=sizes, rounds=rounds, name=name)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate_against(self, machine: ATGPUMachine) -> None:
        """Vectorized :meth:`AlgorithmMetrics.validate_against` over the sweep.

        Raises :class:`CapacityError` naming the first offending size when
        any sweep point exceeds ``G`` or ``M``, with exactly the message the
        packed :meth:`repro.core.batch.MetricsBatch.validate_against` raises.
        """
        max_global = self.max_global_words
        over_global = np.floor(max_global) > machine.G
        if np.any(over_global):
            at = int(np.argmax(over_global))
            raise CapacityError(
                f"algorithm {self.name or '<unnamed>'} uses "
                f"{max_global[at]:.0f} words of global memory at "
                f"size {self.sizes[at]} but the machine only has "
                f"G={machine.G}"
            )
        max_shared = self.max_shared_words_per_mp
        over_shared = np.floor(max_shared) > machine.M
        if np.any(over_shared):
            at = int(np.argmax(over_shared))
            raise CapacityError(
                f"algorithm {self.name or '<unnamed>'} uses "
                f"{max_shared[at]:.0f} words of shared memory per "
                f"MP at size {self.sizes[at]} but the machine only has "
                f"M={machine.M}"
            )

    def runs_on(self, machine: ATGPUMachine) -> bool:
        """``True`` when :meth:`validate_against` would not raise."""
        try:
            self.validate_against(machine)
        except CapacityError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsGrid(name={self.name!r}, sizes={len(self.sizes)}, "
            f"depth={self.depth})"
        )


def metrics_grid(
    sizes: Sequence[int],
    rounds: Iterable[RoundMetricsArrays],
    name: str = "",
) -> MetricsGrid:
    """Convenience constructor for :class:`MetricsGrid` (mirrors the class)."""
    return MetricsGrid(sizes=sizes, rounds=rounds, name=name)


@dataclass
class MetricsBuilder:
    """Incremental builder used by the pseudocode analyzer.

    The static analyzer walks a pseudocode program and accumulates counts
    into one builder per round; :meth:`build` then freezes the result into a
    :class:`RoundMetrics`.
    """

    time: float = 0.0
    io_blocks: float = 0.0
    inward_words: float = 0.0
    outward_words: float = 0.0
    inward_transactions: int = 0
    outward_transactions: int = 0
    global_words: float = 0.0
    shared_words_per_mp: float = 0.0
    thread_blocks: int = 1
    label: Optional[str] = None
    _shared_current: float = field(default=0.0, repr=False)

    def add_operations(self, count: float) -> None:
        """Add ``count`` lockstep operations to the round time ``t_i``."""
        ensure_non_negative(count, "count")
        self.time += count

    def add_io(self, blocks: float) -> None:
        """Record ``blocks`` global-memory block transactions."""
        ensure_non_negative(blocks, "blocks")
        self.io_blocks += blocks

    def add_inward(self, words: float, transactions: int = 1) -> None:
        """Record an inward (host → device) transfer."""
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        self.inward_words += words
        self.inward_transactions += transactions

    def add_outward(self, words: float, transactions: int = 1) -> None:
        """Record an outward (device → host) transfer."""
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        self.outward_words += words
        self.outward_transactions += transactions

    def use_global(self, words: float) -> None:
        """Record that ``words`` words are resident in global memory."""
        ensure_non_negative(words, "words")
        self.global_words = max(self.global_words, words)

    def use_shared(self, words: float) -> None:
        """Record a per-MP shared-memory footprint of ``words`` words."""
        ensure_non_negative(words, "words")
        self.shared_words_per_mp = max(self.shared_words_per_mp, words)

    def set_thread_blocks(self, blocks: int) -> None:
        """Set ``k_i``, the number of thread blocks launched in the round."""
        ensure_positive_int(blocks, "blocks")
        self.thread_blocks = blocks

    def build(self) -> RoundMetrics:
        """Freeze the accumulated counts into a :class:`RoundMetrics`."""
        return RoundMetrics(
            time=self.time,
            io_blocks=self.io_blocks,
            inward_words=self.inward_words,
            outward_words=self.outward_words,
            inward_transactions=self.inward_transactions,
            outward_transactions=self.outward_transactions,
            global_words=self.global_words,
            shared_words_per_mp=self.shared_words_per_mp,
            thread_blocks=self.thread_blocks,
            label=self.label,
        )
