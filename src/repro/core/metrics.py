"""Per-round and per-algorithm metrics of the ATGPU model (Section III).

The paper analyses an algorithm by, for each round ``i``:

* the parallel time ``t_i`` -- the maximum number of operations executed by
  any MP in the round,
* the I/O ``q_i`` -- the total number of global-memory blocks accessed in the
  round across all MPs,
* the global and shared memory space used,
* the inward transfer ``I_i`` (words moved host → device at the start of the
  round) and the outward transfer ``O_i`` (words moved device → host at the
  end of the round), together with the corresponding transaction counts
  ``Î_i`` and ``Ô_i`` used by the Boyer transfer-cost model.

:class:`RoundMetrics` captures one round; :class:`AlgorithmMetrics` is the
ordered collection of rounds together with machine-level validation
(the algorithm "cannot be run on our model" if it exceeds ``G`` or ``M``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core.machine import ATGPUMachine
from repro.utils.validation import (
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive_int,
)


@dataclass(frozen=True)
class RoundMetrics:
    """Metrics of a single ATGPU round.

    Parameters
    ----------
    time:
        ``t_i`` -- maximum number of operations executed by any MP.
    io_blocks:
        ``q_i`` -- total number of global-memory blocks accessed by all MPs.
    inward_words / outward_words:
        ``I_i`` / ``O_i`` -- words transferred host→device / device→host.
    inward_transactions / outward_transactions:
        ``Î_i`` / ``Ô_i`` -- number of distinct transfer transactions.  A
        transaction typically corresponds to one logical array (one
        ``cudaMemcpy`` in a concrete implementation).
    global_words:
        Words resident in global memory during the round.
    shared_words_per_mp:
        Maximum words of shared memory used by any single MP.
    thread_blocks:
        ``k_i`` -- number of thread blocks the kernel of this round launches.
        Used by the GPU-cost function (Expression 2) to compute the number of
        block waves ``⌈k_i / (k'·ℓ)⌉``.
    label:
        Optional human-readable round label (e.g. ``"reduction level 3"``).
    """

    time: float
    io_blocks: float
    inward_words: float = 0.0
    outward_words: float = 0.0
    inward_transactions: int = 0
    outward_transactions: int = 0
    global_words: float = 0.0
    shared_words_per_mp: float = 0.0
    thread_blocks: int = 1
    label: Optional[str] = None

    def __post_init__(self) -> None:
        ensure_non_negative(self.time, "time")
        ensure_non_negative(self.io_blocks, "io_blocks")
        ensure_non_negative(self.inward_words, "inward_words")
        ensure_non_negative(self.outward_words, "outward_words")
        ensure_non_negative_int(self.inward_transactions, "inward_transactions")
        ensure_non_negative_int(self.outward_transactions, "outward_transactions")
        ensure_non_negative(self.global_words, "global_words")
        ensure_non_negative(self.shared_words_per_mp, "shared_words_per_mp")
        ensure_positive_int(self.thread_blocks, "thread_blocks")
        if self.inward_transactions == 0 and self.inward_words > 0:
            raise ValueError(
                "inward_words > 0 requires at least one inward transaction"
            )
        if self.outward_transactions == 0 and self.outward_words > 0:
            raise ValueError(
                "outward_words > 0 requires at least one outward transaction"
            )

    @property
    def transfer_words(self) -> float:
        """Total words transferred in this round, ``I_i + O_i``."""
        return self.inward_words + self.outward_words

    @property
    def transfer_transactions(self) -> int:
        """Total transfer transactions in this round, ``Î_i + Ô_i``."""
        return self.inward_transactions + self.outward_transactions

    def with_label(self, label: str) -> "RoundMetrics":
        """Return a copy of these metrics carrying ``label``."""
        return RoundMetrics(
            time=self.time,
            io_blocks=self.io_blocks,
            inward_words=self.inward_words,
            outward_words=self.outward_words,
            inward_transactions=self.inward_transactions,
            outward_transactions=self.outward_transactions,
            global_words=self.global_words,
            shared_words_per_mp=self.shared_words_per_mp,
            thread_blocks=self.thread_blocks,
            label=label,
        )


class AlgorithmMetrics:
    """Ordered collection of :class:`RoundMetrics` for a whole algorithm.

    Exposes the aggregate quantities of Section III: the number of rounds
    ``R``, the total transfer volume ``Σ (I_i + O_i)``, and the maxima of the
    space metrics, plus a :meth:`validate_against` check implementing the
    paper's rule that an algorithm exceeding ``G`` or ``M`` cannot run on the
    model instance.
    """

    def __init__(self, rounds: Iterable[RoundMetrics], name: str = "") -> None:
        self._rounds: List[RoundMetrics] = list(rounds)
        if not self._rounds:
            raise ValueError("an algorithm must have at least one round")
        self.name = name

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundMetrics]:
        return iter(self._rounds)

    def __getitem__(self, index: int) -> RoundMetrics:
        return self._rounds[index]

    @property
    def rounds(self) -> Sequence[RoundMetrics]:
        """The per-round metrics, in execution order."""
        return tuple(self._rounds)

    # ------------------------------------------------------------------ #
    # Aggregate metrics (Section III)
    # ------------------------------------------------------------------ #
    @property
    def num_rounds(self) -> int:
        """``R`` -- the number of rounds."""
        return len(self._rounds)

    @property
    def total_time(self) -> float:
        """``Σ_i t_i`` -- total parallel operations across rounds."""
        return sum(r.time for r in self._rounds)

    @property
    def total_io_blocks(self) -> float:
        """``Σ_i q_i`` -- total global-memory blocks accessed."""
        return sum(r.io_blocks for r in self._rounds)

    @property
    def total_inward_words(self) -> float:
        """``Σ_i I_i`` -- total words transferred host → device."""
        return sum(r.inward_words for r in self._rounds)

    @property
    def total_outward_words(self) -> float:
        """``Σ_i O_i`` -- total words transferred device → host."""
        return sum(r.outward_words for r in self._rounds)

    @property
    def total_transfer_words(self) -> float:
        """``Σ_i (I_i + O_i)`` -- the paper's total data-transfer measure."""
        return self.total_inward_words + self.total_outward_words

    @property
    def total_transfer_transactions(self) -> int:
        """``Σ_i (Î_i + Ô_i)``."""
        return sum(r.transfer_transactions for r in self._rounds)

    @property
    def max_global_words(self) -> float:
        """Largest global-memory footprint over all rounds."""
        return max(r.global_words for r in self._rounds)

    @property
    def max_shared_words_per_mp(self) -> float:
        """Largest per-MP shared-memory footprint over all rounds."""
        return max(r.shared_words_per_mp for r in self._rounds)

    @property
    def max_thread_blocks(self) -> int:
        """Largest thread-block count launched by any round."""
        return max(r.thread_blocks for r in self._rounds)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate_against(self, machine: ATGPUMachine) -> None:
        """Raise :class:`CapacityError` if the algorithm cannot run on ``machine``.

        Implements the two space rules of Section III: the global-memory
        footprint must not exceed ``G`` and the per-MP shared-memory footprint
        must not exceed ``M``.
        """
        if not machine.fits_in_global_memory(int(self.max_global_words)):
            raise CapacityError(
                f"algorithm {self.name or '<unnamed>'} uses "
                f"{self.max_global_words:.0f} words of global memory but the "
                f"machine only has G={machine.G}"
            )
        if not machine.fits_in_shared_memory(int(self.max_shared_words_per_mp)):
            raise CapacityError(
                f"algorithm {self.name or '<unnamed>'} uses "
                f"{self.max_shared_words_per_mp:.0f} words of shared memory per "
                f"MP but the machine only has M={machine.M}"
            )

    def runs_on(self, machine: ATGPUMachine) -> bool:
        """Return ``True`` when :meth:`validate_against` would not raise."""
        try:
            self.validate_against(machine)
        except CapacityError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AlgorithmMetrics(name={self.name!r}, rounds={self.num_rounds}, "
            f"time={self.total_time}, io={self.total_io_blocks}, "
            f"transfer_words={self.total_transfer_words})"
        )


class CapacityError(RuntimeError):
    """Raised when an algorithm exceeds the machine's ``G`` or ``M`` limits."""


@dataclass
class MetricsBuilder:
    """Incremental builder used by the pseudocode analyzer.

    The static analyzer walks a pseudocode program and accumulates counts
    into one builder per round; :meth:`build` then freezes the result into a
    :class:`RoundMetrics`.
    """

    time: float = 0.0
    io_blocks: float = 0.0
    inward_words: float = 0.0
    outward_words: float = 0.0
    inward_transactions: int = 0
    outward_transactions: int = 0
    global_words: float = 0.0
    shared_words_per_mp: float = 0.0
    thread_blocks: int = 1
    label: Optional[str] = None
    _shared_current: float = field(default=0.0, repr=False)

    def add_operations(self, count: float) -> None:
        """Add ``count`` lockstep operations to the round time ``t_i``."""
        ensure_non_negative(count, "count")
        self.time += count

    def add_io(self, blocks: float) -> None:
        """Record ``blocks`` global-memory block transactions."""
        ensure_non_negative(blocks, "blocks")
        self.io_blocks += blocks

    def add_inward(self, words: float, transactions: int = 1) -> None:
        """Record an inward (host → device) transfer."""
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        self.inward_words += words
        self.inward_transactions += transactions

    def add_outward(self, words: float, transactions: int = 1) -> None:
        """Record an outward (device → host) transfer."""
        ensure_non_negative(words, "words")
        ensure_non_negative_int(transactions, "transactions")
        self.outward_words += words
        self.outward_transactions += transactions

    def use_global(self, words: float) -> None:
        """Record that ``words`` words are resident in global memory."""
        ensure_non_negative(words, "words")
        self.global_words = max(self.global_words, words)

    def use_shared(self, words: float) -> None:
        """Record a per-MP shared-memory footprint of ``words`` words."""
        ensure_non_negative(words, "words")
        self.shared_words_per_mp = max(self.shared_words_per_mp, words)

    def set_thread_blocks(self, blocks: int) -> None:
        """Set ``k_i``, the number of thread blocks launched in the round."""
        ensure_positive_int(blocks, "blocks")
        self.thread_blocks = blocks

    def build(self) -> RoundMetrics:
        """Freeze the accumulated counts into a :class:`RoundMetrics`."""
        return RoundMetrics(
            time=self.time,
            io_blocks=self.io_blocks,
            inward_words=self.inward_words,
            outward_words=self.outward_words,
            inward_transactions=self.inward_transactions,
            outward_transactions=self.outward_transactions,
            global_words=self.global_words,
            shared_words_per_mp=self.shared_words_per_mp,
            thread_blocks=self.thread_blocks,
            label=self.label,
        )
