"""Shared utilities for the ATGPU reproduction.

This package contains small, dependency-free helpers used across the core
model, the simulator and the experiment harness:

* :mod:`repro.utils.validation` -- argument-checking helpers with consistent
  error messages.
* :mod:`repro.utils.units` -- conversions between cycles, seconds, words and
  bytes for a given clock rate / word size.
* :mod:`repro.utils.stats` -- series normalisation, relative errors and the
  "capture fraction" statistics reported in Section IV-D of the paper.
* :mod:`repro.utils.numerics` -- the blessed numeric idioms (``ceil_div``)
  that keep the scalar and vectorized cost paths bitwise identical.
"""

from repro.utils.numerics import ceil_div
from repro.utils.stats import (
    average,
    capture_fraction,
    mean_absolute_difference,
    normalise_series,
    relative_error,
    transfer_proportion,
)
from repro.utils.units import (
    BYTES_PER_WORD,
    bytes_to_words,
    cycles_to_seconds,
    seconds_to_cycles,
    words_to_bytes,
)
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
    ensure_power_of_two,
)

__all__ = [
    "average",
    "ceil_div",
    "capture_fraction",
    "mean_absolute_difference",
    "normalise_series",
    "relative_error",
    "transfer_proportion",
    "BYTES_PER_WORD",
    "bytes_to_words",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "words_to_bytes",
    "ensure_in_range",
    "ensure_positive",
    "ensure_positive_int",
    "ensure_power_of_two",
]
