"""Argument-validation helpers.

All validators raise :class:`ValueError` (or :class:`TypeError` for wrong
types) with a message that names the offending parameter, so errors raised
deep inside the model or the simulator are still actionable for a caller of
the public API.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Iterable, Optional, Sequence


class UnknownFieldError(ValueError):
    """A mapping carried keys the target dataclass does not declare.

    Raised by the ``from_dict`` deserialisers so a typo'd field (e.g.
    ``"topolgy"`` on an :class:`~repro.experiments.spec.ExperimentSpec`)
    fails loudly with the offending name instead of silently producing a
    default-valued object.  Subclasses :class:`ValueError` so existing
    broad handlers keep working; the offending names are available
    programmatically on :attr:`fields`.
    """

    def __init__(
        self, kind: str, fields: Sequence[str], known: Iterable[str]
    ) -> None:
        self.kind = kind
        self.fields = tuple(fields)
        self.known = tuple(sorted(known))
        plural = "s" if len(self.fields) != 1 else ""
        super().__init__(
            f"unknown {kind} field{plural}: {', '.join(self.fields)}; "
            f"known fields: {', '.join(self.known)}"
        )


def reject_unknown_fields(
    kind: str, data: Iterable[str], known: Iterable[str]
) -> None:
    """Raise :class:`UnknownFieldError` for keys outside ``known``."""
    known = set(known)
    unknown = sorted(set(data) - known)
    if unknown:
        raise UnknownFieldError(kind, unknown, known)


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a strictly positive real number.

    Parameters
    ----------
    value:
        The value to check.
    name:
        Parameter name used in the error message.
    """
    # Exact-type fast path: the abc machinery behind ``isinstance(x, Real)``
    # costs ~1 µs per call, which dominates hot loops that build thousands
    # of RoundMetrics (``type is`` cannot match bool, so no bool guard).
    if type(value) is not float and type(value) is not int:
        if isinstance(value, bool) or not isinstance(value, Real):
            raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is a real number >= 0."""
    if type(value) is not float and type(value) is not int:
        if isinstance(value, bool) or not isinstance(value, Real):
            raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def ensure_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a strictly positive integer."""
    if type(value) is not int:
        if isinstance(value, bool) or not isinstance(value, Integral):
            raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def ensure_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer >= 0."""
    if type(value) is not int:
        if isinstance(value, bool) or not isinstance(value, Integral):
            raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return int(value)


def ensure_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies inside ``[low, high]`` (or ``(low, high)``).

    ``low`` / ``high`` may be ``None`` to leave the corresponding side
    unbounded.
    """
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if low is not None:
        if inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return float(value)


def ensure_power_of_two(value: int, name: str) -> int:
    """Return ``value`` if it is a positive power of two."""
    value = ensure_positive_int(value, name)
    if value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value!r}")
    return value


def ensure_divides(divisor: int, dividend: int, name: str) -> None:
    """Raise :class:`ValueError` unless ``divisor`` divides ``dividend``."""
    divisor = ensure_positive_int(divisor, f"{name} divisor")
    dividend = ensure_positive_int(dividend, f"{name} dividend")
    if dividend % divisor != 0:
        raise ValueError(
            f"{name}: {divisor} does not divide {dividend} evenly"
        )
