"""Unit conversions used throughout the model and the simulator.

The abstract model counts *words* and *cycles*; the simulator and the
experiment harness report *bytes* and *milliseconds*.  The paper's kernels
operate on 32-bit integers, so one word is four bytes by default.
"""

from __future__ import annotations

from repro.utils.validation import ensure_non_negative, ensure_positive

#: Size of one abstract-machine word in bytes (the paper's kernels use C ``int``).
BYTES_PER_WORD: int = 4


def words_to_bytes(words: float, bytes_per_word: int = BYTES_PER_WORD) -> float:
    """Convert a word count to bytes."""
    ensure_non_negative(words, "words")
    ensure_positive(bytes_per_word, "bytes_per_word")
    return float(words) * bytes_per_word


def bytes_to_words(nbytes: float, bytes_per_word: int = BYTES_PER_WORD) -> float:
    """Convert a byte count to (possibly fractional) words."""
    ensure_non_negative(nbytes, "nbytes")
    ensure_positive(bytes_per_word, "bytes_per_word")
    return float(nbytes) / bytes_per_word


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count to seconds at a given clock rate."""
    ensure_non_negative(cycles, "cycles")
    ensure_positive(clock_hz, "clock_hz")
    return float(cycles) / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> float:
    """Convert seconds to cycles at a given clock rate."""
    ensure_non_negative(seconds, "seconds")
    ensure_positive(clock_hz, "clock_hz")
    return float(seconds) * clock_hz


def seconds_to_milliseconds(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    ensure_non_negative(seconds, "seconds")
    return seconds * 1e3


def milliseconds_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    ensure_non_negative(milliseconds, "milliseconds")
    return milliseconds / 1e3
