"""Numeric idioms shared by the scalar and the vectorized cost paths.

The package's bit-for-bit scalar/batch parity (PR 4/PR 5) rests on every
ceiling-of-a-quotient being computed the same way on both paths: the scalar
models use ``math.ceil(a / b)`` (true float division, then ceil) and the
array programs mirror it with ``np.ceil(a / b)``.  Mixing in the integer
idiom ``-(-a // b)`` — or floor-dividing on one path and float-dividing on
the other — produces values that differ in the last bit for large operands,
which the parity tests then surface as a one-ULP cost disagreement.

:func:`ceil_div` is the single blessed spelling of that idiom.  The static
checker (:mod:`repro.lint`, rule ``CEIL001``) flags any direct
``math.ceil(x / y)`` / ``np.ceil(x / y)`` / ``-(-x // y)`` in metrics and
cost code outside this module, so the float-division contract cannot drift
call site by call site.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = ["ceil_div"]

#: Operand types :func:`ceil_div` accepts on either side.
Number = Union[int, float, np.ndarray]


def ceil_div(numerator: Number, denominator: Number) -> Number:
    """Ceiling of ``numerator / denominator`` via true float division.

    Dispatches on the operand types so one spelling serves both paths:

    * scalars evaluate ``math.ceil(numerator / denominator)`` and return a
      Python ``int`` — exactly the scalar models' historical idiom;
    * arrays (either operand) evaluate ``np.ceil(numerator / denominator)``
      and return a float array — exactly the batch programs' idiom, which
      NumPy's elementwise ceil-of-true-division makes bitwise identical to
      the scalar result for every element.

    Callers needing integer arrays keep their ``.astype(np.int64)`` at the
    call site, as before.
    """
    if isinstance(numerator, np.ndarray) or isinstance(denominator, np.ndarray):
        return np.ceil(numerator / denominator)
    return math.ceil(numerator / denominator)
