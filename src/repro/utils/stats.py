"""Statistics helpers used by the prediction / evaluation machinery.

These functions implement the exact quantities the paper reports in its
evaluation (Section IV):

* normalisation of a cost or time series to the ``[0, 1]`` range
  (Figures 3c and 4c),
* the transfer proportion ``Δ`` -- the fraction of total cost/time spent on
  data transfer (Figure 6),
* the *capture fraction* -- what share of the observed total running time a
  model's prediction accounts for (Section IV-D quotes 16 %, 58 % and 89 %
  for SWGPU on the three problems), and
* simple averages / relative errors used in the summary statistics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Shared error message for proportions over non-positive observed totals.
#: Raised everywhere a transfer/capture proportion would divide by a zero or
#: negative total, so callers see one consistent failure mode.
POSITIVE_TOTALS_MESSAGE = (
    "all observed total times must be positive to form transfer/capture "
    "proportions"
)


def require_positive_totals(totals: Sequence[float]) -> np.ndarray:
    """Validate observed totals before dividing by them.

    The observed transfer proportion ``ΔE``, the per-point
    :func:`transfer_proportion` / :func:`capture_fraction` ratios and the
    SWGPU capture fraction all divide by observed totals; this shared guard
    gives them one consistent error message.
    """
    array = np.atleast_1d(np.asarray(totals, dtype=float))
    if array.size == 0 or np.any(array <= 0):
        raise ValueError(POSITIVE_TOTALS_MESSAGE)
    return array


def normalise_series(values: Sequence[float]) -> np.ndarray:
    """Normalise ``values`` linearly onto ``[0, 1]``.

    The paper normalises each curve independently (Figures 3c, 4c) so that
    growth *rates* can be compared across quantities with different units
    (abstract cost vs milliseconds).  A constant series maps to all zeros.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("normalise_series expects a 1-D sequence")
    if arr.size == 0:
        return arr.copy()
    if np.any(~np.isfinite(arr)):
        raise ValueError("normalise_series requires finite values")
    lo = arr.min()
    hi = arr.max()
    if hi == lo:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)


def transfer_proportion(transfer: float, total: float) -> float:
    """Return ``Δ``, the proportion of ``total`` attributable to ``transfer``.

    Used both for observed times (``ΔE``) and for predicted costs (``ΔT``)
    in Figure 6.  ``total`` must be positive and at least ``transfer``; a
    non-positive total raises the shared positive-totals guard message.
    """
    if total <= 0:
        raise ValueError(POSITIVE_TOTALS_MESSAGE)
    if transfer < 0:
        raise ValueError(f"transfer must be >= 0, got {transfer!r}")
    if transfer > total * (1 + 1e-12):
        raise ValueError(
            f"transfer ({transfer!r}) cannot exceed total ({total!r})"
        )
    return min(transfer / total, 1.0)


def capture_fraction(predicted_component: float, observed_total: float) -> float:
    """Fraction of the observed total accounted for by a model component.

    Section IV-D: "the SWGPU captures on average only 16 % of the actual
    running time for the vector addition example".  In our reproduction the
    predicted component and the observed total live in different units
    (abstract cost vs simulated time), so callers first map the prediction to
    time via the calibrated operation rate; this helper merely forms the
    ratio and clips it to ``[0, 1]``.  A non-positive total raises the
    shared positive-totals guard message.
    """
    if observed_total <= 0:
        raise ValueError(POSITIVE_TOTALS_MESSAGE)
    if predicted_component < 0:
        raise ValueError(
            f"predicted_component must be >= 0, got {predicted_component!r}"
        )
    return float(min(predicted_component / observed_total, 1.0))


def speedup_series(
    baseline: Sequence[float], improved: Sequence[float]
) -> np.ndarray:
    """Element-wise ``baseline / improved`` ratio that never divides by zero.

    Used for the overlap and sharding speedup curves.  Where ``improved`` is
    zero the ratio is ``1.0`` if ``baseline`` is zero too (both free: no
    speedup to speak of) and ``inf`` otherwise (the improvement removed the
    cost entirely).
    """
    base = np.asarray(baseline, dtype=float)
    better = np.asarray(improved, dtype=float)
    if base.shape != better.shape:
        raise ValueError(
            f"series must have the same shape, got {base.shape} and "
            f"{better.shape}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(
            better > 0,
            base / np.where(better > 0, better, 1.0),
            np.where(base > 0, np.inf, 1.0),
        )
    return ratio


def average(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("average of an empty sequence is undefined")
    return float(arr.mean())


def relative_error(predicted: float, observed: float) -> float:
    """Relative error ``|predicted - observed| / |observed|``."""
    if observed == 0:
        raise ValueError("relative_error undefined for observed == 0")
    return abs(predicted - observed) / abs(observed)


def mean_absolute_difference(
    series_a: Sequence[float], series_b: Sequence[float]
) -> float:
    """Mean of ``|a_i - b_i|`` over two equal-length series.

    The paper summarises Figure 6 with statements like "the predicted
    proportions of cost allocated to data transfer are on average to within
    1.5 % of observed proportions for vector addition"; this helper computes
    that average absolute gap.
    """
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(
            f"series must have the same shape, got {a.shape} and {b.shape}"
        )
    if a.size == 0:
        raise ValueError("mean_absolute_difference of empty series is undefined")
    return float(np.abs(a - b).mean())


def growth_rate_similarity(
    series_a: Sequence[float], series_b: Sequence[float]
) -> float:
    """Similarity of growth shapes of two series, in ``[0, 1]``.

    Both series are normalised to ``[0, 1]`` and the mean absolute gap is
    subtracted from one.  A value of ``1.0`` means identical normalised
    shapes.  This is the quantitative form of the paper's visual argument
    that "the ATGPU function has a rate of growth which is much closer to the
    actual total running time".
    """
    a = normalise_series(series_a)
    b = normalise_series(series_b)
    if a.size != b.size:
        raise ValueError("series must have the same length")
    return float(1.0 - np.abs(a - b).mean())
