"""Server observability: counters, latency percentiles, coalescing ratio.

The server's workers feed a :class:`StatsCollector` (lock-guarded counters
plus a bounded window of end-to-end request latencies); callers read an
immutable :class:`ServerStats` snapshot via
:meth:`~repro.serving.server.PredictionServer.stats`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

import numpy as np


@dataclass(frozen=True)
class ServerStats:
    """A point-in-time snapshot of one server's behaviour.

    ``coalescing_ratio`` is the mean number of requests served per
    dispatched group — ``1.0`` means no coalescing happened, ``4.0`` means
    the average dispatch answered four callers from one union compile.
    Latency percentiles are end-to-end (submission to future resolution)
    over the most recent window of completed requests.
    """

    policy: str
    workers: int
    submitted: int
    completed: int
    failed: int
    expired: int
    rejected: int
    cancelled: int
    dispatched_groups: int
    coalesced_requests: int
    queue_depth: int
    inflight_sizes: int
    latency_p50_s: float
    latency_p99_s: float
    latency_mean_s: float
    #: Coalescing keys of the most recent dispatches, oldest first.
    recent_dispatches: Tuple[Tuple[str, ...], ...]

    @property
    def coalescing_ratio(self) -> float:
        """Mean requests per dispatched group (``1.0`` = no coalescing)."""
        if self.dispatched_groups == 0:
            return 0.0
        return self.coalesced_requests / self.dispatched_groups

    @property
    def pending(self) -> int:
        """Requests admitted but not yet resolved either way."""
        resolved = (
            self.completed + self.failed + self.expired + self.cancelled
        )
        return self.submitted - resolved


class StatsCollector:
    """Thread-safe accumulator behind :class:`ServerStats` snapshots."""

    def __init__(
        self, latency_window: int = 4096, dispatch_window: int = 256
    ) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be at least 1")
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.expired = 0
        self.rejected = 0
        self.cancelled = 0
        self.dispatched_groups = 0
        self.coalesced_requests = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._dispatches: Deque[Tuple[str, ...]] = deque(
            maxlen=dispatch_window
        )
        self._lock = threading.Lock()

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_dispatch(self, key: Tuple[str, ...], size: int) -> None:
        with self._lock:
            self.dispatched_groups += 1
            self.coalesced_requests += size
            self._dispatches.append(key)

    def record_completed(self, latency_s: float) -> None:
        with self._lock:
            self.completed += 1
            self._latencies.append(latency_s)

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_expired(self) -> None:
        with self._lock:
            self.expired += 1

    def record_cancelled(self) -> None:
        with self._lock:
            self.cancelled += 1

    def snapshot(
        self, policy: str, workers: int, queue_depth: int, inflight_sizes: int
    ) -> ServerStats:
        """An immutable snapshot of the counters and latency percentiles."""
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=float)
            if latencies.size:
                p50, p99 = np.percentile(latencies, (50.0, 99.0))
                mean = float(latencies.mean())
            else:
                p50 = p99 = mean = 0.0
            return ServerStats(
                policy=policy,
                workers=workers,
                submitted=self.submitted,
                completed=self.completed,
                failed=self.failed,
                expired=self.expired,
                rejected=self.rejected,
                cancelled=self.cancelled,
                dispatched_groups=self.dispatched_groups,
                coalesced_requests=self.coalesced_requests,
                queue_depth=queue_depth,
                inflight_sizes=inflight_sizes,
                latency_p50_s=float(p50),
                latency_p99_s=float(p99),
                latency_mean_s=mean,
                recent_dispatches=tuple(self._dispatches),
            )
