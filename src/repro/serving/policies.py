"""Pluggable scheduling policies: which coalesced group dispatches next.

A :class:`SchedulingPolicy` is a strategy object the server's workers
consult every time they pull work: given the currently pending
:class:`~repro.serving.queue.CoalescedGroup` views, ``select`` returns the
one to dispatch.  The family mirrors the scheduler registry of the session
layer's engines (and riescue's Default/Parallel/Simultaneous/LinuxMode
schedulers behind one interface):

==================  =====================================================
``fifo``            oldest pending request first — strict arrival order
``fair-share``      the group whose tenants have been served the least
                    total sweep points so far; a flood from one tenant
                    cannot starve another
``deadline``        earliest-deadline-first, and requests whose deadline
                    has already passed are rejected with
                    :class:`~repro.serving.errors.DeadlineExpiredError`
                    instead of executed
==================  =====================================================

Custom policies implement ``select`` (and optionally ``record_dispatch``
for internal accounting) and are passed to the server as instances, or
registered in :data:`POLICIES` and named.
"""

from __future__ import annotations

import abc
import math
from collections import defaultdict
from typing import Dict, Sequence, Union

from repro.serving.queue import CoalescedGroup


class SchedulingPolicy(abc.ABC):
    """Strategy interface: order the pending coalesced groups."""

    #: Registry / stats name of the policy.
    name: str = "policy"
    #: Whether requests with a passed deadline are rejected at dispatch
    #: time instead of executed (only the deadline policy does).
    rejects_expired: bool = False

    @abc.abstractmethod
    def select(
        self, groups: Sequence[CoalescedGroup], now: float
    ) -> CoalescedGroup:
        """The group to dispatch next (``groups`` is never empty)."""

    def record_dispatch(self, group: CoalescedGroup, now: float) -> None:
        """Hook invoked after a group is taken (for internal accounting)."""


class FIFOPolicy(SchedulingPolicy):
    """Dispatch the group containing the oldest pending request."""

    name = "fifo"

    def select(
        self, groups: Sequence[CoalescedGroup], now: float
    ) -> CoalescedGroup:
        return min(groups, key=lambda g: g.oldest_submitted)


class FairSharePolicy(SchedulingPolicy):
    """Serve the most starved tenant first.

    Each tenant accumulates the sweep points of its dispatched requests;
    the policy picks the group containing the least-served tenant (ties
    break by arrival order), so a tenant flooding the queue only defers its
    *own* later requests — a light tenant's group overtakes the flood as
    soon as the heavy tenant has been served more.
    """

    name = "fair-share"

    def __init__(self) -> None:
        self._served: Dict[str, float] = defaultdict(float)

    def served(self, tenant: str) -> float:
        """Total sweep points dispatched for a tenant so far."""
        return self._served[tenant]

    def select(
        self, groups: Sequence[CoalescedGroup], now: float
    ) -> CoalescedGroup:
        return min(
            groups,
            key=lambda g: (
                min(self._served[t] for t in g.tenants),
                g.oldest_submitted,
            ),
        )

    def record_dispatch(self, group: CoalescedGroup, now: float) -> None:
        for request in group.requests:
            self._served[request.tenant] += request.cost


class DeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first with expiry rejection.

    Groups order by their most urgent deadline (requests without one sort
    last, then by arrival), and any request whose deadline has already
    passed at dispatch time is rejected with
    :class:`~repro.serving.errors.DeadlineExpiredError` rather than given a
    worthless late answer.
    """

    name = "deadline"
    rejects_expired = True

    def select(
        self, groups: Sequence[CoalescedGroup], now: float
    ) -> CoalescedGroup:
        def urgency(group: CoalescedGroup):
            deadline = group.earliest_deadline
            return (
                deadline if deadline is not None else math.inf,
                group.oldest_submitted,
            )

        return min(groups, key=urgency)


#: Policy factories by name, for ``PredictionServer(policy="...")``.
POLICIES = {
    FIFOPolicy.name: FIFOPolicy,
    FairSharePolicy.name: FairSharePolicy,
    DeadlinePolicy.name: DeadlinePolicy,
}


def resolve_policy(
    policy: Union[str, SchedulingPolicy]
) -> SchedulingPolicy:
    """Turn a policy name or instance into a policy instance."""
    if isinstance(policy, str):
        try:
            factory = POLICIES[policy]
        except KeyError as exc:
            known = ", ".join(sorted(POLICIES))
            raise KeyError(
                f"unknown scheduling policy {policy!r}; known policies: "
                f"{known}"
            ) from exc
        return factory()
    return policy
