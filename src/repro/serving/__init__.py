"""Prediction-as-a-service: coalescing request server over the session layer.

See :mod:`repro.serving.server` for the architecture overview.
"""

from repro.serving.errors import (
    DeadlineExpiredError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.policies import (
    POLICIES,
    DeadlinePolicy,
    FairSharePolicy,
    FIFOPolicy,
    SchedulingPolicy,
    resolve_policy,
)
from repro.serving.queue import (
    MODES,
    CoalescedGroup,
    PredictionRequest,
    RequestQueue,
)
from repro.serving.server import PredictionServer
from repro.serving.stats import ServerStats, StatsCollector

__all__ = [
    "CoalescedGroup",
    "DeadlineExpiredError",
    "DeadlinePolicy",
    "FIFOPolicy",
    "FairSharePolicy",
    "MODES",
    "POLICIES",
    "PredictionRequest",
    "PredictionServer",
    "RequestQueue",
    "SchedulingPolicy",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServerStats",
    "ServingError",
    "StatsCollector",
    "resolve_policy",
]
