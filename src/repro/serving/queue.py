"""The server's request queue: coalescible groups under admission control.

A :class:`PredictionRequest` wraps one submitted
:class:`~repro.experiments.spec.ExperimentSpec` together with its future,
tenant, optional deadline and bookkeeping timestamps.  The
:class:`RequestQueue` holds pending requests keyed by their **coalescing
key** ``(algorithm, preset, mode)`` — requests sharing a key describe cost
evaluations over the very same metrics, so the server dispatches an entire
key's worth of requests as one :class:`CoalescedGroup` and serves them from
one union-compiled :class:`~repro.core.batch.MetricsBatch`.

Admission control lives here: :meth:`RequestQueue.put` bounds the pending
request count (``max_queue_depth``) and the total sweep points admitted but
not yet completed (``max_inflight_sizes``), raising
:class:`~repro.serving.errors.ServerOverloadedError` when a bound would be
exceeded — the server's backpressure signal.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.spec import ExperimentSpec
from repro.serving.errors import ServerOverloadedError

#: Request modes: ``"result"`` executes the full prediction-vs-observation
#: experiment (a :class:`~repro.experiments.results.Result`); ``"predict"``
#: evaluates the model side only (a
#: :class:`~repro.core.prediction.SweepPrediction`) — the high-throughput
#: serving path, since observations cannot be shared between requests.
MODES: Tuple[str, ...] = ("result", "predict")

_REQUEST_IDS = itertools.count(1)


@dataclass
class PredictionRequest:
    """One submitted spec on its way through the server."""

    spec: ExperimentSpec
    future: "Future"
    tenant: str = "default"
    #: Absolute :func:`time.monotonic` deadline, or ``None``.
    deadline: Optional[float] = None
    mode: str = "result"
    #: Number of sweep points — the admission-control cost unit.
    cost: int = 0
    submitted_at: float = field(default_factory=time.monotonic)
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """The coalescing key: requests sharing it dispatch together.

        The topology discriminator rides at the end so positional
        consumers of ``(algorithm, preset, mode)`` keep working; specs
        without a topology contribute ``""``.
        """
        return (
            self.spec.algorithm,
            self.spec.preset,
            self.mode,
            self.spec.topology_key(),
        )

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline (if any) has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline


@dataclass(frozen=True)
class CoalescedGroup:
    """A batch of pending requests sharing one coalescing key.

    This is the unit a :class:`~repro.serving.policies.SchedulingPolicy`
    chooses between and the unit the server dispatches: every request in the
    group is served from one union-of-sizes compile.  The derived views are
    what the built-in policies order by.
    """

    key: Tuple[str, str, str, str]
    requests: Tuple[PredictionRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def oldest_submitted(self) -> float:
        """Submission time of the group's oldest request (FIFO order key)."""
        return min(r.submitted_at for r in self.requests)

    @property
    def earliest_deadline(self) -> Optional[float]:
        """The most urgent deadline in the group, or ``None`` if none set."""
        deadlines = [r.deadline for r in self.requests if r.deadline is not None]
        return min(deadlines) if deadlines else None

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Distinct tenants with requests in this group, first-seen order."""
        return tuple(dict.fromkeys(r.tenant for r in self.requests))

    @property
    def total_cost(self) -> int:
        """Total sweep points across the group (the fair-share charge)."""
        return sum(r.cost for r in self.requests)


class RequestQueue:
    """Thread-safe pending-request store with admission control.

    ``put`` enqueues under the bounds; ``take`` blocks until a group is
    available, asks the scheduling policy to choose one, and removes the
    whole group atomically (that removal *is* the coalescing decision —
    everything pending under the chosen key dispatches together).  With
    ``merge_groups`` (the default), the take additionally absorbs every
    other pending key of the same algorithm and mode whose specs are
    :func:`~repro.experiments.session.mergeable` with the chosen group —
    equal-machine presets then share the dispatched union compile instead
    of waiting for their own turn.  The admitted-size account is only
    credited back via :meth:`task_done`, so in-flight work keeps exerting
    backpressure until it completes.
    """

    def __init__(
        self,
        max_queue_depth: int = 256,
        max_inflight_sizes: int = 1_000_000,
        merge_groups: bool = True,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if max_inflight_sizes < 1:
            raise ValueError("max_inflight_sizes must be at least 1")
        self.max_queue_depth = max_queue_depth
        self.max_inflight_sizes = max_inflight_sizes
        self.merge_groups = merge_groups
        self._pending: Dict[
            Tuple[str, str, str, str], List[PredictionRequest]
        ] = {}
        self._depth = 0
        self._inflight_sizes = 0
        self._closed = False
        self._condition = threading.Condition()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Number of pending (not yet dispatched) requests."""
        with self._condition:
            return self._depth

    @property
    def inflight_sizes(self) -> int:
        """Sweep points admitted but not yet completed."""
        with self._condition:
            return self._inflight_sizes

    @property
    def closed(self) -> bool:
        """Whether the queue has been closed to new requests."""
        with self._condition:
            return self._closed

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def put(self, request: PredictionRequest) -> None:
        """Admit a request, or raise :class:`ServerOverloadedError`.

        Both bounds are checked atomically with the enqueue, so concurrent
        submitters cannot jointly overshoot them.
        """
        with self._condition:
            if self._closed:
                raise ServerOverloadedError(
                    "the request queue is closed", self._depth,
                    self._inflight_sizes,
                )
            if self._depth >= self.max_queue_depth:
                raise ServerOverloadedError(
                    f"queue depth is at its bound ({self.max_queue_depth} "
                    "pending requests); back off and retry",
                    self._depth, self._inflight_sizes,
                )
            if self._inflight_sizes + request.cost > self.max_inflight_sizes:
                raise ServerOverloadedError(
                    f"admitting {request.cost} sweep points would exceed the "
                    f"in-flight bound ({self._inflight_sizes} of "
                    f"{self.max_inflight_sizes} in use); back off and retry",
                    self._depth, self._inflight_sizes,
                )
            self._pending.setdefault(request.key, []).append(request)
            self._depth += 1
            self._inflight_sizes += request.cost
            self._condition.notify()

    def close(self) -> None:
        """Refuse new requests and wake every waiting consumer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def take(self, policy, timeout: Optional[float] = None
             ) -> Optional[CoalescedGroup]:
        """Pop the group the policy selects, blocking until one is pending.

        Returns ``None`` when the queue is closed and drained (the worker
        shutdown signal) or the timeout elapses with nothing pending.  The
        policy's ``select`` and ``record_dispatch`` run under the queue lock
        — policies are cheap orderings, and this keeps their internal
        accounting (e.g. fair-share service totals) atomic with the
        dispatch decision.  With :attr:`merge_groups`, other pending keys
        mergeable with the chosen one ride along in the returned group
        (still under the chosen key, whose mode every rider shares).
        """
        with self._condition:
            while not self._pending:
                if self._closed:
                    return None
                if not self._condition.wait(timeout=timeout):
                    return None
            groups = [
                CoalescedGroup(key=key, requests=tuple(requests))
                for key, requests in self._pending.items()
            ]
            now = time.monotonic()
            chosen = policy.select(groups, now) if len(groups) > 1 else groups[0]
            if chosen.key not in self._pending:
                raise KeyError(
                    f"scheduling policy {policy.name!r} selected a group "
                    f"{chosen.key!r} that is not pending"
                )
            requests = self._pending.pop(chosen.key)
            if self.merge_groups and self._pending:
                # Imported lazily: the session layer imports serving-free
                # modules only, but keeping queue.py import-light at module
                # load avoids any future cycle through repro.experiments.
                from repro.experiments.session import mergeable

                representative = requests[0].spec
                riders = [
                    key for key in self._pending
                    if key[0] == chosen.key[0]
                    and key[2] == chosen.key[2]
                    and mergeable(self._pending[key][0].spec, representative)
                ]
                for key in riders:
                    requests.extend(self._pending.pop(key))
            group = CoalescedGroup(key=chosen.key, requests=tuple(requests))
            self._depth -= len(requests)
            policy.record_dispatch(group, now)
            return group

    def task_done(self, requests: Sequence[PredictionRequest]) -> None:
        """Credit completed (or rejected) requests back to the size account."""
        with self._condition:
            self._inflight_sizes -= sum(r.cost for r in requests)
            self._condition.notify_all()
