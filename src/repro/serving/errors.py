"""Typed errors of the serving layer."""

from __future__ import annotations


class ServingError(RuntimeError):
    """Base class of every serving-layer error."""


class ServerClosedError(ServingError):
    """A request was submitted to a server that has been closed."""


class ServerOverloadedError(ServingError):
    """Admission control rejected a request (backpressure).

    Raised by :meth:`~repro.serving.server.PredictionServer.submit` when the
    pending queue is at its depth bound or admitting the request would push
    the admitted-but-uncompleted sweep-point total over the in-flight bound.
    Callers are expected to back off and retry; the attached counters say
    which bound was hit.
    """

    def __init__(
        self, message: str, queue_depth: int = 0, inflight_sizes: int = 0
    ):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.inflight_sizes = inflight_sizes


class DeadlineExpiredError(ServingError):
    """A request's deadline passed before it could be dispatched.

    Only raised under a scheduling policy with expiry rejection (the
    :class:`~repro.serving.policies.DeadlinePolicy`); other policies treat
    deadlines as advisory ordering hints.
    """
