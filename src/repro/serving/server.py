"""Prediction-as-a-service: a coalescing server over one shared session.

:class:`PredictionServer` accepts concurrent sweep-prediction requests
(:meth:`~PredictionServer.submit` returns a
:class:`concurrent.futures.Future` immediately) and has its worker threads
dispatch them in **coalesced groups**: every pending request sharing
``(algorithm, preset, mode)`` is served from one union-of-sizes
:class:`~repro.core.batch.MetricsBatch` compile, with each caller's columns
scattered back to its own future.  Results are bit-for-bit identical to
running each request alone — the cost evaluators are column-independent
array programs, so evaluating the union and selecting a request's columns
is exactly the computation the request would have run in isolation.

Two request modes exist (see :data:`repro.serving.queue.MODES`):
``"result"`` resolves to the same :class:`~repro.experiments.results.Result`
that ``Session.run_many`` returns; ``"predict"`` resolves to a
:class:`~repro.core.prediction.SweepPrediction` and is the high-throughput
path — the model side is shared across the whole group, so a coalesced
request costs little more than a column select.

Backpressure and scheduling are pluggable: admission control lives in the
:class:`~repro.serving.queue.RequestQueue` (raising
:class:`~repro.serving.errors.ServerOverloadedError`), dispatch order in
the :class:`~repro.serving.policies.SchedulingPolicy`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import List, Optional, Sequence, Union

from repro.experiments.session import Session, predict_group
from repro.experiments.spec import ExperimentSpec
from repro.serving.errors import (
    DeadlineExpiredError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serving.policies import SchedulingPolicy, resolve_policy
from repro.serving.queue import MODES, PredictionRequest, RequestQueue
from repro.serving.stats import ServerStats, StatsCollector


class PredictionServer:
    """A thread-pool server coalescing concurrent prediction requests.

    Parameters
    ----------
    session:
        The :class:`~repro.experiments.session.Session` to execute through
        (its result cache and batch memo are shared by every request).  When
        omitted the server owns a private session and closes it with itself.
    policy:
        Scheduling policy name (``"fifo"``, ``"fair-share"``, ``"deadline"``)
        or a :class:`~repro.serving.policies.SchedulingPolicy` instance.
    workers:
        Number of dispatcher threads.
    max_queue_depth / max_inflight_sizes:
        Admission-control bounds (pending requests / admitted-but-uncompleted
        sweep points); exceeding either makes ``submit`` raise
        :class:`~repro.serving.errors.ServerOverloadedError`.

    Requests may be submitted before :meth:`start` — they queue up and the
    first worker dispatch coalesces everything pending, which the tests and
    benchmarks use to make coalescing deterministic.  The usual lifecycle is
    the context manager::

        with PredictionServer(policy="fifo") as server:
            futures = server.submit_many(specs, mode="predict")
            predictions = [f.result() for f in futures]
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        policy: Union[str, SchedulingPolicy] = "fifo",
        workers: int = 2,
        max_queue_depth: int = 256,
        max_inflight_sizes: int = 1_000_000,
        latency_window: int = 4096,
    ) -> None:
        if workers < 1:
            raise ValueError("a server needs at least one worker thread")
        self.session = session if session is not None else Session()
        self._owns_session = session is None
        self.policy = resolve_policy(policy)
        self.workers = int(workers)
        self._queue = RequestQueue(
            max_queue_depth=max_queue_depth,
            max_inflight_sizes=max_inflight_sizes,
        )
        self._stats = StatsCollector(latency_window=latency_window)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PredictionServer":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("the server has been closed")
            if self._started:
                return self
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker,
                    name=f"prediction-server-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests, drain the queue, stop the workers.

        Pending requests are still served before the workers exit (the
        queue only signals shutdown once closed *and* drained).  With
        ``wait=True`` the call blocks until every worker has exited.  On a
        server that was never started, pending futures are cancelled
        instead — there is nobody to serve them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        self._queue.close()
        if not started:
            self._cancel_pending()
        elif wait:
            for thread in self._threads:
                thread.join()
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close(wait=True)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: ExperimentSpec,
        tenant: str = "default",
        deadline_s: Optional[float] = None,
        mode: str = "result",
    ) -> "Future":
        """Enqueue one spec; the future resolves when a worker serves it.

        ``deadline_s`` is relative to now; under the deadline policy a
        request whose deadline passes before dispatch fails with
        :class:`~repro.serving.errors.DeadlineExpiredError` (other policies
        treat it as an ordering hint).  ``mode="predict"`` resolves the
        future to a :class:`~repro.core.prediction.SweepPrediction` instead
        of a full :class:`~repro.experiments.results.Result`.
        """
        if mode not in MODES:
            known = ", ".join(MODES)
            raise ValueError(
                f"unknown request mode {mode!r}; known modes: {known}"
            )
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        with self._lock:
            if self._closed:
                raise ServerClosedError("the server has been closed")
        request = PredictionRequest(
            spec=spec,
            future=Future(),
            tenant=tenant,
            deadline=(
                time.monotonic() + deadline_s
                if deadline_s is not None
                else None
            ),
            mode=mode,
            cost=len(spec.resolved_sizes()),
        )
        try:
            self._queue.put(request)
        except ServerOverloadedError:
            self._stats.record_rejected()
            raise
        self._stats.record_submitted()
        return request.future

    def submit_many(
        self,
        specs: Sequence[ExperimentSpec],
        tenant: str = "default",
        deadline_s: Optional[float] = None,
        mode: str = "result",
    ) -> List["Future"]:
        """`submit` each spec in order, returning the futures in order."""
        return [
            self.submit(spec, tenant=tenant, deadline_s=deadline_s, mode=mode)
            for spec in specs
        ]

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> ServerStats:
        """A consistent snapshot of counters, latencies and queue state."""
        return self._stats.snapshot(
            policy=self.policy.name,
            workers=self.workers,
            queue_depth=self._queue.depth,
            inflight_sizes=self._queue.inflight_sizes,
        )

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while True:
            group = self._queue.take(self.policy)
            if group is None:
                return
            try:
                self._dispatch(group)
            finally:
                self._queue.task_done(group.requests)

    def _dispatch(self, group) -> None:
        now = time.monotonic()
        live: List[PredictionRequest] = []
        for request in group.requests:
            if not request.future.set_running_or_notify_cancel():
                self._stats.record_cancelled()
                continue
            if self.policy.rejects_expired and request.expired(now):
                request.future.set_exception(
                    DeadlineExpiredError(
                        f"deadline passed {now - request.deadline:.3f}s "
                        f"before request {request.request_id} "
                        f"({request.spec.algorithm!r}) could be dispatched"
                    )
                )
                self._stats.record_expired()
                continue
            live.append(request)
        if not live:
            return
        self._stats.record_dispatch(group.key, len(live))
        mode = group.key[2]
        try:
            if mode == "predict":
                outputs: Sequence = predict_group(
                    [r.spec for r in live],
                    batch_cache=self.session.batch_cache,
                )
            else:
                outputs = list(
                    self.session.run_many([r.spec for r in live])
                )
        except Exception:
            # A group-level failure must not take down every caller that
            # happened to coalesce with the offender: retry each request
            # alone so only the genuinely failing ones see the error.
            self._dispatch_isolated(live)
            return
        done = time.monotonic()
        for request, output in zip(live, outputs):
            request.future.set_result(output)
            self._stats.record_completed(done - request.submitted_at)

    def _dispatch_isolated(self, requests: Sequence[PredictionRequest]) -> None:
        for request in requests:
            try:
                if request.mode == "predict":
                    output = predict_group(
                        [request.spec],
                        batch_cache=self.session.batch_cache,
                    )[0]
                else:
                    output = self.session.run(request.spec)
            except Exception as exc:  # noqa: BLE001 - forwarded to caller
                request.future.set_exception(exc)
                self._stats.record_failed()
            else:
                request.future.set_result(output)
                self._stats.record_completed(
                    time.monotonic() - request.submitted_at
                )

    def _cancel_pending(self) -> None:
        while True:
            group = self._queue.take(self.policy, timeout=0)
            if group is None:
                return
            try:
                for request in group.requests:
                    if request.future.cancel():
                        self._stats.record_cancelled()
            finally:
                self._queue.task_done(group.requests)
