"""Tests for the serving layer: coalescing parity, policies, backpressure."""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, Session, predict_group
from repro.serving import (
    CoalescedGroup,
    DeadlineExpiredError,
    DeadlinePolicy,
    FairSharePolicy,
    FIFOPolicy,
    PredictionRequest,
    PredictionServer,
    RequestQueue,
    ServerClosedError,
    ServerOverloadedError,
    resolve_policy,
)

#: Tiny explicit sweeps so every serving test executes quickly.
TINY_SIZES = (1_000, 4_000)


def tiny_spec(algorithm="vector_addition", **kwargs) -> ExperimentSpec:
    kwargs.setdefault("sizes", TINY_SIZES)
    return ExperimentSpec(algorithm=algorithm, **kwargs)


def overlapping_specs():
    """Requests with overlapping size windows over two algorithms."""
    return [
        tiny_spec(sizes=(1_000, 2_000, 4_000)),
        tiny_spec(sizes=(2_000, 4_000, 8_000)),
        tiny_spec(sizes=(4_000, 8_000, 16_000)),
        tiny_spec("reduction", sizes=(1_000, 4_000)),
        tiny_spec("reduction", sizes=(4_000, 16_000)),
    ]


def assert_results_identical(got, want):
    assert got.to_json() == want.to_json()


class TestCoalescingParity:
    @pytest.mark.parametrize("policy", ["fifo", "fair-share", "deadline"])
    def test_results_bit_for_bit_equal_isolated_run_many(self, policy):
        specs = overlapping_specs()
        server = PredictionServer(policy=policy, workers=2)
        futures = server.submit_many(specs)  # queue before start → coalesce
        with server:
            results = [f.result(timeout=120) for f in futures]
        isolated = Session().run_many(specs)
        for got, want in zip(results, isolated):
            assert_results_identical(got, want)

    @pytest.mark.parametrize("policy", ["fifo", "fair-share", "deadline"])
    def test_predict_mode_equals_isolated_predict_group(self, policy):
        specs = overlapping_specs()
        server = PredictionServer(policy=policy, workers=2)
        futures = server.submit_many(specs, mode="predict")
        with server:
            predictions = [f.result(timeout=120) for f in futures]
        for spec, got in zip(specs, predictions):
            want = predict_group([spec])[0]
            assert got.sizes == want.sizes
            for name, values in want.series.items():
                np.testing.assert_array_equal(got.series[name], values)

    def test_pre_start_requests_coalesce_into_fewer_groups(self):
        specs = [
            tiny_spec(sizes=(1_000, 2_000)),
            tiny_spec(sizes=(2_000, 4_000)),
            tiny_spec(sizes=(4_000, 8_000)),
        ]
        server = PredictionServer(workers=1)
        futures = server.submit_many(specs, mode="predict")
        with server:
            wait(futures, timeout=120)
        stats = server.stats()
        assert stats.completed == 3
        assert stats.dispatched_groups == 1
        assert stats.coalescing_ratio == pytest.approx(3.0)
        assert stats.latency_p50_s > 0.0

    def test_concurrent_submitters_all_get_correct_answers(self):
        specs = overlapping_specs()
        isolated = list(Session().run_many(specs))
        outcomes = {}
        with PredictionServer(workers=4) as server:
            def client(index):
                future = server.submit(specs[index])
                outcomes[index] = future.result(timeout=120)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(specs))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for index, want in enumerate(isolated):
            assert_results_identical(outcomes[index], want)

    def test_coalesced_and_isolated_sessions_share_nothing(self):
        # Two servers over distinct sessions must agree with each other.
        specs = overlapping_specs()[:3]
        answers = []
        for _ in range(2):
            server = PredictionServer(workers=1)
            futures = server.submit_many(specs)
            with server:
                answers.append([f.result(timeout=120) for f in futures])
        for got, want in zip(answers[0], answers[1]):
            assert_results_identical(got, want)


class TestLifecycleAndErrors:
    def test_submit_after_close_raises_typed_error(self):
        server = PredictionServer(workers=1)
        server.start()
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(tiny_spec())

    def test_close_without_start_cancels_pending_futures(self):
        server = PredictionServer(workers=1)
        future = server.submit(tiny_spec())
        server.close()
        assert future.cancelled()
        assert server.stats().cancelled == 1

    def test_unknown_mode_and_policy_are_rejected_by_name(self):
        server = PredictionServer(workers=1)
        with pytest.raises(ValueError, match="known modes"):
            server.submit(tiny_spec(), mode="stream")
        with pytest.raises(KeyError, match="known policies"):
            resolve_policy("round-robin")
        server.close()

    def test_failing_spec_only_fails_its_own_future(self):
        # An unknown algorithm fails at dispatch; the good request that
        # coalesced into the same batch round must still be answered.
        good = tiny_spec()
        bad = ExperimentSpec(algorithm="not_an_algorithm", sizes=TINY_SIZES)
        server = PredictionServer(workers=1)
        good_future = server.submit(good)
        bad_future = server.submit(bad)
        with server:
            result = good_future.result(timeout=120)
            with pytest.raises(KeyError):
                bad_future.result(timeout=120)
        assert_results_identical(result, Session().run_many([good])[0])
        stats = server.stats()
        assert stats.failed == 1
        assert stats.completed == 1


class TestAdmissionControl:
    def test_queue_depth_bound_rejects_with_counters(self):
        server = PredictionServer(workers=1, max_queue_depth=2)
        server.submit(tiny_spec(sizes=(1_000,)))
        server.submit(tiny_spec(sizes=(2_000,)))
        with pytest.raises(ServerOverloadedError) as excinfo:
            server.submit(tiny_spec(sizes=(4_000,)))
        assert excinfo.value.queue_depth == 2
        assert server.stats().rejected == 1
        server.close()

    def test_inflight_sizes_bound_rejects_large_requests(self):
        server = PredictionServer(workers=1, max_inflight_sizes=4)
        server.submit(tiny_spec(sizes=(1_000, 2_000, 4_000)))
        with pytest.raises(ServerOverloadedError, match="in-flight"):
            server.submit(tiny_spec(sizes=(8_000, 16_000)))
        server.close()

    def test_completion_credits_the_inflight_account_back(self):
        server = PredictionServer(workers=1, max_inflight_sizes=3)
        future = server.submit(tiny_spec(sizes=(1_000, 2_000, 4_000)))
        with server:
            future.result(timeout=120)
            deadline = time.monotonic() + 30
            while server.stats().inflight_sizes and time.monotonic() < deadline:
                time.sleep(0.01)
            # The account drained, so an equally large request is admitted.
            server.submit(tiny_spec(sizes=(2_000, 8_000, 16_000)))


class TestSchedulingPolicies:
    def test_fifo_dispatches_in_arrival_order(self):
        server = PredictionServer(policy="fifo", workers=1)
        first = server.submit(tiny_spec(), mode="predict")
        second = server.submit(tiny_spec("reduction"), mode="predict")
        with server:
            wait([first, second], timeout=120)
        keys = [key[0] for key in server.stats().recent_dispatches]
        assert keys == ["vector_addition", "reduction"]

    def test_fair_share_serves_starved_tenant_before_flood(self):
        # Tenant A floods two groups before tenant B's single request;
        # fair-share dispatches B's group second, FIFO would run it last.
        server = PredictionServer(policy="fair-share", workers=1)
        futures = [
            server.submit(tiny_spec(), tenant="A", mode="predict"),
            server.submit(tiny_spec("reduction"), tenant="A", mode="predict"),
            server.submit(
                tiny_spec("matrix_multiplication", sizes=(64, 128)),
                tenant="B",
                mode="predict",
            ),
        ]
        with server:
            wait(futures, timeout=120)
        keys = [key[0] for key in server.stats().recent_dispatches]
        assert keys == [
            "vector_addition",
            "matrix_multiplication",
            "reduction",
        ]
        policy = server.policy
        assert policy.served("A") == pytest.approx(4.0)
        assert policy.served("B") == pytest.approx(2.0)

    def test_deadline_policy_orders_by_urgency(self):
        server = PredictionServer(policy="deadline", workers=1)
        relaxed = server.submit(tiny_spec(), deadline_s=500.0, mode="predict")
        urgent = server.submit(
            tiny_spec("reduction"), deadline_s=60.0, mode="predict"
        )
        with server:
            wait([relaxed, urgent], timeout=120)
        keys = [key[0] for key in server.stats().recent_dispatches]
        assert keys == ["reduction", "vector_addition"]

    def test_deadline_policy_rejects_expired_requests(self):
        server = PredictionServer(policy="deadline", workers=1)
        expired = server.submit(tiny_spec(), deadline_s=0.0)
        time.sleep(0.02)
        with server:
            with pytest.raises(DeadlineExpiredError):
                expired.result(timeout=120)
        assert server.stats().expired == 1

    def test_other_policies_treat_deadlines_as_advisory(self):
        server = PredictionServer(policy="fifo", workers=1)
        expired = server.submit(tiny_spec(), deadline_s=0.0)
        time.sleep(0.02)
        with server:
            result = expired.result(timeout=120)
        assert_results_identical(
            result, Session().run_many([tiny_spec()])[0]
        )


class TestRequestQueue:
    def test_take_blocks_until_put_then_returns_whole_group(self):
        queue = RequestQueue()
        policy = FIFOPolicy()
        taken = []

        def consumer():
            taken.append(queue.take(policy))

        thread = threading.Thread(target=consumer)
        thread.start()
        request = self._request(queue)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert taken[0].requests == (request,)
        assert queue.depth == 0

    def test_close_wakes_blocked_consumer_with_none(self):
        queue = RequestQueue()
        policy = FIFOPolicy()
        taken = ["sentinel"]

        def consumer():
            taken[0] = queue.take(policy)

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert taken[0] is None

    def test_group_views_expose_policy_ordering_keys(self):
        queue = RequestQueue()
        early = self._request(queue, tenant="A", deadline=90.0)
        late = self._request(queue, tenant="B", deadline=50.0)
        group = queue.take(FIFOPolicy(), timeout=1)
        assert len(group) == 2
        assert group.oldest_submitted == early.submitted_at
        assert group.earliest_deadline == 50.0
        assert group.tenants == ("A", "B")
        assert group.total_cost == early.cost + late.cost

    @staticmethod
    def _request(queue, tenant="default", deadline=None):
        from concurrent.futures import Future

        request = PredictionRequest(
            spec=tiny_spec(),
            future=Future(),
            tenant=tenant,
            deadline=deadline,
            cost=len(TINY_SIZES),
        )
        queue.put(request)
        return request
