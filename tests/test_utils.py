"""Unit tests for :mod:`repro.utils`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import (
    POSITIVE_TOTALS_MESSAGE,
    average,
    capture_fraction,
    growth_rate_similarity,
    mean_absolute_difference,
    normalise_series,
    relative_error,
    require_positive_totals,
    speedup_series,
    transfer_proportion,
)
from repro.utils.units import (
    BYTES_PER_WORD,
    bytes_to_words,
    cycles_to_seconds,
    milliseconds_to_seconds,
    seconds_to_cycles,
    seconds_to_milliseconds,
    words_to_bytes,
)
from repro.utils.validation import (
    ensure_divides,
    ensure_in_range,
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive,
    ensure_positive_int,
    ensure_power_of_two,
)


class TestValidation:
    def test_ensure_positive_accepts_positive(self):
        assert ensure_positive(3.5, "x") == 3.5

    def test_ensure_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            ensure_positive(0.0, "x")

    def test_ensure_positive_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_positive(True, "x")

    def test_ensure_non_negative_accepts_zero(self):
        assert ensure_non_negative(0, "x") == 0.0

    def test_ensure_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative(-1e-9, "x")

    def test_ensure_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            ensure_positive_int(2.0, "x")

    def test_ensure_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            ensure_positive_int(0, "x")

    def test_ensure_non_negative_int_accepts_zero(self):
        assert ensure_non_negative_int(0, "x") == 0

    def test_ensure_in_range_inclusive(self):
        assert ensure_in_range(1.0, "x", low=1.0, high=2.0) == 1.0

    def test_ensure_in_range_exclusive_rejects_bound(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.0, "x", low=1.0, inclusive=False)

    def test_ensure_in_range_rejects_above(self):
        with pytest.raises(ValueError):
            ensure_in_range(3.0, "x", high=2.0)

    def test_ensure_power_of_two(self):
        assert ensure_power_of_two(64, "x") == 64

    def test_ensure_power_of_two_rejects_non_power(self):
        with pytest.raises(ValueError):
            ensure_power_of_two(48, "x")

    def test_ensure_divides(self):
        ensure_divides(8, 64, "blocks")

    def test_ensure_divides_rejects(self):
        with pytest.raises(ValueError):
            ensure_divides(7, 64, "blocks")

    @given(st.integers(min_value=0, max_value=20))
    def test_power_of_two_property(self, exponent):
        assert ensure_power_of_two(1 << exponent, "x") == 1 << exponent


class TestUnits:
    def test_words_to_bytes_default_word(self):
        assert words_to_bytes(10) == 10 * BYTES_PER_WORD

    def test_bytes_to_words_roundtrip(self):
        assert bytes_to_words(words_to_bytes(123)) == 123

    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(1e9, 1e9) == 1.0

    def test_seconds_to_cycles_roundtrip(self):
        assert seconds_to_cycles(cycles_to_seconds(500, 2e6), 2e6) == pytest.approx(500)

    def test_milliseconds_roundtrip(self):
        assert milliseconds_to_seconds(seconds_to_milliseconds(0.25)) == pytest.approx(0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            words_to_bytes(-1)


class TestStats:
    def test_normalise_series_bounds(self):
        out = normalise_series([3.0, 5.0, 9.0])
        assert out.min() == 0.0 and out.max() == 1.0

    def test_normalise_constant_series_is_zero(self):
        assert np.allclose(normalise_series([2.0, 2.0, 2.0]), 0.0)

    def test_normalise_rejects_nan(self):
        with pytest.raises(ValueError):
            normalise_series([1.0, float("nan")])

    def test_normalise_rejects_2d(self):
        with pytest.raises(ValueError):
            normalise_series(np.ones((2, 2)))

    def test_transfer_proportion(self):
        assert transfer_proportion(25.0, 100.0) == 0.25

    def test_transfer_proportion_rejects_exceeding(self):
        with pytest.raises(ValueError):
            transfer_proportion(2.0, 1.0)

    def test_transfer_proportion_rejects_zero_total(self):
        with pytest.raises(ValueError):
            transfer_proportion(0.0, 0.0)

    def test_capture_fraction_clips_to_one(self):
        assert capture_fraction(5.0, 2.0) == 1.0

    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0

    def test_average_empty_raises(self):
        with pytest.raises(ValueError):
            average([])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_relative_error_zero_observed(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_mean_absolute_difference(self):
        assert mean_absolute_difference([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_mean_absolute_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_difference([1.0], [1.0, 2.0])

    def test_growth_rate_similarity_identical_shapes(self):
        a = [1.0, 2.0, 3.0]
        b = [10.0, 20.0, 30.0]
        assert growth_rate_similarity(a, b) == pytest.approx(1.0)

    def test_growth_rate_similarity_detects_shape_difference(self):
        linear = [1.0, 2.0, 3.0, 4.0]
        flat = [1.0, 1.0, 1.0, 4.0]
        assert growth_rate_similarity(linear, linear) > growth_rate_similarity(linear, flat)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_normalise_series_property(self, values):
        out = normalise_series(values)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=1e-6, max_value=1e6),
    )
    def test_transfer_proportion_in_unit_interval(self, transfer, extra):
        total = transfer + extra
        assert 0.0 <= transfer_proportion(transfer, total) <= 1.0


class TestZeroRangeAndTotalsGuards:
    def test_all_equal_series_normalises_to_zeros(self):
        assert np.array_equal(normalise_series([7.0, 7.0, 7.0]), np.zeros(3))

    def test_all_zero_series_normalises_to_zeros(self):
        assert np.array_equal(normalise_series([0.0, 0.0]), np.zeros(2))

    def test_growth_rate_similarity_defined_for_constant_series(self):
        # Both curves have zero range; the normalised shapes are identical
        # flat lines, not a division by zero.
        assert growth_rate_similarity([3.0, 3.0], [9.0, 9.0]) == 1.0

    def test_transfer_proportion_uses_shared_guard_message(self):
        with pytest.raises(ValueError) as err:
            transfer_proportion(0.0, 0.0)
        assert str(err.value) == POSITIVE_TOTALS_MESSAGE

    def test_capture_fraction_uses_shared_guard_message(self):
        with pytest.raises(ValueError) as err:
            capture_fraction(1.0, 0.0)
        assert str(err.value) == POSITIVE_TOTALS_MESSAGE

    def test_require_positive_totals_accepts_and_rejects(self):
        out = require_positive_totals([1.0, 2.0])
        assert np.array_equal(out, [1.0, 2.0])
        for bad in ([], [0.0], [1.0, -2.0]):
            with pytest.raises(ValueError) as err:
                require_positive_totals(bad)
            assert str(err.value) == POSITIVE_TOTALS_MESSAGE

    def test_shared_guard_importable_from_prediction_module(self):
        # Backwards-compatible home of the guard (the prediction module).
        from repro.core import prediction

        assert prediction.POSITIVE_TOTALS_MESSAGE is POSITIVE_TOTALS_MESSAGE
        assert prediction.require_positive_totals is require_positive_totals


class TestSpeedupSeries:
    def test_ordinary_ratio(self):
        out = speedup_series([4.0, 9.0], [2.0, 3.0])
        assert np.array_equal(out, [2.0, 3.0])

    def test_zero_improved_and_zero_baseline_is_one(self):
        assert speedup_series([0.0], [0.0])[0] == 1.0

    def test_zero_improved_with_positive_baseline_is_inf(self):
        assert np.isinf(speedup_series([5.0], [0.0])[0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            speedup_series([1.0], [1.0, 2.0])
