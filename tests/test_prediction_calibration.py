"""Tests for sweep prediction, comparison statistics and calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.calibration import (
    _active_set_nnls,
    _r_squared,
    calibrate_cost_parameters,
    calibrate_transfer_model,
    feature_vector,
)
from repro.core.cost import ATGPUCostModel, CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, RoundMetrics
from repro.core.occupancy import OccupancyModel
from repro.core.prediction import (
    PredictionComparison,
    SweepObservation,
    SweepPrediction,
    predict_sweep,
)
from repro.core.presets import GTX_650, get_preset, preset_names


def linear_metrics_factory(machine: ATGPUMachine):
    """Vector-addition-like metrics: everything linear in n."""
    def factory(n: int) -> AlgorithmMetrics:
        k = machine.thread_blocks_for(n)
        return AlgorithmMetrics([RoundMetrics(
            time=3, io_blocks=3 * k, inward_words=2 * n, outward_words=n,
            inward_transactions=2, outward_transactions=1,
            global_words=3 * n, shared_words_per_mp=3 * machine.b,
            thread_blocks=k)])
    return factory


class TestSweepPrediction:
    def test_predict_sweep_shapes(self, machine, parameters, occupancy):
        sizes = [1000, 2000, 4000]
        sweep = predict_sweep("demo", sizes, linear_metrics_factory(machine),
                              machine, parameters, occupancy)
        assert sweep.sizes == sizes
        assert len(sweep.atgpu_costs) == 3
        assert np.all(np.diff(sweep.atgpu_costs) > 0)
        assert np.all(sweep.atgpu_costs > sweep.swgpu_costs)

    def test_predicted_transfer_proportions_in_unit_interval(self, machine, parameters, occupancy):
        sweep = predict_sweep("demo", [100, 1000], linear_metrics_factory(machine),
                              machine, parameters, occupancy)
        deltas = sweep.predicted_transfer_proportions
        assert np.all(deltas >= 0) and np.all(deltas <= 1)

    def test_normalised_curves_bounds(self, machine, parameters, occupancy):
        sweep = predict_sweep("demo", [100, 1000, 5000], linear_metrics_factory(machine),
                              machine, parameters, occupancy)
        for curve in sweep.normalised().values():
            assert curve.min() == 0.0 and curve.max() == 1.0

    def test_empty_sizes_rejected(self, machine, parameters, occupancy):
        with pytest.raises(ValueError):
            predict_sweep("demo", [], linear_metrics_factory(machine),
                          machine, parameters, occupancy)


class TestSweepObservation:
    def test_transfer_defaults_to_total_minus_kernel(self):
        obs = SweepObservation("demo", [1, 2], [10.0, 20.0], [4.0, 8.0])
        assert obs.transfer_times == [6.0, 12.0]
        assert np.allclose(obs.observed_transfer_proportions, 0.6)

    def test_kernel_cannot_exceed_total(self):
        with pytest.raises(ValueError):
            SweepObservation("demo", [1], [1.0], [2.0])

    def test_misaligned_lengths_rejected(self):
        with pytest.raises(ValueError):
            SweepObservation("demo", [1, 2], [1.0], [0.5])


class TestPredictionComparison:
    def _comparison(self, machine, parameters, occupancy):
        sizes = [1000, 2000, 4000, 8000]
        prediction = predict_sweep("demo", sizes, linear_metrics_factory(machine),
                                   machine, parameters, occupancy)
        # Observation: totals proportional to prediction (same shape), kernel 20 %.
        totals = list(prediction.atgpu_costs * 2.0)
        kernels = [t * 0.2 for t in totals]
        observation = SweepObservation("demo", sizes, totals, kernels)
        return PredictionComparison(prediction, observation)

    def test_sizes_must_match(self, machine, parameters, occupancy):
        prediction = predict_sweep("demo", [10, 20], linear_metrics_factory(machine),
                                   machine, parameters, occupancy)
        observation = SweepObservation("demo", [10, 30], [1.0, 2.0], [0.5, 0.5])
        with pytest.raises(ValueError):
            PredictionComparison(prediction, observation)

    def test_summary_statistics(self, machine, parameters, occupancy):
        comparison = self._comparison(machine, parameters, occupancy)
        summary = comparison.summary()
        assert summary["average_observed_transfer_share"] == pytest.approx(0.8)
        assert summary["swgpu_capture_fraction"] == pytest.approx(0.2)
        assert 0 <= summary["delta_accuracy"] <= 1
        assert 0 <= summary["atgpu_shape_score"] <= 1

    def test_atgpu_tracks_total_when_shapes_match(self, machine, parameters, occupancy):
        comparison = self._comparison(machine, parameters, occupancy)
        assert comparison.atgpu_shape_score() == pytest.approx(1.0, abs=1e-9)
        assert comparison.atgpu_tracks_total_better()

    def test_normalised_curves_keys(self, machine, parameters, occupancy):
        curves = self._comparison(machine, parameters, occupancy).normalised_curves()
        assert set(curves) == {"ATGPU", "SWGPU", "Total", "Kernel"}

    def test_delta_curves_keys(self, machine, parameters, occupancy):
        deltas = self._comparison(machine, parameters, occupancy).delta_curves()
        assert set(deltas) == {"observed", "predicted"}


class TestCalibration:
    def test_transfer_calibration_recovers_parameters(self):
        alpha, beta = 2e-5, 3e-9
        words = np.array([1e3, 1e4, 1e5, 1e6, 1e7])
        times = alpha + beta * words
        result = calibrate_transfer_model(words, np.ones_like(words, dtype=int), times)
        assert result.alpha == pytest.approx(alpha, rel=1e-3)
        assert result.beta == pytest.approx(beta, rel=1e-3)
        assert result.r_squared == pytest.approx(1.0, abs=1e-6)

    def test_transfer_calibration_rejects_short_input(self):
        with pytest.raises(ValueError):
            calibrate_transfer_model([10.0], [1], [1.0])

    def test_feature_vector_contents(self, machine, occupancy):
        metrics = linear_metrics_factory(machine)(3200)
        features = feature_vector(metrics, machine, occupancy)
        assert features[0] == 3  # transactions
        assert features[1] == 3 * 3200  # words
        assert features[3] == 3 * 100  # io blocks (k = 100)
        assert features[4] == 1  # rounds

    def test_cost_calibration_recovers_synthetic_parameters(self, machine, occupancy):
        true = CostParameters(gamma=1e8, lam=8.0, sigma=5e-4, alpha=2e-5, beta=4e-9)
        model = ATGPUCostModel(machine, true, occupancy)
        factory = linear_metrics_factory(machine)
        metrics_list = [factory(n) for n in (10_000, 50_000, 100_000, 400_000,
                                             800_000, 1_200_000)]
        times = [model.gpu_cost(m) for m in metrics_list]
        result = calibrate_cost_parameters(metrics_list, times, machine, occupancy,
                                           nominal=true)
        assert result.r_squared > 0.999
        predicted = [result.predict(feature_vector(m, machine, occupancy))
                     for m in metrics_list]
        assert np.allclose(predicted, times, rtol=1e-3)

    def test_cost_calibration_needs_two_observations(self, machine, occupancy):
        factory = linear_metrics_factory(machine)
        with pytest.raises(ValueError):
            calibrate_cost_parameters([factory(100)], [1.0], machine, occupancy)

    def test_cost_calibration_rejects_nonpositive_times(self, machine, occupancy):
        factory = linear_metrics_factory(machine)
        with pytest.raises(ValueError):
            calibrate_cost_parameters([factory(100), factory(200)], [1.0, 0.0],
                                      machine, occupancy)


class TestNNLSFallback:
    def test_active_set_refits_instead_of_clamping(self):
        # Target built from column 0 only, but column 1 is anti-correlated
        # noise: unconstrained lstsq goes negative on column 1 and, without
        # a refit, column 0's coefficient stays biased away from 2.0.
        design = np.array([
            [1.0, 1.0],
            [2.0, 1.9],
            [3.0, 3.1],
            [4.0, 3.9],
        ])
        target = 2.0 * design[:, 0] - 0.5 * design[:, 1]
        unconstrained, *_ = np.linalg.lstsq(design, target, rcond=None)
        assert unconstrained[1] < 0  # the scenario the fallback must handle
        clamped = np.clip(unconstrained, 0.0, None)
        solution = _active_set_nnls(design, target)
        assert np.all(solution >= 0)
        # The refit solves lstsq on the surviving column exactly ...
        expected, *_ = np.linalg.lstsq(design[:, :1], target, rcond=None)
        assert solution[0] == pytest.approx(expected[0])
        assert solution[1] == 0.0
        # ... which beats the naive clamp on residual.
        refit_residual = np.linalg.norm(design @ solution - target)
        clamp_residual = np.linalg.norm(design @ clamped - target)
        assert refit_residual < clamp_residual

    def test_active_set_returns_exact_nonnegative_solution_unchanged(self):
        design = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        target = design @ np.array([2.0, 3.0])
        solution = _active_set_nnls(design, target)
        assert np.allclose(solution, [2.0, 3.0])

    def test_active_set_all_negative_gives_zero_vector(self):
        design = np.array([[1.0], [2.0], [3.0]])
        target = np.array([-1.0, -2.0, -3.0])
        solution = _active_set_nnls(design, target)
        assert np.array_equal(solution, np.zeros(1))


class TestRSquaredGuards:
    def test_zero_variance_target_reproduced_scores_one(self):
        target = np.array([2.0, 2.0, 2.0])
        assert _r_squared(target, target.copy()) == 1.0

    def test_zero_variance_target_missed_scores_zero(self):
        target = np.array([2.0, 2.0, 2.0])
        predicted = np.array([1.0, 2.0, 3.0])
        assert _r_squared(target, predicted) == 0.0

    def test_near_constant_target_does_not_blow_up(self):
        base = 1.0
        target = base + np.array([0.0, 1e-18, -1e-18])
        predicted = np.full(3, base)
        value = _r_squared(target, predicted)
        assert np.isfinite(value)
        assert value == 1.0

    def test_ordinary_fit_unchanged(self):
        target = np.array([1.0, 2.0, 3.0])
        predicted = np.array([1.1, 1.9, 3.0])
        expected = 1.0 - (0.01 + 0.01) / 2.0
        assert _r_squared(target, predicted) == pytest.approx(expected)

    def test_small_magnitude_targets_keep_a_relative_floor(self):
        # The floor must scale with the target: a genuinely varying
        # nanosecond-scale target is not zero-variance, and an
        # anti-correlated prediction must not score a perfect fit.
        target = np.array([1e-9, 2e-9, 3e-9])
        predicted = target[::-1].copy()
        assert _r_squared(target, predicted) == pytest.approx(-3.0)
        assert _r_squared(target, target.copy()) == pytest.approx(1.0)

    def test_large_mean_small_variance_target_not_misclassified(self):
        # Variance far below the mean but far above representation noise:
        # still a real fit problem, not a constant target.
        target = 1e9 + np.array([0.0, 1.0, -1.0])
        predicted = 1e9 + np.array([0.0, -1.0, 1.0])
        assert _r_squared(target, predicted) == pytest.approx(-3.0)
        assert _r_squared(target, target.copy()) == pytest.approx(1.0)


class TestPresets:
    def test_preset_lookup(self):
        assert get_preset("gtx650") is GTX_650
        assert get_preset("GTX650") is GTX_650

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            get_preset("gtx9000")

    def test_preset_names_sorted(self):
        names = preset_names()
        assert list(names) == sorted(names)
        assert "gtx650" in names

    def test_paper_machine_shape(self):
        machine = GTX_650.machine
        assert machine.b == 32
        assert machine.k == 2
        assert GTX_650.occupancy.physical_mps == 2

    @settings(max_examples=20)
    @given(st.sampled_from(["gtx650", "gtx980", "k40", "gtx1080"]))
    def test_all_presets_well_formed(self, name):
        preset = get_preset(name)
        assert preset.machine.k == preset.occupancy.physical_mps
        assert preset.parameters.gamma > 0
