"""Tests for the declarative Session API: specs, backends, engines, caching."""

from __future__ import annotations

import json
import threading
import warnings

import numpy as np
import pytest

from repro.core.backends import (
    DEFAULT_BACKENDS,
    backend_label,
    backend_names,
    get_backend,
    make_backend,
    register_backend,
    unregister_backend,
)
from repro.core.prediction import (
    POSITIVE_TOTALS_MESSAGE,
    PredictionComparison,
    SweepObservation,
    SweepPrediction,
)
from repro.core.presets import GTX_650
from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    ProcessPoolEngine,
    Result,
    ResultSet,
    Session,
    all_figures,
    execute_spec,
    execute_specs,
    paper_specs,
    summary_statistics,
)
from repro.simulator.config import DeviceConfig

#: Tiny explicit sweeps so every session test executes quickly.
TINY_SIZES = (1_000, 4_000)


def tiny_spec(algorithm="vector_addition", **kwargs) -> ExperimentSpec:
    kwargs.setdefault("sizes", TINY_SIZES)
    return ExperimentSpec(algorithm=algorithm, **kwargs)


class TestExperimentSpec:
    def test_roundtrip_through_dict_and_json(self):
        spec = ExperimentSpec(
            algorithm="reduction",
            sizes=(1024, 2048),
            scale="small",
            preset="gtx980",
            device_config=DeviceConfig.gtx980(),
            seed=7,
            backends=("atgpu", "perfect"),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_hash_stability_and_equality(self):
        a = ExperimentSpec("reduction", sizes=[100, 200], seed=3)
        b = ExperimentSpec("reduction", sizes=(100, 200), seed=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a.spec_hash() == b.spec_hash()
        # The hash survives a serialisation round trip (cross-process key).
        assert ExperimentSpec.from_json(a.to_json()).spec_hash() == a.spec_hash()

    def test_hash_covers_every_field(self):
        base = tiny_spec()
        assert base.spec_hash() != base.with_overrides(seed=1).spec_hash()
        assert base.spec_hash() != base.with_overrides(preset="gtx980").spec_hash()
        assert base.spec_hash() != base.with_overrides(
            device_config=DeviceConfig.gtx650().with_overrides(num_sms=4)
        ).spec_hash()
        assert base.spec_hash() != base.with_overrides(
            backends=("atgpu",)
        ).spec_hash()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec("")
        with pytest.raises(ValueError):
            ExperimentSpec("reduction", scale="huge")
        with pytest.raises(ValueError):
            ExperimentSpec("reduction", sizes=())
        with pytest.raises(ValueError):
            ExperimentSpec("reduction", sizes=(0,))
        with pytest.raises(ValueError):
            ExperimentSpec("reduction", backends=())
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict({"algorithm": "reduction", "bogus": 1})

    def test_named_sweep_resolution(self):
        spec = ExperimentSpec("reduction", scale="small")
        from repro.workloads.sweeps import SMALL_SWEEPS

        assert spec.resolved_sizes() == list(SMALL_SWEEPS["reduction"].sizes)

    def test_paper_specs_cover_section_iv(self):
        specs = paper_specs(scale="small")
        assert [s.algorithm for s in specs] == [
            "vector_addition", "reduction", "matrix_multiplication"]
        assert all(s.backends == DEFAULT_BACKENDS for s in specs)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        for name in ("atgpu", "swgpu", "perfect", "agpu"):
            assert name in backend_names()
        assert get_backend("atgpu").label == "ATGPU"
        assert backend_label("swgpu") == "SWGPU"
        assert backend_label("not-registered") == "not-registered"

    def test_unknown_backend_error_lists_known_names(self):
        with pytest.raises(KeyError, match="atgpu"):
            get_backend("definitely-not-a-backend")

    def test_register_lookup_and_overwrite_guard(self):
        double = make_backend(
            "test-double-atgpu", "2×ATGPU",
            lambda metrics, machine, params, occ:
                2.0 * get_backend("atgpu").cost(metrics, machine, params, occ),
        )
        try:
            register_backend(double)
            assert get_backend("test-double-atgpu") is double
            with pytest.raises(ValueError):
                register_backend(double)
            register_backend(double, overwrite=True)
        finally:
            unregister_backend("test-double-atgpu")
        with pytest.raises(KeyError):
            get_backend("test-double-atgpu")

    def test_custom_backend_flows_through_prediction(self):
        double = make_backend(
            "test-double-atgpu", "2×ATGPU",
            lambda metrics, machine, params, occ:
                2.0 * get_backend("atgpu").cost(metrics, machine, params, occ),
        )
        register_backend(double)
        try:
            from repro.algorithms import VectorAddition

            prediction = VectorAddition().predict_sweep(
                [1000, 2000], preset=GTX_650,
                backends=("atgpu", "test-double-atgpu"),
            )
            assert np.allclose(
                prediction.series_for("test-double-atgpu"),
                2.0 * prediction.series_for("atgpu"),
            )
            assert "test-double-atgpu" in prediction.backend_names()
        finally:
            unregister_backend("test-double-atgpu")

    def test_agpu_backend_reports_unitless_time(self):
        from repro.algorithms import Reduction

        prediction = Reduction().predict_sweep(
            [1 << 12, 1 << 14], preset=GTX_650, backends=("atgpu", "agpu"))
        agpu = prediction.series_for("agpu")
        assert np.all(agpu > 0)
        # AGPU's asymptotic time view is unit-less device steps, not seconds.
        assert not np.allclose(agpu, prediction.series_for("atgpu"))


class TestSweepPredictionGenerics:
    def test_series_only_prediction_supports_figures_but_not_reports(self):
        prediction = SweepPrediction(
            algorithm="demo", sizes=[1, 2],
            series={"atgpu": np.array([1.0, 2.0]),
                    "swgpu": np.array([0.5, 1.0])},
            proportions=[0.5, 0.5],
        )
        assert set(prediction.normalised()) == {"ATGPU", "SWGPU"}
        assert np.allclose(prediction.predicted_transfer_proportions, 0.5)
        with pytest.raises(ValueError, match="analysis reports"):
            _ = prediction.transfer_costs
        with pytest.raises(KeyError, match="perfect"):
            prediction.series_for("perfect")

    def test_prediction_requires_reports_or_series(self):
        with pytest.raises(ValueError):
            SweepPrediction(algorithm="demo", sizes=[1, 2])

    def test_zero_total_guard_is_shared(self):
        obs = SweepObservation("demo", [1, 2], [1.0, 0.0], [0.5, 0.0])
        with pytest.raises(ValueError, match="must be positive"):
            _ = obs.observed_transfer_proportions
        prediction = SweepPrediction(
            algorithm="demo", sizes=[1, 2],
            series={"atgpu": [1.0, 2.0], "swgpu": [1.0, 2.0]},
            proportions=[0.1, 0.2],
        )
        comparison = PredictionComparison(prediction, obs)
        with pytest.raises(ValueError) as err:
            comparison.swgpu_capture_fraction()
        assert str(err.value) == POSITIVE_TOTALS_MESSAGE


class TestSessionExecution:
    def test_run_produces_result_with_backend_series(self):
        session = Session()
        result = session.run(tiny_spec())
        assert isinstance(result, Result)
        assert set(result.predicted) == set(DEFAULT_BACKENDS)
        assert result.sizes == list(TINY_SIZES)
        assert np.all(result.backend_series("atgpu")
                      >= result.backend_series("swgpu"))
        stats = result.statistics()
        assert "perfect_shape_score" in stats
        assert 0 <= stats["swgpu_capture_fraction"] <= 1

    def test_result_json_roundtrip_preserves_statistics(self):
        result = execute_spec(tiny_spec(seed=3))
        restored = Result.from_json(result.to_json())
        assert restored.summary() == pytest.approx(result.summary())
        assert restored.spec == result.spec

    def test_process_pool_engine_matches_serial(self):
        specs = [tiny_spec(), tiny_spec("reduction", sizes=(1 << 12, 1 << 13))]
        serial = Session(engine="serial").run_many(specs)
        pooled = Session(engine=ProcessPoolEngine(max_workers=2)).run_many(specs)
        assert len(serial) == len(pooled) == 2
        for a, b in zip(serial, pooled):
            assert a.spec == b.spec
            assert a.predicted == b.predicted
            assert a.observed_totals == b.observed_totals
            assert a.summary() == pytest.approx(b.summary())

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError, match="serial"):
            Session(engine="quantum")

    def test_cache_hit_and_miss_across_seeds(self):
        session = Session()
        first = session.run(tiny_spec(seed=0))
        assert (session.cache_hits, session.cache_misses) == (0, 1)
        again = session.run(tiny_spec(seed=0))
        assert again is first
        assert (session.cache_hits, session.cache_misses) == (1, 1)
        other_seed = session.run(tiny_spec(seed=1))
        assert other_seed is not first
        assert (session.cache_hits, session.cache_misses) == (1, 2)
        # Different seeds genuinely reach the generators.
        assert other_seed.spec.spec_hash() != first.spec.spec_hash()

    def test_run_many_serves_duplicates_from_one_execution(self):
        session = Session()
        results = session.run_many([tiny_spec(), tiny_spec()])
        assert len(results) == 2
        assert results[0] is results[1]
        # Misses equal actual executions; the duplicate counts as a hit.
        assert (session.cache_hits, session.cache_misses) == (1, 1)
        assert session.cache_size == 1

    def test_run_many_without_cache_re_executes_duplicates(self):
        """With use_cache=False duplicates must not be deduplicated and the
        hit/miss counters must stay untouched."""
        session = Session()
        executed = []

        class CountingEngine:
            name = "counting"

            def map(self, specs):
                from repro.experiments.session import execute_spec

                executed.extend(specs)
                return [execute_spec(spec) for spec in specs]

        session.engine = CountingEngine()
        results = session.run_many(
            [tiny_spec(), tiny_spec()], use_cache=False
        )
        assert len(results) == 2
        assert len(executed) == 2
        assert results[0] is not results[1]
        assert (session.cache_hits, session.cache_misses) == (0, 0)
        # Nothing was stored either: a later cached run still misses.
        assert session.cache_size == 0
        # run() follows the same contract: uncached runs leave the counters
        # alone and store nothing.
        session.run(tiny_spec(), use_cache=False)
        assert (session.cache_hits, session.cache_misses) == (0, 0)
        assert session.cache_size == 0
        session.run(tiny_spec())
        assert (session.cache_hits, session.cache_misses) == (0, 1)

    def test_disk_cache_survives_sessions(self, tmp_path):
        spec = tiny_spec(seed=5)
        writer = Session(cache_dir=tmp_path)
        produced = writer.run(spec)
        assert list(tmp_path.glob("*.json"))
        reader = Session(cache_dir=tmp_path)
        served = reader.run(spec)
        assert reader.cache_hits == 1 and reader.cache_misses == 0
        assert served.summary() == pytest.approx(produced.summary())
        payload = json.loads((tmp_path / f"{spec.spec_hash()}.json").read_text())
        assert payload["spec"]["algorithm"] == "vector_addition"

    def test_disk_reloaded_result_supports_summary_for_any_backends(self, tmp_path):
        """Cached results must behave like fresh ones even when the spec's
        backend list omits the atgpu/swgpu pair the statistics need."""
        spec = tiny_spec(backends=("atgpu", "perfect"))
        fresh = Session(cache_dir=tmp_path).run(spec)
        reloaded = Session(cache_dir=tmp_path).run(spec)
        assert reloaded.summary() == pytest.approx(fresh.summary())
        assert set(reloaded.predicted) >= {"atgpu", "swgpu", "perfect"}

    def test_corrupted_disk_cache_entry_is_a_miss(self, tmp_path):
        spec = tiny_spec(seed=8)
        session = Session(cache_dir=tmp_path)
        session.run(spec)
        path = tmp_path / f"{spec.spec_hash()}.json"
        path.write_text("{ not json")
        fresh = Session(cache_dir=tmp_path)
        result = fresh.run(spec)  # must re-execute, not crash
        assert fresh.cache_misses == 1
        assert result.sizes == list(TINY_SIZES)
        # The broken entry was replaced by a valid one.
        assert json.loads(path.read_text())["spec"]["seed"] == 8

    def test_resultset_views_and_figures(self):
        session = Session()
        evaluation = session.run_many(paper_specs(
            scale="small", backends=("atgpu", "swgpu", "perfect")))
        assert isinstance(evaluation, ResultSet)
        assert set(evaluation.by_algorithm()) == {
            "vector_addition", "reduction", "matrix_multiplication"}
        figures = all_figures(evaluation)
        assert set(figures) == {"3a", "3b", "3c", "4a", "4b", "4c",
                                "5a", "5b", "6a", "6b", "6c"}
        restored = ResultSet.from_json(evaluation.to_json())
        for name, summary in evaluation.summaries().items():
            assert restored.summaries()[name] == pytest.approx(summary)
        with pytest.raises(KeyError, match="no result"):
            evaluation.get("histogram")


class TestSectionIVParity:
    """Acceptance: Session reproduces the legacy evaluation path exactly."""

    def test_session_matches_legacy_runner_and_caches_repeats(self):
        session = Session()
        specs = paper_specs(scale="small",
                            backends=("atgpu", "swgpu", "perfect"))
        modern = session.run_many(specs)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = ExperimentRunner(scale="small").run_paper_evaluation()

        assert set(modern.by_algorithm()) == set(legacy)
        for name, comparison in legacy.items():
            assert modern.get(name).summary() == pytest.approx(
                comparison.summary())
        modern_summaries = summary_statistics(modern)
        legacy_summaries = summary_statistics(legacy)
        for name in legacy_summaries:
            assert (modern_summaries[name].measured_transfer_share
                    == pytest.approx(legacy_summaries[name].measured_transfer_share))
            assert (modern_summaries[name].measured_swgpu_capture
                    == pytest.approx(legacy_summaries[name].measured_swgpu_capture))

        # A repeated batch is served entirely from the cache.
        hits_before = session.cache_hits
        repeat = session.run_many(specs)
        assert session.cache_hits == hits_before + len(specs)
        for first, second in zip(modern, repeat):
            assert first is second


class TestRunnerShim:
    def test_runner_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="Session"):
            ExperimentRunner(scale="small")

    def test_customised_preset_keeping_a_registered_name_is_accepted(self):
        """The legacy runner accepted tweaked copies of registered presets."""
        from dataclasses import replace

        from repro.algorithms import VectorAddition

        tweaked = replace(
            GTX_650, parameters=replace(GTX_650.parameters, sigma=1.0e-4))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = ExperimentRunner(preset=tweaked, scale="small")
        comparison = runner.run_algorithm(VectorAddition(), sizes=TINY_SIZES)
        spec = runner.spec_for("vector_addition", sizes=TINY_SIZES)
        assert spec.preset.startswith("gtx650-")  # content-addressed alias
        assert comparison.prediction.atgpu_costs[0] > 0
        from repro.core.presets import PRESETS

        assert PRESETS["gtx650"] == GTX_650  # the original is untouched

    def test_mutated_runner_fields_invalidate_cache(self):
        """The legacy cache-key bug: seed/preset/device changes must miss."""
        from repro.algorithms import VectorAddition

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = ExperimentRunner(scale="small")
        first = runner.run_algorithm(VectorAddition(), sizes=TINY_SIZES)
        runner.seed = 99
        reseeded = runner.run_algorithm(VectorAddition(), sizes=TINY_SIZES)
        assert reseeded is not first
        runner.device_config = DeviceConfig.gtx650().with_overrides(num_sms=4)
        retimed = runner.run_algorithm(VectorAddition(), sizes=TINY_SIZES)
        assert retimed is not reseeded
        # Faster device: the observed totals must actually differ.
        assert not np.allclose(retimed.observation.totals,
                               reseeded.observation.totals)


class TestGroupedBatchExecution:
    """Session.run_many routes homogeneous groups through one MetricsBatch."""

    def test_grouped_serial_matches_per_spec_execution(self):
        specs = [
            tiny_spec(seed=0),
            tiny_spec(seed=1),
            tiny_spec(seed=0, sizes=(2_000, 8_000)),
            tiny_spec("reduction", sizes=(1 << 12, 1 << 13)),
        ]
        grouped = Session(engine="serial").run_many(specs, use_cache=False)
        for spec, result in zip(specs, grouped):
            direct = execute_spec(spec)
            assert result.spec == spec
            assert result.predicted == direct.predicted
            assert result.predicted_transfer_proportions == \
                direct.predicted_transfer_proportions
            assert result.observed_totals == direct.observed_totals

    def test_grouped_execution_handles_unbatchable_backends(self):
        custom = make_backend(
            "test-session-scalar-only", "scalar-only",
            lambda metrics, machine, params, occ:
                get_backend("atgpu").cost(metrics, machine, params, occ),
        )
        register_backend(custom)
        try:
            specs = [
                tiny_spec(),
                tiny_spec(backends=("atgpu", "test-session-scalar-only")),
            ]
            results = Session(engine="serial").run_many(specs, use_cache=False)
            assert np.allclose(
                results[1].backend_series("test-session-scalar-only"),
                results[1].backend_series("atgpu"),
            )
            assert results[0].predicted == execute_spec(specs[0]).predicted
        finally:
            unregister_backend("test-session-scalar-only")

    def test_grouped_execution_preserves_order_and_length(self):
        specs = [
            tiny_spec("reduction", sizes=(1 << 12,)),
            tiny_spec(seed=2),
            tiny_spec("reduction", sizes=(1 << 13,)),
        ]
        results = Session(engine="serial").run_many(specs, use_cache=False)
        assert [r.spec for r in results] == specs


class TestEngineAndSessionLifecycle:
    def test_process_pool_engine_reuses_one_pool(self):
        engine = ProcessPoolEngine(max_workers=2)
        assert engine.pool is None  # lazy: no workers before the first batch
        specs = [tiny_spec(seed=0), tiny_spec(seed=1)]
        engine.map(specs)
        first = engine.pool
        assert first is not None
        engine.map(specs)
        assert engine.pool is first  # no per-batch teardown/respawn
        engine.close()
        assert engine.pool is None
        engine.map(specs)  # usable again after close
        assert engine.pool is not None and engine.pool is not first
        engine.close()

    def test_single_spec_batches_never_spawn_workers(self):
        engine = ProcessPoolEngine(max_workers=2)
        engine.map([tiny_spec()])
        assert engine.pool is None

    def test_broken_pool_retries_the_batch_once_on_a_fresh_pool(self):
        from concurrent.futures.process import BrokenProcessPool

        engine = ProcessPoolEngine(max_workers=2)

        class PoisonedPool:
            def map(self, fn, specs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        engine._pool = PoisonedPool()
        # One break is absorbed: the batch re-runs on a fresh pool.
        results = engine.map([tiny_spec(seed=0), tiny_spec(seed=1)])
        assert len(results) == 2
        assert engine.pool is not None and not isinstance(
            engine.pool, PoisonedPool
        )
        engine.close()

    def test_pool_broken_twice_raises_engine_error_naming_the_spec(self):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        from repro.experiments import EngineError

        engine = ProcessPoolEngine(max_workers=2)
        specs = [tiny_spec(seed=0), tiny_spec(seed=1)]

        class BrokenFuture:
            def result(self):
                raise BrokenProcessPool("worker died again")

        class PoisonedPool:
            def map(self, fn, specs):
                raise BrokenProcessPool("worker died")

            def submit(self, fn, *args):
                return BrokenFuture()

            def shutdown(self, *args, **kwargs):
                pass

        # Poison both the first pool and the retry pool.
        engine._pool = PoisonedPool()
        original = engine._ensure_pool

        def poisoned_ensure():
            with engine._lock:
                if engine._pool is None:
                    engine._pool = PoisonedPool()
                return engine._pool

        engine._ensure_pool = poisoned_ensure
        with pytest.raises(EngineError) as excinfo:
            engine.map(specs)
        assert specs[0].spec_hash() in str(excinfo.value)
        assert excinfo.value.spec == specs[0]
        engine._ensure_pool = original
        assert engine.pool is None
        engine.close()

    def test_session_context_manager_closes_engine(self):
        engine = ProcessPoolEngine(max_workers=2)
        with Session(engine=engine) as session:
            session.run_many(
                [tiny_spec(seed=0), tiny_spec(seed=1)], use_cache=False
            )
            assert engine.pool is not None
        assert engine.pool is None

    def test_session_close_is_safe_for_serial_engine(self):
        session = Session()
        session.close()  # SerialEngine has no close(); must be a no-op
        assert session.run(tiny_spec()) is not None


class TestSpecHashMemoization:
    def test_hash_computed_once_and_stable(self):
        spec = tiny_spec(seed=4)
        first = spec.spec_hash()
        assert spec.__dict__.get("_spec_hash") == first
        assert spec.spec_hash() is first  # served from the memo
        # A fresh, equal spec computes the same digest independently.
        assert tiny_spec(seed=4).spec_hash() == first

    def test_with_overrides_does_not_inherit_stale_hash(self):
        spec = tiny_spec(seed=4)
        original = spec.spec_hash()
        changed = spec.with_overrides(seed=5)
        assert "_spec_hash" not in changed.__dict__
        assert changed.spec_hash() != original

    def test_json_roundtrip_hash_matches(self):
        spec = tiny_spec(seed=6)
        spec.spec_hash()
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.spec_hash() == spec.spec_hash()


class TestBatchEvaluationCache:
    """The per-backend batch memo (compiled grids + evaluated predictions)."""

    def test_repeated_run_many_hits_batch_cache(self):
        session = Session()
        specs = [tiny_spec(seed=0), tiny_spec(seed=1)]
        first = session.run_many(specs)
        # One group: one union prediction per distinct backends tuple (both
        # specs share it — the second is scattered from the same
        # evaluation) plus the one batch compile behind it.
        assert session.batch_cache_misses == 2
        assert session.batch_cache_hits == 0
        assert session.batch_cache.size == 2
        # New seeds miss the spec-hash cache but are served entirely from
        # the memoized union prediction — the batch is not even consulted.
        second = session.run_many([tiny_spec(seed=2), tiny_spec(seed=3)])
        assert session.batch_cache_misses == 2
        assert session.batch_cache_hits == 1
        assert first[0].predicted["atgpu"] == second[0].predicted["atgpu"]

    def test_spec_hash_cache_answers_before_batch_cache(self):
        session = Session()
        session.run_many([tiny_spec(seed=0)])
        misses = session.batch_cache_misses
        hits = session.batch_cache_hits
        # An exact repeat is a spec-hash hit; the batch memo is not touched.
        session.run_many([tiny_spec(seed=0)])
        assert session.batch_cache_misses == misses
        assert session.batch_cache_hits == hits
        assert session.cache_hits == 1

    def test_distinct_sizes_and_backends_are_distinct_entries(self):
        session = Session()
        session.run_many([
            tiny_spec(seed=0),
            tiny_spec(seed=0, sizes=(1_000, 16_000)),
            tiny_spec(seed=0, backends=("atgpu", "perfect")),
        ])
        # One union batch for the group; one union prediction per distinct
        # backends tuple (sizes are sliced out of the shared evaluation).
        assert session.batch_cache_misses == 3
        assert session.batch_cache.size == 3

    def test_use_cache_false_bypasses_batch_cache(self):
        session = Session()
        session.run_many([tiny_spec(seed=0)], use_cache=False)
        assert session.batch_cache_misses == 0
        assert session.batch_cache_hits == 0
        assert session.batch_cache.size == 0

    def test_clear_cache_drops_batch_memo(self):
        session = Session()
        session.run_many([tiny_spec(seed=0)])
        assert session.batch_cache.size > 0
        session.clear_cache()
        assert session.batch_cache.size == 0
        # Counters survive; a re-run recompiles.
        misses = session.batch_cache_misses
        session.run_many([tiny_spec(seed=4)])
        assert session.batch_cache_misses > misses

    def test_unbatchable_backends_skip_the_memo(self):
        plain = make_backend("test-session-scalar-only", "scalar-only",
                             lambda metrics, m, p, o: 1.0)
        register_backend(plain)
        try:
            session = Session()
            spec = tiny_spec(
                seed=0, backends=("atgpu", "test-session-scalar-only")
            )
            result = session.run_many([spec])[0]
            assert session.batch_cache.size == 0
            assert result.predicted["test-session-scalar-only"] == [1.0, 1.0]
        finally:
            unregister_backend("test-session-scalar-only")


class TestSessionThreadSafety:
    """One session shared across threads (the serving layer's contract)."""

    def test_run_many_hammered_from_eight_threads(self):
        specs = [tiny_spec(seed=seed) for seed in range(3)] + [
            tiny_spec("reduction", seed=seed) for seed in range(3)
        ]
        want = [result.to_json() for result in Session().run_many(specs)]
        session = Session()
        barrier = threading.Barrier(8)
        mismatches = []
        errors = []

        def hammer():
            try:
                barrier.wait(timeout=30)
                for _ in range(3):
                    got = session.run_many(specs)
                    for result, expected in zip(got, want):
                        if result.to_json() != expected:
                            mismatches.append(result.algorithm)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert not mismatches
        assert session.cache_size == len(specs)
        # Every request is accounted exactly once.  Racing threads may both
        # execute the same uncached spec (by design — execution is pure),
        # so misses can exceed the unique-spec count but never the total.
        total = 8 * 3 * len(specs)
        assert session.cache_hits + session.cache_misses == total
        assert len(specs) <= session.cache_misses < total

    def test_concurrent_disk_stores_stay_readable(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        specs = [tiny_spec(seed=seed) for seed in range(4)]
        threads = [
            threading.Thread(target=session.run_many, args=(specs,))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        # No torn writes: every store entry parses and reloads cleanly.
        fresh = Session(cache_dir=tmp_path)
        reloaded = fresh.run_many(specs)
        assert fresh.cache_misses == 0
        assert len(reloaded) == len(specs)
        assert not list(tmp_path.glob("*.tmp"))


class TestPoolResultSeeding:
    def test_process_pool_results_seed_the_batch_memo(self):
        with Session(engine="process") as session:
            specs = [tiny_spec(seed=0), tiny_spec(seed=1)]
            first = session.run_many(specs)
            # The pool's results were routed back into the parent's memo
            # without counting as misses (nothing was compiled here).
            assert session.batch_cache.size >= 1
            assert session.batch_cache_misses == 0
            hits = session.batch_cache_hits
            # An in-process pass over the same (algorithm, preset, sizes,
            # backends) is served entirely from the seeded prediction.
            fresh = execute_specs(
                [tiny_spec(seed=2)], batch_cache=session.batch_cache
            )
            assert session.batch_cache_misses == 0
            assert session.batch_cache_hits == hits + 1
            assert fresh[0].predicted["atgpu"] == first[0].predicted["atgpu"]
